//! Golden-file suite for the normalizer and the canonicalizer.
//!
//! Each case in `tests/golden/canon.txt` pins the exact printed output
//! of `normalize_query` and `canonicalize` for one input SQL string, so
//! a rewrite-rule change that moves any canonical form is visible in
//! review as a diff of the golden file rather than a distant test
//! failure. Regenerate with `FISQL_BLESS=1 cargo test --test
//! canon_golden` after an intentional change.

#![forbid(unsafe_code)]

use fisql::prelude::*;

const GOLDEN_PATH: &str = "tests/golden/canon.txt";

/// One golden case: a name, the input SQL, and the expected printed
/// normalized and canonical forms.
#[derive(Debug)]
struct Case {
    name: String,
    input: String,
    norm: String,
    canon: String,
}

/// Parses the golden file: `== name` opens a case, `in:`/`norm:`/
/// `canon:` lines carry the SQL, `#` lines and blanks are ignored.
fn parse_golden(text: &str) -> Vec<Case> {
    let mut cases: Vec<Case> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix("== ") {
            cases.push(Case {
                name: name.trim().to_string(),
                input: String::new(),
                norm: String::new(),
                canon: String::new(),
            });
            continue;
        }
        let case = cases
            .last_mut()
            .unwrap_or_else(|| panic!("line {}: directive before any `== name`", lineno + 1));
        if let Some(sql) = line.strip_prefix("in:") {
            case.input = sql.trim().to_string();
        } else if let Some(sql) = line.strip_prefix("norm:") {
            case.norm = sql.trim().to_string();
        } else if let Some(sql) = line.strip_prefix("canon:") {
            case.canon = sql.trim().to_string();
        } else {
            panic!("line {}: unrecognized golden line: {line}", lineno + 1);
        }
    }
    cases
}

fn flatten(sql: &str) -> String {
    sql.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[test]
fn canonical_forms_match_the_golden_file() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let cases = parse_golden(&text);
    assert!(cases.len() >= 10, "golden file lost its cases");

    let bless = std::env::var("FISQL_BLESS").is_ok_and(|v| !v.is_empty() && v != "0");
    let mut blessed = String::from(
        "# Golden canonical forms: `in:` is parsed, then `norm:` must match\n\
         # print(normalize_query(in)) and `canon:` must match\n\
         # print(canonicalize(in)). Regenerate with FISQL_BLESS=1.\n",
    );
    let mut failures = Vec::new();
    for case in &cases {
        let query = parse_query(&case.input)
            .unwrap_or_else(|e| panic!("case `{}`: input does not parse: {e}", case.name));
        let norm = flatten(&print_query(&normalize_query(&query)));
        let canon_q = canonicalize(&query);
        let canon = flatten(&print_query(&canon_q));

        // The printed canonical form must itself parse back to the
        // canonical AST — the fingerprint hashes this text, so it must
        // be a faithful encoding.
        let reparsed = parse_query(&canon)
            .unwrap_or_else(|e| panic!("case `{}`: canonical form does not parse: {e}", case.name));
        assert_eq!(
            canonicalize(&reparsed),
            canon_q,
            "case `{}`: canonical form is not a fixpoint of print ∘ canonicalize",
            case.name
        );

        blessed.push_str(&format!(
            "\n== {}\nin:    {}\nnorm:  {norm}\ncanon: {canon}\n",
            case.name, case.input
        ));
        if norm != case.norm {
            failures.push(format!(
                "case `{}`: normalized form drifted\n  expected: {}\n  actual:   {norm}",
                case.name, case.norm
            ));
        }
        if canon != case.canon {
            failures.push(format!(
                "case `{}`: canonical form drifted\n  expected: {}\n  actual:   {canon}",
                case.name, case.canon
            ));
        }
    }
    if bless {
        std::fs::write(&path, blessed).unwrap();
        return;
    }
    assert!(
        failures.is_empty(),
        "{} golden mismatch(es):\n{}\n(run with FISQL_BLESS=1 to regenerate)",
        failures.len(),
        failures.join("\n")
    );
}
