//! The paper's worked examples (Figures 4, 5, 7, 9 and Table 1),
//! reproduced verbatim through the public API.

use fisql::prelude::*;
use rand::rngs::StdRng;

/// Figure 5: the Edit-type demonstration — "we are in 2024" turns the
/// 2023 window into the 2024 window.
#[test]
fn figure5_edit_demonstration() {
    let before = parse_query(
        "SELECT COUNT(*) AS segmentCount FROM hkg_dim_segment \
         WHERE createdTime >= '2023-01-01' and createdTime < '2023-02-01'",
    )
    .unwrap();
    let after = parse_query(
        "SELECT COUNT(*) AS segmentCount FROM hkg_dim_segment \
         WHERE createdTime >= '2024-01-01' and createdTime < '2024-02-01'",
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(5);
    let db = aep_db();
    let interp = interpret(
        "we are in 2024",
        &normalize_query(&before),
        &db,
        Some(OpClass::Edit),
        None,
        &mut rng,
    );
    let fixed = apply_edits(&normalize_query(&before), &interp.edits).unwrap();
    assert!(structurally_equal(&fixed, &after));
}

/// Figure 7: the youngest-singer example — feedback replaces the singer
/// name with the song name.
#[test]
fn figure7_song_name_walkthrough() {
    let db = singer_db();
    let predicted = parse_query(
        "SELECT Name, Song_release_year FROM singer WHERE Age = (SELECT min(Age) FROM singer)",
    )
    .unwrap();
    // The user saw "Tribal King | 2016" and knows Tribal King is the
    // singer, not the song.
    let rs = fisql::fisql_engine::execute(&db, &predicted).unwrap();
    assert_eq!(rs.rows[0][0], Value::Text("Tribal King".into()));

    let mut rng = StdRng::seed_from_u64(7);
    let interp = interpret(
        "Provide song name instead of singer name",
        &normalize_query(&predicted),
        &db,
        Some(OpClass::Edit),
        None,
        &mut rng,
    );
    let fixed = apply_edits(&normalize_query(&predicted), &interp.edits).unwrap();
    let gold = parse_query(
        "SELECT song_name, song_release_year FROM singer \
         WHERE age = (SELECT MIN(age) FROM singer)",
    )
    .unwrap();
    assert!(structurally_equal(&fixed, &gold), "{}", print_query(&fixed));
    let fixed_rs = fisql::fisql_engine::execute(&db, &fixed).unwrap();
    assert_eq!(fixed_rs.rows[0][0], Value::Text("Love".into()));
}

/// Figure 9: highlighting the WHERE clause grounds the terse feedback
/// "change to 2024".
#[test]
fn figure9_highlight_grounding() {
    let db = aep_db();
    let predicted = normalize_query(
        &parse_query(
            "SELECT COUNT(*) FROM hkg_dim_segment \
             WHERE createdTime >= '2023-01-01' AND createdTime < '2023-02-01'",
        )
        .unwrap(),
    );
    let spanned = fisql::fisql_sqlkit::print_query_spanned(&predicted);
    // The user highlights the first WHERE predicate.
    let highlight = spanned
        .span_of(&fisql::fisql_sqlkit::ClausePath::Where)
        .unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let interp = interpret(
        "change to 2024",
        &predicted,
        &db,
        Some(OpClass::Edit),
        Some(highlight),
        &mut rng,
    );
    assert!(!interp.edits.is_empty(), "highlighted feedback must ground");
    let fixed = apply_edits(&predicted, &interp.edits).unwrap();
    let sql = print_query(&fixed);
    assert!(sql.contains("2024-01-01"), "{sql}");
}

/// Table 1: the router classifies the three canonical feedback texts.
#[test]
fn table1_feedback_types() {
    let llm = SimLlm::new(LlmConfig {
        seed: 1,
        calibration: Calibration {
            router_noise: 0.0,
            ..Default::default()
        },
    });
    assert_eq!(
        llm.classify_feedback("order the names in ascending order.", 0),
        OpClass::Add
    );
    assert_eq!(
        llm.classify_feedback("do not give descriptions", 0),
        OpClass::Remove
    );
    assert_eq!(llm.classify_feedback("we are in 2024", 0), OpClass::Edit);
}

/// Figure 4's observable surface: the Assistant's explanation of the
/// wrong-year query mirrors the paper's bullet list.
#[test]
fn figure4_explanation_surface() {
    let q = parse_query(
        "SELECT COUNT(*) FROM hkg_dim_segment \
         WHERE createdTime >= '2023-01-01' AND createdTime < '2023-02-01'",
    )
    .unwrap();
    let text = explain_query(&q);
    assert!(text.contains("First, consider all the"));
    assert!(text.contains("createdTime >= '2023-01-01'"));
    assert!(text.contains("createdTime < '2023-02-01'"));
    assert!(text.to_lowercase().contains("count"));
}

fn aep_db() -> Database {
    let mut rng = StdRng::seed_from_u64(1);
    fisql_spider::build_aep_database(&mut rng)
}

fn singer_db() -> Database {
    let mut db = Database::new("concert_singer");
    let mut singer = Table::new(
        "singer",
        vec![
            Column::new("singer_id", DataType::Int),
            Column::new("name", DataType::Text),
            Column::new("song_name", DataType::Text),
            Column::new("song_release_year", DataType::Int),
            Column::new("age", DataType::Int),
        ],
    );
    singer.primary_key = Some(0);
    for (id, name, song, year, age) in [
        (1, "Joe Sharp", "You", 1992, 52),
        (2, "Rose White", "Sun", 2003, 41),
        (3, "Tribal King", "Love", 2016, 25),
    ] {
        singer.push_row(vec![
            Value::Int(id),
            name.into(),
            song.into(),
            Value::Int(year),
            Value::Int(age),
        ]);
    }
    db.add_table(singer);
    db
}
