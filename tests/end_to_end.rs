//! Cross-crate integration tests: the full paper pipeline, wired exactly
//! as the experiment binaries run it, checked for its headline invariants.

use fisql::prelude::*;

fn setup() -> (Corpus, Corpus, SimLlm, SimUser) {
    let spider = build_spider(&SpiderConfig {
        n_databases: 20,
        n_examples: 160,
        seed: 0xE2E,
    });
    let aep = build_aep(&AepConfig {
        n_examples: 80,
        seed: 0xE2E ^ 0xAE9,
    });
    let llm = SimLlm::new(LlmConfig::default());
    let user = SimUser::new(UserConfig::default());
    (spider, aep, llm, user)
}

#[test]
fn figure2_shape_spider_far_above_aep() {
    let (spider, aep, llm, _) = setup();
    let s = zero_shot_report(&spider, &llm);
    let a = zero_shot_report(&aep, &llm);
    assert!(
        s.accuracy() > a.accuracy() + 0.25,
        "SPIDER {:.3} should dominate AEP {:.3} by a wide margin",
        s.accuracy(),
        a.accuracy()
    );
    assert!(s.accuracy() > 0.5 && s.accuracy() < 0.9);
    assert!(a.accuracy() < 0.45);
}

#[test]
fn table2_shape_fisql_beats_rewrite_on_both_datasets() {
    let (spider, aep, llm, user) = setup();
    for corpus in [&spider, &aep] {
        let run = CorrectionRun::new(corpus, &llm, &user).demos_k(3).rounds(1);
        let errors = run.collect_errors();
        let cases = run.annotate(&errors);
        assert!(
            cases.len() >= 10,
            "{}: too few annotated cases ({})",
            corpus.name,
            cases.len()
        );
        let fisql = run
            .strategy(Strategy::Fisql {
                routing: true,
                highlighting: false,
            })
            .run(&cases);
        let rewrite = run.strategy(Strategy::QueryRewrite).run(&cases);
        assert!(
            fisql.corrected_after_round[0] as f64 >= 1.3 * rewrite.corrected_after_round[0] as f64,
            "{}: FISQL {} vs rewrite {} (expected a wide win)",
            corpus.name,
            fisql.corrected_after_round[0],
            rewrite.corrected_after_round[0]
        );
    }
}

#[test]
fn figure8_shape_round_two_improves_and_converges() {
    let (spider, _, llm, user) = setup();
    let run = CorrectionRun::new(&spider, &llm, &user)
        .demos_k(3)
        .rounds(2);
    let errors = run.collect_errors();
    let cases = run.annotate(&errors);
    let fisql = run
        .strategy(Strategy::Fisql {
            routing: true,
            highlighting: false,
        })
        .run(&cases);
    let no_routing = run
        .strategy(Strategy::Fisql {
            routing: false,
            highlighting: false,
        })
        .run(&cases);
    // Round 2 strictly helps.
    assert!(fisql.corrected_after_round[1] > fisql.corrected_after_round[0]);
    assert!(no_routing.corrected_after_round[1] > no_routing.corrected_after_round[0]);
    // Near-convergence of the ablation after two rounds (paper: equal).
    let diff = fisql.corrected_after_round[1] as i64 - no_routing.corrected_after_round[1] as i64;
    assert!(
        diff.abs() as f64 <= 0.12 * cases.len() as f64,
        "no convergence: FISQL {} vs -Routing {} of {}",
        fisql.corrected_after_round[1],
        no_routing.corrected_after_round[1],
        cases.len()
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run_once = || {
        let (spider, _, llm, user) = setup();
        let run = CorrectionRun::new(&spider, &llm, &user)
            .demos_k(3)
            .rounds(2)
            .strategy(Strategy::Fisql {
                routing: true,
                highlighting: false,
            });
        let errors = run.collect_errors();
        let cases = run.annotate(&errors);
        let report = run.run(&cases);
        (errors.len(), cases.len(), report.corrected_after_round)
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn annotated_cases_only_cover_real_errors() {
    let (spider, _, llm, user) = setup();
    let run = CorrectionRun::new(&spider, &llm, &user).demos_k(3);
    let errors = run.collect_errors();
    let cases = run.annotate(&errors);
    for case in &cases {
        let example = &spider.examples[case.error.example_idx];
        let db = spider.database(example);
        // The initial prediction really is wrong.
        let verdict = fisql_spider::check_prediction(db, example, &case.error.initial);
        assert!(!verdict.is_correct());
        // And the feedback text is non-empty.
        assert!(!case.feedback.text.trim().is_empty());
    }
}

#[test]
fn corrections_are_verified_by_execution_not_syntax() {
    // A corrected query may differ syntactically from gold; correction is
    // judged by execution match. Verify at least one corrected case is
    // *not* structurally identical to gold.
    let (spider, _, llm, user) = setup();
    let run = CorrectionRun::new(&spider, &llm, &user).demos_k(3);
    let errors = run.collect_errors();
    let cases = run.annotate(&errors);
    let mut corrected_any = false;
    for case in &cases {
        let example = &spider.examples[case.error.example_idx];
        let db = spider.database(example);
        let out = fisql_core::incorporate(
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
            &llm,
            &fisql_core::IncorporateContext {
                db,
                example,
                question: &example.question,
                previous: &normalize_query(&case.error.initial),
                feedback: &case.feedback,
                round: 0,
                conformance_gate: false,
            },
        );
        if fisql_spider::check_prediction(db, example, &out.query).is_correct() {
            corrected_any = true;
        }
    }
    assert!(corrected_any, "no case was corrected at all");
}

#[test]
fn gate_corrects_hallucinated_column_without_engine_execution() {
    // A candidate referencing a column that exists nowhere in the schema
    // (a hallucinated name one typo away from a real one) is caught by the
    // static analyzer inside the incorporation step: repaired before it
    // could burn an engine execution, with the diagnostics folded into the
    // regeneration prompt.
    let aep = build_aep(&AepConfig {
        n_examples: 3,
        seed: 21,
    });
    let e = &aep.examples[0];
    let db = aep.database(e);
    let previous = normalize_query(
        &parse_query("SELECT COUNT(*) FROM hkg_dim_segment WHERE createdTme >= '2024-01-01'")
            .unwrap(),
    );
    // Feedback no interpreter can ground: the model regenerates the same
    // (still hallucinated) query, so only the gate stands between the typo
    // and the engine.
    let feedback = Feedback {
        text: "please make it nicer".into(),
        highlight: None,
        intended: vec![],
        misaligned: false,
    };
    let llm = SimLlm::new(LlmConfig::default());
    let out = incorporate(
        Strategy::Fisql {
            routing: true,
            highlighting: false,
        },
        &llm,
        &IncorporateContext {
            db,
            example: e,
            question: &e.question,
            previous: &previous,
            feedback: &feedback,
            round: 0,
            conformance_gate: false,
        },
    );
    assert!(out.gate.has_errors(), "gate saw no errors");
    assert!(
        out.gate.repaired,
        "gate did not repair: {}",
        print_query(&out.query)
    );
    assert_eq!(out.gate.executions_saved, 1);
    // Identifiers are normalized to lowercase, so compare that way.
    let sql = print_query(&out.query);
    assert!(sql.contains("createdtime"), "not corrected: {sql}");
    assert!(!sql.contains("createdtme"), "typo survived: {sql}");
    // The prompt carries the analyzer's findings for the next round.
    assert!(out.prompt.contains("static analysis"), "{}", out.prompt);
    assert!(out.prompt.contains("createdtme"), "{}", out.prompt);
    // And the repaired query executes cleanly.
    assert!(execute_sql(db, &sql).is_ok());
}

#[test]
fn session_transcript_records_full_conversation() {
    let aep = build_aep(&AepConfig {
        n_examples: 3,
        seed: 77,
    });
    let e = &aep.examples[0];
    let llm = SimLlm::new(LlmConfig::default());
    let assistant = Assistant::for_corpus(&aep, llm.clone(), 2);
    let mut session = Session::new(
        aep.database(e),
        assistant,
        Strategy::Fisql {
            routing: true,
            highlighting: false,
        },
    );
    session.ask(e);
    session.give_feedback(&llm, e, "we are in 2024", None);
    let transcript = session.render_transcript();
    assert_eq!(transcript.matches("User>").count(), 2);
    assert_eq!(transcript.matches("Assistant>").count(), 2);
}
