//! Channel-closure test: for (almost) every error channel the corpus can
//! generate, the *noise-free* FISQL loop must close it —
//!
//! corrupt(gold) → simulated user verbalizes the diff → interpreter
//! grounds the utterance → edit engine applies → execution matches gold.
//!
//! This is the strongest end-to-end statement about the pipeline: the
//! feedback language the user speaks and the language the interpreter
//! understands actually meet, channel by channel, with all stochastic
//! knobs pinned to their cooperative extremes. Channels whose feedback is
//! *inherently* beyond one utterance (whole-query rewrites) are exempted
//! and tracked explicitly.

use fisql::prelude::*;
use std::collections::BTreeMap;

fn cooperative_llm() -> SimLlm {
    SimLlm::new(LlmConfig {
        seed: 1,
        calibration: Calibration {
            router_noise: 0.0,
            edit_apply_with_routing: 1.0,
            edit_apply_without_routing: 1.0,
            moderate_edit_reliability: 1.0,
            structural_edit_reliability: 1.0,
            ..Default::default()
        },
    })
}

fn cooperative_user() -> SimUser {
    SimUser::new(UserConfig {
        seed: 1,
        p_engage: 1.0,
        p_misalign: 0.0,
        p_vague: 0.0, // most explicit phrasing
        p_express_rewrite: 1.0,
        max_visible_edits: 8,
        p_highlight: 1.0,
    })
}

#[test]
fn every_channel_kind_is_closable_by_feedback() {
    let corpus = build_spider(&SpiderConfig {
        n_databases: 24,
        n_examples: 400,
        seed: 0xC105,
    });
    let llm = cooperative_llm();
    let user = cooperative_user();

    // channel kind -> (closed, attempted)
    let mut stats: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();

    for e in &corpus.examples {
        let db = corpus.database(e);
        for wc in &e.channels {
            let kind = wc.channel.kind();
            let bad = normalize_query(&fisql_spider::corrupt(&e.intent, &wc.channel));
            if structurally_equal(&bad, &e.gold) {
                continue; // corruption was a no-op on this example
            }
            // Also skip corruptions that happen to be execution-equivalent
            // (the user sees nothing wrong).
            if fisql_spider::check_prediction(db, e, &bad).is_correct() {
                continue;
            }
            let view = UserView {
                question: e.question.clone(),
                sql: fisql::fisql_sqlkit::print_query_spanned(&bad),
                explanation: fisql_core::explain_query(&bad),
                result: Err(String::new()),
            };
            // Up to three cooperative rounds (a single channel can need a
            // couple of utterances when its diff spans clauses).
            let mut current = bad;
            let mut closed = false;
            for round in 0..3u64 {
                let Some(mut fb) = user.feedback(e, &current, &view, round) else {
                    break;
                };
                let spanned = fisql::fisql_sqlkit::print_query_spanned(&current);
                user.add_highlight(&mut fb, &spanned, e.id, round);
                let out = fisql_core::incorporate(
                    Strategy::Fisql {
                        routing: true,
                        highlighting: true,
                    },
                    &llm,
                    &fisql_core::IncorporateContext {
                        db,
                        example: e,
                        question: &e.question,
                        previous: &current,
                        feedback: &fb,
                        round,
                        conformance_gate: false,
                    },
                );
                current = out.query;
                if fisql_spider::check_prediction(db, e, &current).is_correct() {
                    closed = true;
                    break;
                }
            }
            let slot = stats.entry(kind).or_insert((0, 0));
            slot.1 += 1;
            if closed {
                slot.0 += 1;
            }
        }
    }

    // Report and assert per-channel closure rates.
    let mut report = String::new();
    let mut failures = Vec::new();
    for (kind, (closed, attempted)) in &stats {
        let rate = *closed as f64 / (*attempted).max(1) as f64;
        report.push_str(&format!(
            "{kind:<26} {closed:>4}/{attempted:<4} ({:.0}%)\n",
            100.0 * rate
        ));
        // Whole-query rewrites (from set-op shape changes) are legitimately
        // hard; every single-clause channel must close in the vast
        // majority of cases.
        let threshold = match *kind {
            // Join-structure channels can produce diffs the single-round
            // language can only partially express.
            "missing-join" => 0.55,
            _ => 0.75,
        };
        if rate < threshold && *attempted >= 5 {
            failures.push(format!("{kind}: {closed}/{attempted}"));
        }
    }
    println!("{report}");
    assert!(
        failures.is_empty(),
        "channels below closure threshold:\n{}\nfull report:\n{report}",
        failures.join("\n")
    );
    // Coverage: the corpus must actually have exercised a broad channel
    // inventory.
    assert!(
        stats.len() >= 10,
        "only {} channel kinds exercised: {:?}",
        stats.len(),
        stats.keys().collect::<Vec<_>>()
    );
}

#[test]
fn aep_jargon_channels_close_too() {
    let corpus = build_aep(&AepConfig {
        n_examples: 80,
        seed: 0xC106,
    });
    let llm = cooperative_llm();
    let user = cooperative_user();
    let mut closed = 0;
    let mut attempted = 0;
    for e in &corpus.examples {
        let db = corpus.database(e);
        let Some(wc) = e
            .channels
            .iter()
            .find(|wc| wc.channel.kind() == "table-confusion")
        else {
            continue;
        };
        let bad = normalize_query(&fisql_spider::corrupt(&e.intent, &wc.channel));
        if structurally_equal(&bad, &e.gold)
            || fisql_spider::check_prediction(db, e, &bad).is_correct()
        {
            continue;
        }
        attempted += 1;
        let view = UserView {
            question: e.question.clone(),
            sql: fisql::fisql_sqlkit::print_query_spanned(&bad),
            explanation: String::new(),
            result: Err(String::new()),
        };
        let Some(fb) = user.feedback(e, &bad, &view, 0) else {
            continue;
        };
        let out = fisql_core::incorporate(
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
            &llm,
            &fisql_core::IncorporateContext {
                db,
                example: e,
                question: &e.question,
                previous: &bad,
                feedback: &fb,
                round: 0,
                conformance_gate: false,
            },
        );
        if fisql_spider::check_prediction(db, e, &out.query).is_correct() {
            closed += 1;
        }
    }
    assert!(attempted >= 10, "too few jargon cases: {attempted}");
    assert!(
        closed * 10 >= attempted * 8,
        "jargon closure too low: {closed}/{attempted}"
    );
}
