//! Hot-standby failover tests: journal shipping to a follower, fenced
//! failover, and clients that survive a dying primary — all against
//! real daemons on real sockets, killed without farewell mid-load.

use fisql_core::serve::{
    request_promote, request_stats, run_failover, AckMode, ClientRequest, Connected,
    FailoverConfig, KillPoint, Role, ServeClient, ServeSummary, Server, ServerHandle,
    ServerResponse, SessionStore, StoreOptions,
};
use fisql_core::ServeConfig;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn temp_store(tag: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("fisql-failover-{}-{tag}.fjnl", std::process::id()));
    std::fs::remove_file(&path).ok();
    path
}

/// A small, fast serving configuration on an ephemeral port.
fn test_config() -> ServeConfig {
    ServeConfig::default().port(0).n_examples(24)
}

struct Node {
    addr: String,
    repl_addr: Option<SocketAddr>,
    handle: ServerHandle,
    thread: JoinHandle<ServeSummary>,
}

fn boot(config: ServeConfig) -> Node {
    let server = Server::bind(config).expect("bind");
    let handle = server.handle().expect("handle");
    let addr = handle.addr().to_string();
    let repl_addr = server.repl_addr();
    let thread = std::thread::spawn(move || server.serve().expect("serve loop"));
    Node {
        addr,
        repl_addr,
        handle,
        thread,
    }
}

fn stop(node: Node) -> ServeSummary {
    node.handle.shutdown();
    node.thread.join().expect("server thread")
}

fn admitted(connected: Connected) -> ServeClient {
    match connected {
        Connected::Admitted(client) => client,
        Connected::Rejected { reason, .. } => panic!("rejected: {reason}"),
        Connected::ShuttingDown => panic!("daemon shutting down"),
        Connected::Fenced { message, .. } => panic!("fenced: {message}"),
    }
}

fn wait_for(what: &str, budget: Duration, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + budget;
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Boots a primary/follower pair on ephemeral ports and waits for the
/// replication link.
fn boot_pair(base: &ServeConfig, tag: &str, auto_promote: bool) -> (Node, Node, PathBuf, PathBuf) {
    let p_store = temp_store(&format!("{tag}-p"));
    let f_store = temp_store(&format!("{tag}-f"));
    let primary = boot(base.clone().store(&p_store).repl_listen("127.0.0.1:0"));
    let repl = primary.repl_addr.expect("repl listener bound");
    let follower = boot(
        base.clone()
            .store(&f_store)
            .replica_of(repl.to_string())
            .auto_promote(auto_promote),
    );
    wait_for("follower to attach", Duration::from_secs(10), || {
        primary.handle.repl().log.followers() > 0
    });
    (primary, follower, p_store, f_store)
}

// ---------------------------------------------------------------------
// The tentpole: kill the primary mid-load, client survives.
// ---------------------------------------------------------------------

#[test]
fn quorum_failover_mid_load_loses_no_acknowledged_round() {
    let config = FailoverConfig {
        serve: test_config()
            .repl_ack(AckMode::Quorum)
            .repl_ack_timeout_ms(5_000),
        baseline_store: temp_store("quorum-base"),
        primary_store: temp_store("quorum-p"),
        follower_store: temp_store("quorum-f"),
        sessions: 24,
        concurrency: 4,
        max_rounds: 2,
        load_seed: 0xFA11,
        kill: KillPoint::AfterRounds(2),
        reattach_budget_ms: 20_000,
    };
    let report = run_failover(&config).expect("failover run");

    assert!(
        report.failovers >= 1,
        "the kill must land under active sessions: {report:?}"
    );
    assert_eq!(
        report.lost_rounds, 0,
        "quorum acks must not lose an acknowledged round"
    );
    assert_eq!(report.ha.sessions_failed, 0, "{report:?}");
    assert_eq!(report.ha.sessions_completed as usize, config.sessions);
    assert!(
        report.digests_match,
        "resumed transcripts must be byte-identical to the unfailed run: \
         baseline {:#x} vs ha {:#x}",
        report.baseline.digest, report.ha.digest
    );
    let survivor = report.survivor.expect("survivor stats");
    assert_eq!(survivor.role, Role::Primary, "follower promoted itself");
    assert!(survivor.epoch >= 1, "promotion bumps the fencing epoch");
}

#[test]
fn quorum_failover_during_compaction_keeps_the_story_straight() {
    let config = FailoverConfig {
        serve: test_config()
            .repl_ack(AckMode::Quorum)
            .repl_ack_timeout_ms(5_000)
            .compact_every(2),
        baseline_store: temp_store("compact-base"),
        primary_store: temp_store("compact-p"),
        follower_store: temp_store("compact-f"),
        sessions: 20,
        concurrency: 4,
        max_rounds: 2,
        load_seed: 0xC0AC,
        kill: KillPoint::DuringCompaction,
        reattach_budget_ms: 20_000,
    };
    let report = run_failover(&config).expect("failover run");

    assert_eq!(report.lost_rounds, 0);
    assert_eq!(report.ha.sessions_failed, 0, "{report:?}");
    assert_eq!(report.ha.sessions_completed as usize, config.sessions);
    assert!(report.digests_match);
    let survivor = report.survivor.expect("survivor stats");
    assert_eq!(survivor.role, Role::Primary);
}

#[test]
fn lag_boundary_kill_with_async_acks_completes_and_accounts_losses() {
    let config = FailoverConfig {
        serve: test_config(), // --repl-ack none: shipping is async
        baseline_store: temp_store("lag-base"),
        primary_store: temp_store("lag-p"),
        follower_store: temp_store("lag-f"),
        sessions: 16,
        concurrency: 4,
        max_rounds: 2,
        load_seed: 0x1A6B,
        kill: KillPoint::LagBoundary,
        reattach_budget_ms: 20_000,
    };
    let report = run_failover(&config).expect("failover run");

    // Every script still completes — the client absorbs the kill.
    assert_eq!(report.ha.sessions_failed, 0, "{report:?}");
    assert_eq!(report.ha.sessions_completed as usize, config.sessions);
    assert!(report.failovers >= 1, "{report:?}");
    // Async acks may or may not lose rounds at the lag boundary
    // (timing), but the accounting must be coherent: an intact run has
    // an intact digest.
    if report.lost_rounds == 0 {
        assert!(report.digests_match, "{report:?}");
    }
}

// ---------------------------------------------------------------------
// Fencing: a deposed primary refuses writes with a typed rejection.
// ---------------------------------------------------------------------

#[test]
fn fenced_ex_primary_refuses_writes_with_a_typed_rejection() {
    let base = test_config();
    let (primary, follower, _p_store, _f_store) = boot_pair(&base, "fence", false);

    // A live conversation on the primary, pre-coup.
    let corpus = fisql_spider::build_aep(&fisql_spider::AepConfig {
        n_examples: base.n_examples,
        seed: base.seed,
    });
    let mut on_primary = admitted(
        ServeClient::connect_retry(primary.addr.as_str(), None, Duration::from_secs(10))
            .expect("connect"),
    );
    on_primary
        .ask(&corpus.examples[0].question)
        .expect("ask before the coup");

    // Depose it: promote the follower by admin request; the promotion
    // notifies the old primary, which fences itself.
    let epoch = request_promote(follower.addr.as_str()).expect("promote follower");
    assert_eq!(epoch, 1, "first promotion in this lineage");
    wait_for(
        "ex-primary to fence itself",
        Duration::from_secs(10),
        || request_stats(primary.addr.as_str()).is_ok_and(|s| s.role == Role::Fenced),
    );

    // The in-flight session's next write gets a *typed* rejection — and
    // the fenced store must not have journaled anything for it.
    let ops_before = request_stats(primary.addr.as_str())
        .expect("stats")
        .store
        .ops;
    match on_primary
        .request(&ClientRequest::Feedback {
            text: "we are in 2024".to_string(),
            highlight: None,
        })
        .expect("a typed frame, not a transport error")
    {
        ServerResponse::Fenced {
            role,
            epoch,
            message,
        } => {
            assert_eq!(role, Role::Fenced);
            // The frame carries the node's *own* (stale) epoch and
            // names the lineage that deposed it.
            assert_eq!(epoch, 0);
            assert!(message.contains("deposed by epoch 1"), "{message}");
        }
        other => panic!("expected a Fenced frame, got {other:?}"),
    }
    let ops_after = request_stats(primary.addr.as_str())
        .expect("stats")
        .store
        .ops;
    assert_eq!(
        ops_before, ops_after,
        "a fenced node must not append — silent divergence"
    );

    // Fresh sessions are refused at the handshake, and the fenced node
    // cannot be promoted (that would fork history).
    match ServeClient::connect(primary.addr.as_str(), None).expect("connect") {
        Connected::Fenced { role, .. } => assert_eq!(role, Role::Fenced),
        _ => panic!("a fenced node must refuse new sessions"),
    }
    assert!(
        request_promote(primary.addr.as_str()).is_err(),
        "promoting a fenced node would fork history"
    );

    // The promoted follower serves.
    let mut on_new_primary = admitted(
        ServeClient::connect_retry(follower.addr.as_str(), None, Duration::from_secs(10))
            .expect("connect to promoted follower"),
    );
    let turn = on_new_primary
        .ask(&corpus.examples[1].question)
        .expect("the new primary serves");
    assert!(!turn.sql.is_empty());
    on_new_primary.bye().expect("bye");

    stop(primary);
    stop(follower);
}

// ---------------------------------------------------------------------
// Shipping: the follower's store tracks the primary byte-identically.
// ---------------------------------------------------------------------

#[test]
fn follower_store_tracks_the_primary_byte_identically() {
    let base = test_config();
    let (primary, follower, p_store, f_store) = boot_pair(&base, "track", false);
    let corpus = fisql_spider::build_aep(&fisql_spider::AepConfig {
        n_examples: base.n_examples,
        seed: base.seed,
    });

    for i in 0..3 {
        let mut client = admitted(
            ServeClient::connect_retry(primary.addr.as_str(), None, Duration::from_secs(10))
                .expect("connect"),
        );
        client.ask(&corpus.examples[i].question).expect("ask");
        client.feedback("we are in 2024", None).expect("feedback");
        client.bye().expect("bye");
    }

    // Catch up: every shipped record acknowledged, stores the same size.
    wait_for("replication to drain", Duration::from_secs(10), || {
        let p = request_stats(primary.addr.as_str());
        let f = request_stats(follower.addr.as_str());
        match (p, f) {
            (Ok(p), Ok(f)) => p.replication_lag_records == 0 && p.store.ops == f.store.ops,
            _ => false,
        }
    });

    // Graceful shutdown syncs both journals; the follower first so it
    // never observes the dying primary and promotes.
    stop(follower);
    stop(primary);

    let p_bytes = std::fs::read(&p_store).expect("primary journal");
    let f_bytes = std::fs::read(&f_store).expect("follower journal");
    assert_eq!(
        p_bytes, f_bytes,
        "the follower's journal must track the primary's byte-identically"
    );
    assert!(!p_bytes.is_empty());
}

// ---------------------------------------------------------------------
// Resync: a compacted-and-restarted primary renumbers its stream; the
// follower must detect the lineage break and re-bootstrap, not silently
// ack records it never applied.
// ---------------------------------------------------------------------

#[test]
fn follower_resyncs_after_primary_compaction_and_restart() {
    let base = test_config();
    let (primary, follower, p_store, f_store) = boot_pair(&base, "resync", false);
    let corpus = fisql_spider::build_aep(&fisql_spider::AepConfig {
        n_examples: base.n_examples,
        seed: base.seed,
    });

    // Three full conversations, all closed — compaction will drop every
    // one of them and renumber the stream from scratch.
    for i in 0..3 {
        let mut client = admitted(
            ServeClient::connect_retry(primary.addr.as_str(), None, Duration::from_secs(10))
                .expect("connect"),
        );
        client.ask(&corpus.examples[i].question).expect("ask");
        client.feedback("we are in 2024", None).expect("feedback");
        client.bye().expect("bye");
    }
    wait_for("replication to drain", Duration::from_secs(10), || {
        let p = request_stats(primary.addr.as_str());
        let f = request_stats(follower.addr.as_str());
        match (p, f) {
            (Ok(p), Ok(f)) => p.replication_lag_records == 0 && p.store.ops == f.store.ops,
            _ => false,
        }
    });
    let full_ops = request_stats(follower.addr.as_str())
        .expect("follower stats")
        .store
        .ops;
    assert!(full_ops > 0);
    stop(follower);
    stop(primary);

    // Offline compaction: every session is closed, so the rewritten
    // journal keeps nothing — the reborn primary's replication log is a
    // renumbered stream the follower's full copy no longer prefixes.
    {
        let store = SessionStore::open(
            Some(&p_store),
            StoreOptions::new(base.fingerprint()).fsync(fisql_core::FsyncPolicy::EachRecord),
        )
        .expect("reopen primary store");
        let outcome = store.compact().expect("compact");
        assert!(outcome.ops_after < outcome.ops_before, "{outcome:?}");
    }

    let primary = boot(base.clone().store(&p_store).repl_listen("127.0.0.1:0"));
    let repl = primary.repl_addr.expect("repl listener bound");
    let follower = boot(
        base.clone()
            .store(&f_store)
            .replica_of(repl.to_string())
            .auto_promote(false),
    );
    wait_for("follower to re-attach", Duration::from_secs(10), || {
        primary.handle.repl().log.followers() > 0
    });

    // One fresh conversation proves the resynced link ships again.
    let mut client = admitted(
        ServeClient::connect_retry(primary.addr.as_str(), None, Duration::from_secs(10))
            .expect("connect"),
    );
    client.ask(&corpus.examples[3].question).expect("ask");
    client.feedback("we are in 2024", None).expect("feedback");
    client.bye().expect("bye");

    // The follower must converge on exactly the primary's image: the
    // stale full stream wiped, only post-compaction records applied. A
    // count-based resume would instead leave it with its old ops (plus
    // anything re-shipped on top) while still acking.
    wait_for("post-resync convergence", Duration::from_secs(10), || {
        let p = request_stats(primary.addr.as_str());
        let f = request_stats(follower.addr.as_str());
        match (p, f) {
            (Ok(p), Ok(f)) => p.replication_lag_records == 0 && p.store.ops == f.store.ops,
            _ => false,
        }
    });
    let f_stats = request_stats(follower.addr.as_str()).expect("follower stats");
    assert!(
        f_stats.store.ops < full_ops,
        "the follower must have dropped its stale pre-compaction stream \
         ({} ops, was {full_ops})",
        f_stats.store.ops,
    );

    stop(follower);
    stop(primary);
    std::fs::remove_file(&p_store).ok();
    std::fs::remove_file(&f_store).ok();
}

// ---------------------------------------------------------------------
// Epoch records in the store.
// ---------------------------------------------------------------------

#[test]
fn epoch_persists_across_reopen_and_compaction_and_never_regresses() {
    let path = temp_store("epoch");
    let options = || StoreOptions::new(0xE0C).fsync(fisql_core::FsyncPolicy::EachRecord);

    let store = SessionStore::open(Some(&path), options()).expect("open");
    assert_eq!(store.snapshot().epoch, 0);
    let (id, _) = store.open_session().expect("session");
    store.set_epoch(3).expect("set epoch");
    // Lower (or equal) epochs never regress the fence.
    store.set_epoch(1).expect("stale set is a no-op");
    assert_eq!(store.snapshot().epoch, 3);
    drop(store);

    let store = SessionStore::open(Some(&path), options()).expect("reopen");
    assert_eq!(store.snapshot().epoch, 3, "epoch survives restart");
    // Compaction rewrites the journal; the epoch must be re-asserted.
    store
        .append(id, fisql_core::serve::SessionOp::Closed)
        .assert_durable();
    store.compact().expect("compact");
    drop(store);

    let store = SessionStore::open(Some(&path), options()).expect("reopen after compact");
    assert_eq!(
        store.snapshot().epoch,
        3,
        "a compaction rewrite must not forget the fencing epoch"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn unreplicated_store_never_writes_epoch_records() {
    // A daemon with no replication wiring must keep its journal format
    // exactly as before: epoch 0 is never journaled, so reopening sees
    // a lineage that was never promoted.
    let path = temp_store("no-epoch");
    let options = || StoreOptions::new(0xABE).fsync(fisql_core::FsyncPolicy::EachRecord);

    let store = SessionStore::open(Some(&path), options()).expect("open");
    let (id, _) = store.open_session().expect("session");
    store
        .append(
            id,
            fisql_core::serve::SessionOp::Ask {
                example_idx: 0,
                question: "q".to_string(),
            },
        )
        .assert_durable();
    store
        .append(id, fisql_core::serve::SessionOp::Closed)
        .assert_durable();
    store.compact().expect("compact");
    drop(store);

    let store = SessionStore::open(Some(&path), options()).expect("reopen");
    assert_eq!(store.snapshot().epoch, 0);
    std::fs::remove_file(&path).ok();
}

/// Test-side convenience: appends must be durable in these tests.
trait AssertDurable {
    fn assert_durable(self);
}
impl AssertDurable for fisql_core::serve::Appended {
    fn assert_durable(self) {
        match self {
            fisql_core::serve::Appended::Durable => {}
            other @ fisql_core::serve::Appended::Degraded { .. } => {
                panic!("append degraded: {other:?}")
            }
        }
    }
}
