//! The network chaos + disk-fault suite: adversarial clients and an
//! unreliable disk against a real daemon on a real socket. The daemon
//! must shed every attacker with a typed frame or a closed socket,
//! return every admission slot, keep healthy sessions byte-identical,
//! and degrade — never die — when the store's disk misbehaves.

use fisql_core::serve::{
    run_chaos, run_load, ChaosBehavior, ChaosConfig, Connected, DiskFaultConfig, ServeClient,
    ServeSummary, Server, ServerHandle,
};
use fisql_core::{LoadConfig, ServeConfig, SessionEvent};
use fisql_spider::{build_aep, AepConfig};
use std::thread::JoinHandle;
use std::time::Duration;

fn test_config() -> ServeConfig {
    // The CI chaos job arms the store's deterministic disk-fault lane
    // via FISQL_DISK_FAULT_RATE; locally the lane is off unless a test
    // pins its own rate. Only stored (--store) daemons feel it either
    // way — a memory-only store has nothing to inject into.
    let env_rate = DiskFaultConfig::from_env().map_or(0.0, |c| c.append_rate);
    ServeConfig::default()
        .port(0)
        .n_examples(24)
        .disk_fault_rate(env_rate)
}

fn boot(config: ServeConfig) -> (String, ServerHandle, JoinHandle<ServeSummary>) {
    let server = Server::bind(config).expect("bind");
    let handle = server.handle().expect("handle");
    let addr = handle.addr().to_string();
    let thread = std::thread::spawn(move || server.serve().expect("serve loop"));
    (addr, handle, thread)
}

fn stop(handle: &ServerHandle, thread: JoinHandle<ServeSummary>) -> ServeSummary {
    handle.shutdown();
    thread.join().expect("server thread")
}

fn admitted(connected: Connected) -> ServeClient {
    match connected {
        Connected::Admitted(client) => client,
        Connected::Rejected { reason, .. } => panic!("rejected: {reason}"),
        Connected::ShuttingDown => panic!("daemon shutting down"),
        Connected::Fenced { message, .. } => panic!("fenced: {message}"),
    }
}

#[test]
fn chaos_clients_never_kill_the_daemon_and_every_slot_returns() {
    // Four slots, a deep queue, and a 300 ms idle budget: ten seeded
    // attackers (slowloris, mid-frame disconnects, oversized and
    // garbage frames, silent stalls) all get slots and all lose them.
    let config = test_config()
        .max_sessions(4)
        .queue_depth(16)
        .idle_timeout_ms(300);
    let seed = config.seed;
    let n_examples = config.n_examples;
    let (addr, handle, thread) = boot(config);

    let report = run_chaos(&ChaosConfig {
        addr: addr.clone(),
        clients: 10,
        seed: 0xBAD_5EED,
        byte_pause_ms: 30,
        read_deadline_ms: 20_000,
        connect_retry_ms: 10_000,
        ..ChaosConfig::default()
    })
    .expect("chaos run");
    assert_eq!(report.clients, 10);
    assert_eq!(report.failed, 0, "{report:?}");
    assert_eq!(
        report.admitted + report.rejected,
        10,
        "every client resolved: {report:?}"
    );

    // After the abuse, a normal session still completes on a free slot.
    let corpus = build_aep(&AepConfig { n_examples, seed });
    let mut client =
        admitted(ServeClient::connect_retry(addr.as_str(), None, Duration::from_secs(10)).unwrap());
    let turn = client.ask(&corpus.examples[0].question).expect("ask");
    assert!(!turn.sql.is_empty());
    client.bye().expect("bye");

    let summary = stop(&handle, thread);
    assert_eq!(summary.final_active, 0, "every slot returned");
    assert_eq!(summary.final_queued, 0, "no leaked queue entries");
    assert_eq!(summary.contained_panics, 0);
    // Every client-observed reap was a real server-side reap; the server
    // may additionally have reaped attackers whose sockets died before
    // the farewell frame reached them.
    assert!(summary.admission.reaped >= report.reaped);
    assert!(summary.admission.reaped > 0, "{report:?}");
}

#[test]
fn silent_stalls_observe_their_own_typed_reap() {
    // Pin the behavior so the assertion is exact: every attacker stalls
    // after admission, and every one of them is told `Reaped`.
    let config = test_config().max_sessions(3).idle_timeout_ms(200);
    let (addr, handle, thread) = boot(config);

    let report = run_chaos(&ChaosConfig {
        addr,
        clients: 3,
        seed: 0x51AE,
        behaviors: vec![ChaosBehavior::SilentStall],
        read_deadline_ms: 20_000,
        connect_retry_ms: 10_000,
        ..ChaosConfig::default()
    })
    .expect("chaos run");
    assert_eq!(report.admitted, 3, "{report:?}");
    assert_eq!(report.reaped, 3, "{report:?}");
    assert_eq!(report.failed, 0);

    let summary = stop(&handle, thread);
    assert_eq!(summary.admission.reaped, 3);
    assert_eq!(summary.final_active, 0);
}

#[test]
fn healthy_session_digests_are_unchanged_by_concurrent_chaos() {
    let serve = || {
        test_config()
            .max_sessions(8)
            .queue_depth(32)
            .idle_timeout_ms(400)
    };
    let load_for = |addr: String, seed: u64, n_examples: usize| LoadConfig {
        addr,
        sessions: 12,
        concurrency: 4,
        max_rounds: 2,
        corpus_seed: seed,
        n_examples,
        ..LoadConfig::default()
    };

    // Baseline: the scripted load on a quiet daemon.
    let config = serve();
    let (seed, n_examples) = (config.seed, config.n_examples);
    let (addr, handle, thread) = boot(config);
    let baseline = run_load(&load_for(addr, seed, n_examples)).expect("baseline load");
    assert_eq!(baseline.sessions_completed, 12);
    stop(&handle, thread);

    // The same load with ten attackers hammering the same daemon.
    let (addr, handle, thread) = boot(serve());
    let chaos_addr = addr.clone();
    let chaos = std::thread::spawn(move || {
        run_chaos(&ChaosConfig {
            addr: chaos_addr,
            clients: 10,
            seed: 0xD06_F00D,
            byte_pause_ms: 25,
            read_deadline_ms: 20_000,
            connect_retry_ms: 10_000,
            ..ChaosConfig::default()
        })
        .expect("chaos run")
    });
    let under_fire = run_load(&load_for(addr, seed, n_examples)).expect("load under chaos");
    let report = chaos.join().expect("chaos thread");

    assert_eq!(under_fire.sessions_completed, 12, "no healthy casualties");
    assert_eq!(under_fire.sessions_failed, 0);
    assert_eq!(
        under_fire.digest, baseline.digest,
        "healthy transcripts must be byte-identical under chaos"
    );
    assert_eq!(report.failed, 0, "{report:?}");

    let summary = stop(&handle, thread);
    assert_eq!(summary.final_active, 0);
    assert_eq!(summary.final_queued, 0);
    assert_eq!(summary.contained_panics, 0);
}

#[test]
fn injected_disk_faults_degrade_sessions_but_the_daemon_survives() {
    let dir = std::env::temp_dir().join(format!("fisql-chaos-disk-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("sessions.fjnl");
    std::fs::remove_file(&store).ok();

    // Every store append fails: sessions must degrade to memory-only
    // and keep serving, not die.
    let config = test_config().store(&store).disk_fault_rate(1.0);
    let seed = config.seed;
    let n_examples = config.n_examples;
    let corpus = build_aep(&AepConfig { n_examples, seed });
    let (addr, handle, thread) = boot(config);

    let mut client =
        admitted(ServeClient::connect_retry(addr.as_str(), None, Duration::from_secs(10)).unwrap());
    let turn = client.ask(&corpus.examples[2].question).expect("ask");
    assert!(!turn.sql.is_empty());
    let turn = client.feedback("we are in 2024", None).expect("feedback");
    assert_eq!(turn.round, 1);

    // The degradation is visible in the transcript, once.
    let events = client.transcript().expect("transcript");
    let degraded = events
        .iter()
        .filter(|e| matches!(e, SessionEvent::Degraded { .. }))
        .count();
    assert_eq!(degraded, 1, "exactly one degradation notice: {events:?}");
    client.bye().expect("bye");

    let summary = stop(&handle, thread);
    assert_eq!(summary.sessions_opened, 1);
    assert_eq!(summary.sessions_degraded, 1);
    assert!(summary.store.append_faults > 0);
    assert_eq!(summary.contained_panics, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_on_a_stored_daemon_leaves_the_store_replayable() {
    // Attackers against a journaling daemon: the survivors of the chaos
    // (sessions the attackers opened but never closed) replay cleanly
    // on a rebind — the store is never corrupted by hostile traffic.
    let dir = std::env::temp_dir().join(format!("fisql-chaos-store-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("sessions.fjnl");
    std::fs::remove_file(&store).ok();

    let config = test_config()
        .store(&store)
        .max_sessions(4)
        .idle_timeout_ms(300);
    let (addr, handle, thread) = boot(config.clone());
    let report = run_chaos(&ChaosConfig {
        addr,
        clients: 8,
        seed: 0xC0FFEE,
        byte_pause_ms: 30,
        read_deadline_ms: 20_000,
        connect_retry_ms: 10_000,
        ..ChaosConfig::default()
    })
    .expect("chaos run");
    assert_eq!(report.failed, 0, "{report:?}");
    stop(&handle, thread);

    // Rebinding over the battle-scarred store must succeed and replay
    // whatever survived without error.
    let restarted = Server::bind(config).expect("rebind over post-chaos store");
    let recovered = restarted.recovered_sessions();
    let handle = restarted.handle().unwrap();
    let addr = handle.addr().to_string();
    let thread = std::thread::spawn(move || restarted.serve().expect("serve loop"));
    for id in recovered {
        let mut client = admitted(
            ServeClient::connect_retry(addr.as_str(), Some(id), Duration::from_secs(10)).unwrap(),
        );
        let _ = client.transcript().expect("survivor transcript replays");
        client.bye().expect("bye");
    }
    stop(&handle, thread);
    std::fs::remove_dir_all(&dir).ok();
}
