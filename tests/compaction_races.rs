//! Compaction under pressure: rewrites racing the reaper and live
//! traffic, and rewrites on a disk that is actively failing. The
//! invariants under test are the three a rewrite must never bend —
//! checkpoint generation, the session-id reuse floor, and survivor
//! replay.

use fisql_core::serve::{
    Appended, CompactionOutcome, Connected, DiskFaultConfig, ServeClient, SessionOp, SessionStore,
    StoreOptions,
};
use fisql_core::{FsyncPolicy, ServeConfig};
use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_store(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "fisql-compaction-{}-{}.fjnl",
        tag,
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    path
}

fn options(fingerprint: u64) -> StoreOptions {
    StoreOptions::new(fingerprint).fsync(FsyncPolicy::EachRecord)
}

fn ask(i: u64) -> SessionOp {
    SessionOp::Ask {
        example_idx: i % 7,
        question: format!("question {i}"),
    }
}

// ---------------------------------------------------------------------
// Compaction racing appends, closes, and reaps (store-level threads).
// ---------------------------------------------------------------------

#[test]
fn compaction_racing_closes_and_reaps_keeps_generation_floor_and_survivors() {
    let path = temp_store("race");
    let store = Arc::new(SessionStore::open(Some(&path), options(0xACE1)).expect("open"));

    // Four writer threads open sessions and end two of every three —
    // one with `Closed`, one with `Reaped` (the reaper's record) — while
    // a fifth thread compacts in a tight loop. Every interleaving of
    // "reap lands, rewrite starts" is fair game.
    let writers: Vec<_> = (0..4)
        .map(|t| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                let mut opened = Vec::new();
                let mut survivors = Vec::new();
                for i in 0..30u64 {
                    let (id, _) = store.open_session().expect("open session");
                    opened.push(id);
                    match store.append(id, ask(t * 100 + i)) {
                        Appended::Durable => {}
                        Appended::Degraded { error } => panic!("degraded: {error}"),
                    }
                    match i % 3 {
                        0 => {
                            store.append(id, SessionOp::Closed);
                        }
                        1 => {
                            store.append(id, SessionOp::Reaped { idle_ms: 1 + i });
                        }
                        _ => survivors.push(id),
                    }
                }
                (opened, survivors)
            })
        })
        .collect();

    let compactor = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            let mut outcomes: Vec<CompactionOutcome> = Vec::new();
            let deadline = Instant::now() + Duration::from_secs(20);
            while Instant::now() < deadline {
                let outcome = store.compact().expect("compact");
                if let Some(prev) = outcomes.last() {
                    assert!(
                        outcome.generation > prev.generation,
                        "generations must be strictly monotonic"
                    );
                }
                outcomes.push(outcome);
                if outcomes.len() >= 25 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            outcomes
        })
    };

    let mut opened = Vec::new();
    let mut survivors = Vec::new();
    for writer in writers {
        let (o, s) = writer.join().expect("writer thread");
        opened.extend(o);
        survivors.extend(s);
    }
    let outcomes = compactor.join().expect("compactor thread");
    assert!(!outcomes.is_empty());

    // One quiescent rewrite so the ended sessions are deterministically
    // gone, then check the three invariants.
    let last = store.compact().expect("final compact");
    let snapshot = store.snapshot();
    assert_eq!(
        snapshot.generation, last.generation,
        "snapshot generation tracks the last rewrite"
    );
    assert_eq!(
        snapshot.compactions as usize,
        outcomes.len() + 1,
        "every successful compact bumped the generation exactly once"
    );
    assert_eq!(snapshot.generation, snapshot.compactions);

    survivors.sort_unstable();
    let mut held = store.session_ids();
    held.sort_unstable();
    assert_eq!(held, survivors, "exactly the unended sessions survive");
    for &id in &survivors {
        let ops = store.session_ops(id);
        assert_eq!(ops.first(), Some(&SessionOp::Opened), "session {id}");
        assert_eq!(ops.len(), 2, "opened + one ask: {ops:?}");
    }

    // The id floor must hold across a restart: the checkpoint pins
    // next_session_id, so compacted-away ids are never reissued.
    let max_issued = *opened.iter().max().expect("sessions were opened");
    drop(store);
    let store = SessionStore::open(Some(&path), options(0xACE1)).expect("reopen");
    assert_eq!(store.snapshot().generation, snapshot.generation);
    let mut replayed = store.session_ids();
    replayed.sort_unstable();
    assert_eq!(replayed, survivors, "survivor replay after restart");
    let (fresh, _) = store.open_session().expect("fresh session");
    assert!(
        fresh > max_issued,
        "id {fresh} must clear the floor {max_issued}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn a_reap_landing_between_rewrites_never_reuses_its_id() {
    let path = temp_store("floor");

    let store = SessionStore::open(Some(&path), options(0xF100)).expect("open");
    let (first, _) = store.open_session().expect("first");
    store.append(first, SessionOp::Closed);
    let gen1 = store.compact().expect("compact closed").generation;
    assert_eq!(gen1, 1);

    // The reap lands after one rewrite already dropped a session, and
    // the next rewrite drops the reaped one too.
    let (reaped, _) = store.open_session().expect("second");
    assert!(reaped > first);
    store.append(reaped, SessionOp::Reaped { idle_ms: 42 });
    let outcome = store.compact().expect("compact reaped");
    assert_eq!(outcome.generation, 2);
    assert_eq!(outcome.sessions_dropped, 1);
    assert!(store.session_ids().is_empty());
    drop(store);

    // An empty-looking journal still remembers both the generation and
    // the floor: neither dropped id is ever handed out again.
    let store = SessionStore::open(Some(&path), options(0xF100)).expect("reopen");
    assert_eq!(store.snapshot().generation, 2);
    let (fresh, _) = store.open_session().expect("fresh");
    assert!(fresh > reaped, "{fresh} must clear the reaped id {reaped}");
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------
// Compaction under an actively failing disk.
// ---------------------------------------------------------------------

#[test]
fn compaction_under_full_fault_rate_heals_degraded_sessions() {
    let path = temp_store("heal");
    // Every live append fails: sessions degrade to memory-only. The
    // rewrite, though, serializes the *memory image* into a fresh
    // journal — so one successful compaction makes the survivors
    // durable again.
    let faulty = options(0x4EA1).faults(Some(DiskFaultConfig::uniform(1.0)));

    let store = SessionStore::open(Some(&path), faulty).expect("open");
    let (id, appended) = store.open_session().expect("open session");
    assert!(
        matches!(appended, Appended::Degraded { .. }),
        "a 1.0 fault rate must degrade the append: {appended:?}"
    );
    store.append(id, ask(0));
    store.append(id, ask(1));
    let (closed, _) = store.open_session().expect("second session");
    store.append(closed, SessionOp::Closed);
    assert!(store.snapshot().append_faults >= 5);

    let outcome = store.compact().expect("compact with a failing append lane");
    assert_eq!(outcome.generation, 1);
    assert_eq!(outcome.sessions_dropped, 1);
    drop(store);

    // Reopen with a healthy disk: the degraded session's full history
    // is on disk — written by the rewrite, not the faulty append path.
    let store = SessionStore::open(Some(&path), options(0x4EA1)).expect("reopen");
    assert_eq!(store.session_ids(), vec![id]);
    let ops = store.session_ops(id);
    assert_eq!(ops.len(), 3, "opened + two asks: {ops:?}");
    assert_eq!(ops.first(), Some(&SessionOp::Opened));
    assert_eq!(store.snapshot().generation, 1);
    let (fresh, _) = store.open_session().expect("fresh");
    assert!(fresh > closed, "floor survives the faulty epoch");
    std::fs::remove_file(&path).ok();
}

#[test]
fn disk_full_fails_compaction_typed_and_the_intact_prefix_replays() {
    let path = temp_store("full");
    let horizon = DiskFaultConfig {
        full_after_ops: Some(4),
        ..DiskFaultConfig::default()
    };

    let store =
        SessionStore::open(Some(&path), options(0xD15F).faults(Some(horizon))).expect("open");
    let (id, _) = store.open_session().expect("open session");
    store.append(id, ask(0));
    store.append(id, ask(1));
    store.append(id, ask(2));
    // Past the horizon: appends degrade, the store flips unwritable.
    let late = store.append(id, ask(3));
    assert!(matches!(late, Appended::Degraded { .. }));
    assert!(!store.writable());

    // Compaction on a full disk is a typed refusal, not a torn rewrite.
    let err = store.compact().expect_err("compaction must refuse");
    assert_eq!(err.kind(), io::ErrorKind::StorageFull);
    let refused = store.open_session().expect_err("new sessions are shed");
    assert_eq!(refused.kind(), io::ErrorKind::StorageFull);

    // The live session still serves from memory — all five ops.
    assert_eq!(store.session_ops(id).len(), 5);
    drop(store);

    // Restart sees exactly the journaled prefix: the four ops that beat
    // the horizon, in order, with nothing torn and generation 0.
    let store = SessionStore::open(Some(&path), options(0xD15F)).expect("reopen");
    let ops = store.session_ops(id);
    assert_eq!(ops.len(), 4, "the intact prefix: {ops:?}");
    assert_eq!(ops.first(), Some(&SessionOp::Opened));
    assert_eq!(store.snapshot().generation, 0);
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------
// The real reaper racing auto-compaction on a live daemon.
// ---------------------------------------------------------------------

#[test]
fn live_reaper_triggered_compactions_leave_survivors_replayable() {
    let dir = std::env::temp_dir().join(format!("fisql-compaction-live-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store_path = dir.join("sessions.fjnl");
    std::fs::remove_file(&store_path).ok();

    // compact_every(1): every close *and every reap* rewrites the
    // journal from inside the append — the reaper's own record is what
    // starts the rewrite it races.
    let config = ServeConfig::default()
        .port(0)
        .n_examples(24)
        .store(&store_path)
        .compact_every(1)
        .idle_timeout_ms(800)
        .max_sessions(8);
    let server = fisql_core::serve::Server::bind(config.clone()).expect("bind");
    let handle = server.handle().expect("handle");
    let addr = handle.addr().to_string();
    let thread = std::thread::spawn(move || server.serve().expect("serve loop"));

    let admit = |resume: Option<u64>| -> ServeClient {
        match ServeClient::connect_retry(addr.as_str(), resume, Duration::from_secs(10)) {
            Ok(Connected::Admitted(client)) => client,
            Ok(_) => panic!("not admitted"),
            Err(e) => panic!("connect failed: {e}"),
        }
    };

    // The survivor opens first, so every later rewrite must carry its
    // history forward.
    let mut survivor = admit(None);
    let survivor_id = survivor.session_id;
    survivor.ask("how many singers are there").expect("ask");
    survivor.feedback("only french ones", None).expect("round");

    // Three stallers go silent and wait for the reaper; three workers
    // close promptly. Each ending triggers an auto-compaction.
    let stallers: Vec<ServeClient> = (0..3)
        .map(|_| {
            let mut c = admit(None);
            c.ask("list all concerts").expect("staller ask");
            c
        })
        .collect();
    for _ in 0..3 {
        let mut c = admit(None);
        c.ask("which stadium is largest").expect("worker ask");
        c.bye().expect("worker bye");
    }

    // Wait for the reaper to take all three stallers, keeping the
    // survivor's connection warm so it is never reaped itself.
    let deadline = Instant::now() + Duration::from_secs(20);
    let before_restart = loop {
        let events = survivor.transcript().expect("survivor transcript");
        if let Ok(stats) = fisql_core::serve::request_stats(handle.addr().to_string().as_str()) {
            if stats.admission.reaped >= 3 && stats.store.compactions >= 4 {
                break events;
            }
        }
        assert!(Instant::now() < deadline, "reaper never took the stallers");
        std::thread::sleep(Duration::from_millis(100));
    };
    drop(stallers);

    // Stop without a Bye: the survivor must come back from the store.
    handle.shutdown();
    let summary = thread.join().expect("server thread");
    assert!(summary.admission.reaped >= 3, "{summary:?}");
    assert!(summary.store.compactions >= 4, "{summary:?}");

    let restarted = fisql_core::serve::Server::bind(config).expect("rebind");
    assert!(restarted.recovered_sessions().contains(&survivor_id));
    let handle = restarted.handle().expect("handle");
    let addr = handle.addr().to_string();
    let thread = std::thread::spawn(move || restarted.serve().expect("serve loop"));
    let mut resumed =
        match ServeClient::connect_retry(addr.as_str(), Some(survivor_id), Duration::from_secs(10))
        {
            Ok(Connected::Admitted(client)) => client,
            Ok(_) => panic!("resume not admitted"),
            Err(e) => panic!("resume failed: {e}"),
        };
    let after_restart = resumed.transcript().expect("replayed transcript");
    assert_eq!(
        before_restart, after_restart,
        "survivor replay must be byte-identical across reap-triggered rewrites and a restart"
    );
    resumed.bye().expect("bye");
    handle.shutdown();
    thread.join().expect("server thread");
    std::fs::remove_dir_all(&dir).ok();
}
