//! Concurrency contracts of the parallel evaluation runner:
//! thread-safety of the shared components, bit-identical reports at any
//! worker count, and cache-correctness of the memoized retrieval paths.

use fisql::prelude::*;

fn setup() -> (Corpus, SimLlm, SimUser) {
    let corpus = build_spider(&SpiderConfig {
        n_databases: 12,
        n_examples: 96,
        seed: 0xC0C0,
    });
    let llm = SimLlm::new(LlmConfig::default());
    let user = SimUser::new(UserConfig::default());
    (corpus, llm, user)
}

#[test]
fn shared_components_are_send_and_sync() {
    // The runner borrows these across scoped worker threads; if any of
    // them loses Send + Sync the whole design is void. Compile-time-only.
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
    assert_send_sync::<Corpus>();
    assert_send_sync::<SimLlm>();
    assert_send_sync::<SimUser>();
    assert_send_sync::<DemoStore>();
    assert_send_sync::<fisql_llm::RoutingPool>();
    // The backend trait object the generic runner accepts.
    assert_send_sync::<&dyn LanguageModel>();
}

#[test]
fn serial_and_parallel_reports_are_bit_identical() {
    let (corpus, llm, user) = setup();
    let run = CorrectionRun::new(&corpus, &llm, &user)
        .demos_k(3)
        .rounds(2);
    let errors = run.workers(1).collect_errors();
    let cases = run.workers(1).annotate(&errors);
    assert!(
        cases.len() >= 5,
        "need a non-trivial case set, got {}",
        cases.len()
    );

    for strategy in [
        Strategy::Fisql {
            routing: true,
            highlighting: false,
        },
        Strategy::Fisql {
            routing: true,
            highlighting: true,
        },
        Strategy::QueryRewrite,
    ] {
        let serial = run.strategy(strategy).workers(1).run(&cases);
        let serial_json = serde_json::to_string(&serial).unwrap();
        for workers in [2usize, 8] {
            let parallel = run.strategy(strategy).workers(workers).run(&cases);
            assert_eq!(
                serde_json::to_string(&parallel).unwrap(),
                serial_json,
                "{} report diverged at {workers} workers",
                serial.strategy
            );
        }
    }
}

/// The semantic result cache is an execution-count optimization, never
/// an observable one: the serialized correction report is byte-identical
/// with the cache on and off, at every worker count. (Cache counters
/// live in the unserialized run metrics, and every verdict charges its
/// logical execution cost whether or not the engine actually ran.)
#[test]
fn semantic_cache_reports_are_bit_identical() {
    let (corpus, llm, user) = setup();
    let run = CorrectionRun::new(&corpus, &llm, &user)
        .demos_k(3)
        .rounds(2);
    let errors = run.workers(1).collect_errors();
    let cases = run.workers(1).annotate(&errors);

    let baseline = run.workers(1).semantic_cache(false).run(&cases);
    let baseline_json = serde_json::to_string(&baseline).unwrap();
    assert_eq!(
        baseline.metrics.executions_skipped_cache, 0,
        "disabled cache must not count hits"
    );
    for workers in [1usize, 4, 8] {
        let cached = run.workers(workers).semantic_cache(true).run(&cases);
        assert_eq!(
            serde_json::to_string(&cached).unwrap(),
            baseline_json,
            "cached report diverged from uncached at {workers} workers"
        );
    }
    // The cache actually fires on this corpus — the invariance above is
    // not vacuous.
    let cached = run.workers(1).semantic_cache(true).run(&cases);
    assert!(
        cached.metrics.executions_skipped_cache > 0,
        "semantic cache never hit on a corpus with repeated equivalent queries"
    );
}

#[test]
fn error_collection_is_worker_count_invariant() {
    let (corpus, llm, user) = setup();
    let run = CorrectionRun::new(&corpus, &llm, &user).demos_k(3);
    let serial = run.workers(1).collect_errors();
    let parallel = run.workers(8).collect_errors();
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.example_idx, b.example_idx);
        assert_eq!(a.initial, b.initial);
        assert_eq!(a.execution_error, b.execution_error);
    }
}

#[test]
fn cached_retrieval_equals_fresh_retrieval() {
    // The concurrent embedding cache must be invisible to results: a
    // store built after the cache is warm retrieves exactly what a
    // fresh computation does.
    let demos: Vec<Demonstration> = (0..20)
        .map(|i| Demonstration {
            question: format!("how many singers are older than {i}"),
            sql: format!("SELECT COUNT(*) FROM singer WHERE age > {i}"),
        })
        .collect();
    let cold = DemoStore::new(demos.clone());
    let cold_result: Vec<String> = cold
        .retrieve("how many singers are older than 7", 5)
        .into_iter()
        .map(|d| d.sql.clone())
        .collect();
    // Second store: every embedding now comes from the warm cache.
    let warm = DemoStore::new(demos);
    let warm_result: Vec<String> = warm
        .retrieve("how many singers are older than 7", 5)
        .into_iter()
        .map(|d| d.sql.clone())
        .collect();
    assert_eq!(cold_result, warm_result);
}

#[test]
fn concurrent_runs_do_not_interfere() {
    // Two full correction runs on separate threads, sharing the global
    // caches, must each equal the run executed alone.
    let (corpus, llm, user) = setup();
    let run = CorrectionRun::new(&corpus, &llm, &user)
        .demos_k(3)
        .rounds(1);
    let errors = run.collect_errors();
    let cases = run.annotate(&errors);
    let alone = serde_json::to_string(&run.workers(2).run(&cases)).unwrap();
    let (a, b) = std::thread::scope(|s| {
        let ha = s.spawn(|| serde_json::to_string(&run.workers(2).run(&cases)).unwrap());
        let hb = s.spawn(|| serde_json::to_string(&run.workers(2).run(&cases)).unwrap());
        (ha.join().unwrap(), hb.join().unwrap())
    });
    assert_eq!(a, alone);
    assert_eq!(b, alone);
}
