//! Chaos suite: contracts of the fault-tolerant backend stack.
//!
//! - With faults disabled, the resilience middleware is *invisible*: a
//!   `Resilient<SimLlm>` run is bit-identical to the plain path at any
//!   worker count.
//! - With faults enabled, the fault schedule is a pure function of the
//!   call context, so chaos runs replay bit-for-bit at 1/4/8 workers and
//!   across reruns.
//! - Degradation is *graceful*: a full outage completes without panic and
//!   lands exactly on the no-feedback baseline — never below it.
//! - Injected backend *panics* (client bugs, not reported errors) are
//!   contained per case: the run completes, crashed cases are counted,
//!   and the report still replays bit-for-bit at any worker count.

use fisql::prelude::*;

fn setup() -> (Corpus, SimLlm, SimUser) {
    let corpus = build_spider(&SpiderConfig {
        n_databases: 10,
        n_examples: 80,
        seed: 0xC4A05,
    });
    let llm = SimLlm::new(LlmConfig::default());
    let user = SimUser::new(UserConfig::default());
    (corpus, llm, user)
}

/// Error collection and annotation run on the plain (infallible) model:
/// the chaos stack only wraps the correction loop, mirroring the CLI.
fn annotated(corpus: &Corpus, llm: &SimLlm, user: &SimUser) -> Vec<AnnotatedCase> {
    let plain = CorrectionRun::new(corpus, llm, user).demos_k(3);
    let errors = plain.collect_errors();
    plain.annotate(&errors)
}

const STRATEGY: Strategy = Strategy::Fisql {
    routing: true,
    highlighting: false,
};

#[test]
fn resilient_wrapper_is_invisible_without_faults() {
    let (corpus, llm, user) = setup();
    let cases = annotated(&corpus, &llm, &user);
    assert!(cases.len() >= 5, "need a non-trivial case set");

    let plain = CorrectionRun::new(&corpus, &llm, &user)
        .demos_k(3)
        .strategy(STRATEGY)
        .rounds(2)
        .workers(1)
        .run(&cases);
    let plain_json = serde_json::to_string(&plain).unwrap();

    let resilient = Resilient::with_defaults(llm.clone());
    let wrapped = CorrectionRun::new(&corpus, &resilient, &user)
        .demos_k(3)
        .strategy(STRATEGY)
        .rounds(2);
    for workers in [1usize, 4, 8] {
        let report = wrapped.workers(workers).run(&cases);
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            plain_json,
            "Resilient<SimLlm> diverged from the seed path at {workers} workers"
        );
        assert_eq!(report.degraded_rounds, 0);
        assert_eq!(report.metrics.resilience.retries, 0);
    }
}

#[test]
fn faulted_runs_replay_bit_identical_at_any_worker_count() {
    let (corpus, llm, user) = setup();
    let cases = annotated(&corpus, &llm, &user);

    let chaos = Resilient::new(
        FaultyBackend::new(llm.clone(), FaultConfig::uniform(0.2)),
        ResilienceConfig {
            attempt_budget: 3,
            ..Default::default()
        },
    );
    let run = CorrectionRun::new(&corpus, &chaos, &user)
        .demos_k(3)
        .strategy(STRATEGY)
        .rounds(2);

    let serial = run.workers(1).run(&cases);
    let serial_json = serde_json::to_string(&serial).unwrap();
    assert!(
        serial.metrics.resilience.retries > 0,
        "a 20% fault rate with budget 3 must retry at least once"
    );
    assert!(serial.metrics.resilience.attempts > serial.metrics.resilience.calls);

    for workers in [4usize, 8] {
        let parallel = run.workers(workers).run(&cases);
        assert_eq!(
            serde_json::to_string(&parallel).unwrap(),
            serial_json,
            "faulted report diverged at {workers} workers"
        );
        // The volatile telemetry is worker-invariant too: the fault and
        // retry schedules are pure functions of per-call context.
        assert_eq!(parallel.metrics.resilience, serial.metrics.resilience);
    }

    // Rerun determinism: a fresh, identically-configured stack replays
    // the exact same chaos run.
    let chaos2 = Resilient::new(
        FaultyBackend::new(llm.clone(), FaultConfig::uniform(0.2)),
        ResilienceConfig {
            attempt_budget: 3,
            ..Default::default()
        },
    );
    let rerun = CorrectionRun::new(&corpus, &chaos2, &user)
        .demos_k(3)
        .strategy(STRATEGY)
        .rounds(2)
        .workers(4)
        .run(&cases);
    assert_eq!(serde_json::to_string(&rerun).unwrap(), serial_json);
    // Backoff jitter is seeded per middleware *instance*, so the summed
    // backoff_ms legitimately differs by a few milliseconds between two
    // stacks; every discrete counter must still replay exactly.
    let (mut a, mut b) = (rerun.metrics.resilience, serial.metrics.resilience);
    a.backoff_ms = 0;
    b.backoff_ms = 0;
    assert_eq!(a, b);
}

/// Regression: a panic inside the backend used to unwind through the
/// worker thread and abort the whole evaluation. It must instead be
/// contained at the case boundary — the crashed case is recorded, every
/// other case completes normally, and the report stays replayable.
#[test]
fn injected_panics_are_contained_per_case() {
    let (corpus, llm, user) = setup();
    let cases = annotated(&corpus, &llm, &user);
    assert!(cases.len() >= 5, "need a non-trivial case set");

    // The full chaos stack with an added panic rate: errors retry and
    // degrade as usual, panics unwind to the runner's isolation boundary.
    let chaos = Resilient::new(
        FaultyBackend::new(
            llm.clone(),
            FaultConfig {
                panic: 0.1,
                ..FaultConfig::uniform(0.2)
            },
        ),
        ResilienceConfig {
            attempt_budget: 3,
            ..Default::default()
        },
    );
    let run = CorrectionRun::new(&corpus, &chaos, &user)
        .demos_k(3)
        .strategy(STRATEGY)
        .rounds(2);

    let serial = run.workers(1).run(&cases);
    assert_eq!(serial.total, cases.len());
    assert!(
        serial.cases_crashed > 0,
        "a 10% per-call panic rate never fired across {} cases",
        cases.len()
    );
    assert!(
        serial.cases_crashed < cases.len(),
        "some cases must survive the panic schedule"
    );

    let serial_json = serde_json::to_string(&serial).unwrap();
    for workers in [4usize, 8] {
        let parallel = run.workers(workers).run(&cases);
        assert_eq!(
            serde_json::to_string(&parallel).unwrap(),
            serial_json,
            "crash containment diverged at {workers} workers"
        );
    }
}

#[test]
fn full_outage_degrades_to_the_no_feedback_baseline() {
    let (corpus, llm, user) = setup();
    let cases = annotated(&corpus, &llm, &user);
    let rounds = 2usize;

    // Every non-calibration backend call faults: the correction loop gets
    // zero usable model turns, which must degrade every round — the
    // result is exactly the no-feedback baseline (no corrections), and a
    // run that completes without panicking.
    // A hair-trigger breaker (trip on the first exhausted call, 1
    // cooldown call) so each case's two correction rounds exercise the
    // full closed -> open -> fast-fail path: round 1 exhausts its
    // attempt budget and trips, round 2 is rejected by the open breaker.
    let chaos = Resilient::new(
        FaultyBackend::new(llm.clone(), FaultConfig::uniform(1.0)),
        ResilienceConfig {
            attempt_budget: 2,
            failure_threshold: 1,
            cooldown_calls: 1,
            ..Default::default()
        },
    );
    let report = CorrectionRun::new(&corpus, &chaos, &user)
        .demos_k(3)
        .strategy(STRATEGY)
        .rounds(rounds)
        .workers(4)
        .run(&cases);

    assert_eq!(report.total, cases.len());
    for round in 1..=rounds {
        assert_eq!(
            report.pct_after(round),
            0.0,
            "degradation must never correct (or uncorrect) anything"
        );
    }
    assert_eq!(report.cases_degraded, cases.len());
    assert_eq!(report.degraded_rounds, (cases.len() * rounds) as u64);

    // The breaker actually engaged: consecutive failures walk it to
    // Open (a trip), the cooldown fast-fails callers, then a half-open
    // probe re-opens it — all visible in the run telemetry.
    let stats = report.metrics.resilience;
    assert!(
        stats.breaker_trips > 0,
        "a full outage must trip the breaker"
    );
    assert!(
        stats.breaker_fast_fails > 0,
        "an open breaker must fast-fail at least one call"
    );
    assert!(stats.exhausted > 0);
}
