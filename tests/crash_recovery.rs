//! Crash-safety suite: the write-ahead run journal's recovery contracts.
//!
//! - Resuming from a partial journal — torn mid-record, checksum-flipped,
//!   or cleanly truncated — yields a report bit-identical to an
//!   uninterrupted run, at any worker count.
//! - Corruption never poisons a resume: the intact prefix is kept, the
//!   damaged tail is dropped and re-evaluated.
//! - A journal from a *different* experiment (config or case set) is
//!   refused outright rather than silently mixed in.
//!
//! The `#[ignore]`d SIGKILL loop at the bottom exercises the real thing —
//! killing a child `fisql --eval` process at random points and resuming —
//! and runs in the CI crash-recovery job, not in the default suite.

use fisql::prelude::*;
use std::path::PathBuf;

fn setup() -> (Corpus, SimLlm, SimUser) {
    let corpus = build_spider(&SpiderConfig {
        n_databases: 8,
        n_examples: 64,
        seed: 0x1D0A7,
    });
    (
        corpus,
        SimLlm::new(LlmConfig::default()),
        SimUser::new(UserConfig::default()),
    )
}

fn annotated(corpus: &Corpus, llm: &SimLlm, user: &SimUser) -> Vec<AnnotatedCase> {
    let plain = CorrectionRun::new(corpus, llm, user).demos_k(3);
    let errors = plain.collect_errors();
    plain.annotate(&errors)
}

fn temp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fisql-crash-{}-{tag}.fjnl", std::process::id()))
}

#[test]
fn resume_from_any_truncation_point_matches_the_fresh_run() {
    let (corpus, llm, user) = setup();
    let cases = annotated(&corpus, &llm, &user);
    assert!(cases.len() >= 5, "need a non-trivial case set");
    let run = CorrectionRun::new(&corpus, &llm, &user)
        .demos_k(3)
        .rounds(2);
    let baseline = run.workers(1).run(&cases);
    let baseline_json = serde_json::to_string(&baseline).unwrap();

    let path = temp_journal("truncate");
    run.workers(2)
        .journal(&path)
        .fsync(FsyncPolicy::Never)
        .run(&cases);
    let full = std::fs::read(&path).unwrap();
    assert!(full.len() > fisql_core::journal::HEADER_LEN);

    // Truncate at a spread of byte offsets — header-only, mid-record,
    // between records — and check each resume reconverges, at several
    // worker counts.
    let cuts = [
        fisql_core::journal::HEADER_LEN,
        fisql_core::journal::HEADER_LEN + 3, // torn length prefix
        full.len() / 4,
        full.len() / 2,
        full.len() - 1,
    ];
    for (i, &cut) in cuts.iter().enumerate() {
        std::fs::write(&path, &full[..cut]).unwrap();
        let workers = [1, 4, 8][i % 3];
        let resumed = run
            .workers(workers)
            .journal(&path)
            .resume(true)
            .fsync(FsyncPolicy::Never)
            .run(&cases);
        assert_eq!(
            serde_json::to_string(&resumed).unwrap(),
            baseline_json,
            "resume diverged after truncation to {cut} bytes at {workers} workers"
        );
        // After the resume the journal is complete again: a further
        // resume replays everything from disk and runs zero cases.
        let replayed = run
            .workers(1)
            .journal(&path)
            .resume(true)
            .fsync(FsyncPolicy::Never)
            .run(&cases);
        assert_eq!(serde_json::to_string(&replayed).unwrap(), baseline_json);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_records_are_dropped_and_reevaluated() {
    let (corpus, llm, user) = setup();
    let cases = annotated(&corpus, &llm, &user);
    let run = CorrectionRun::new(&corpus, &llm, &user)
        .demos_k(3)
        .rounds(2);
    let baseline_json = serde_json::to_string(&run.workers(1).run(&cases)).unwrap();

    let path = temp_journal("corrupt");
    run.workers(1)
        .journal(&path)
        .fsync(FsyncPolicy::Never)
        .run(&cases);
    let full = std::fs::read(&path).unwrap();

    // Flip one byte in the middle of the record region: the checksum
    // catches it, the prefix before it survives, everything from the
    // flipped record on is re-run.
    let mut flipped = full.clone();
    let mid = fisql_core::journal::HEADER_LEN + (full.len() - fisql_core::journal::HEADER_LEN) / 2;
    flipped[mid] ^= 0xFF;
    std::fs::write(&path, &flipped).unwrap();
    let resumed = run
        .workers(4)
        .journal(&path)
        .resume(true)
        .fsync(FsyncPolicy::Never)
        .run(&cases);
    assert_eq!(
        serde_json::to_string(&resumed).unwrap(),
        baseline_json,
        "checksum corruption poisoned the resume"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn foreign_journals_are_refused() {
    let (corpus, llm, user) = setup();
    let cases = annotated(&corpus, &llm, &user);
    let run = CorrectionRun::new(&corpus, &llm, &user)
        .demos_k(3)
        .rounds(2);

    let path = temp_journal("foreign");
    run.workers(1)
        .journal(&path)
        .fsync(FsyncPolicy::Never)
        .run(&cases);

    // Different config (rounds) → different fingerprint → refused.
    let err = run
        .rounds(1)
        .journal(&path)
        .resume(true)
        .try_run(&cases)
        .unwrap_err();
    assert!(err.to_string().contains("fingerprint"), "got: {err}");

    // Different case set → refused too (count mismatch or fingerprint).
    let fewer = &cases[..cases.len() - 1];
    let err = run.journal(&path).resume(true).try_run(fewer).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("fingerprint") || msg.contains("case"),
        "got: {msg}"
    );

    // Not-a-journal → refused, not misparsed.
    std::fs::write(&path, b"definitely not a journal").unwrap();
    assert!(run.journal(&path).resume(true).try_run(&cases).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn without_resume_an_existing_journal_is_overwritten() {
    let (corpus, llm, user) = setup();
    let cases = annotated(&corpus, &llm, &user);
    let run = CorrectionRun::new(&corpus, &llm, &user)
        .demos_k(3)
        .rounds(2);
    let baseline_json = serde_json::to_string(&run.workers(1).run(&cases)).unwrap();

    let path = temp_journal("overwrite");
    // Stale garbage at the path: a fresh (non-resume) run truncates it.
    std::fs::write(&path, b"stale bytes from another era").unwrap();
    let report = run
        .workers(2)
        .journal(&path)
        .fsync(FsyncPolicy::EachRecord)
        .run(&cases);
    assert_eq!(serde_json::to_string(&report).unwrap(), baseline_json);
    // And the rewritten journal resumes cleanly.
    let resumed = run.workers(1).journal(&path).resume(true).run(&cases);
    assert_eq!(serde_json::to_string(&resumed).unwrap(), baseline_json);
    std::fs::remove_file(&path).ok();
}

/// The real thing: SIGKILL a child `fisql --eval --journal` process at a
/// random point mid-run, resume it, and diff the final report against an
/// uninterrupted baseline. Ignored by default (spawns processes, takes
/// seconds); the CI crash-recovery job runs it with `-- --ignored`.
#[test]
#[ignore = "spawns and kills child processes; run explicitly in the crash-recovery CI job"]
fn sigkill_and_resume_recovers_bit_identically() {
    use std::process::{Command, Stdio};

    let bin = env!("CARGO_BIN_EXE_fisql");
    let dir = std::env::temp_dir().join(format!("fisql-sigkill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("run.fjnl");
    let eval_args = |extra: &[&str]| {
        let mut v = vec![
            "--eval".to_string(),
            "--workers".to_string(),
            "4".to_string(),
            "--journal".to_string(),
            journal.display().to_string(),
            "--fsync".to_string(),
            "each".to_string(),
        ];
        v.extend(extra.iter().map(|s| (*s).to_string()));
        v
    };

    // Uninterrupted baseline output (the per-corpus summary lines).
    let baseline = Command::new(bin)
        .args(eval_args(&[]))
        .output()
        .expect("baseline eval runs");
    assert!(baseline.status.success());
    let baseline_out = String::from_utf8_lossy(&baseline.stdout).to_string();

    for attempt in 0..5u64 {
        // Remove journals so each attempt interrupts a fresh run.
        for entry in std::fs::read_dir(&dir).unwrap() {
            std::fs::remove_file(entry.unwrap().path()).ok();
        }
        let mut child = Command::new(bin)
            .args(eval_args(&[]))
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("eval child spawns");
        // Kill at a pseudo-random point early in the run. The exact
        // instant does not matter — any prefix of the journal must
        // resume correctly (including the empty one).
        std::thread::sleep(std::time::Duration::from_millis(40 + attempt * 90));
        child.kill().expect("SIGKILL delivered");
        child.wait().unwrap();

        let resumed = Command::new(bin)
            .args(eval_args(&["--resume"]))
            .output()
            .expect("resumed eval runs");
        assert!(
            resumed.status.success(),
            "resume failed: {}",
            String::from_utf8_lossy(&resumed.stderr)
        );
        let resumed_out = String::from_utf8_lossy(&resumed.stdout).to_string();
        // Compare the deterministic report lines; throughput lines vary.
        let stable = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("cases/s") && !l.contains("journal:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            stable(&resumed_out),
            stable(&baseline_out),
            "kill-and-resume attempt {attempt} diverged from the baseline"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
