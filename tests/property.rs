//! Property-based tests over the core data structures and invariants,
//! using the corpus generators as structured input sources.

use fisql::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;

/// Builds a reusable small corpus once.
fn corpus_for(seed: u64) -> Corpus {
    build_spider(&SpiderConfig {
        n_databases: 6,
        n_examples: 40,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// print ∘ parse is the identity on every generated gold query.
    #[test]
    fn gold_queries_roundtrip_through_printer(seed in 0u64..500) {
        let corpus = corpus_for(seed);
        for e in &corpus.examples {
            let printed = print_query(&e.gold);
            let reparsed = parse_query(&printed).expect("printed gold parses");
            prop_assert_eq!(&reparsed, &e.gold, "roundtrip failed for {}", printed);
        }
    }

    /// Normalization is idempotent and preserves execution results.
    #[test]
    fn normalization_preserves_execution(seed in 0u64..500) {
        let corpus = corpus_for(seed);
        for e in corpus.examples.iter().take(20) {
            let db = corpus.database(e);
            let norm = normalize_query(&e.gold);
            prop_assert_eq!(normalize_query(&norm), norm.clone());
            let a = fisql::fisql_engine::execute(db, &e.gold).unwrap();
            let b = fisql::fisql_engine::execute(db, &norm).unwrap();
            prop_assert!(results_match(&b, &a), "normalization changed results for {}", print_query(&e.gold));
        }
    }

    /// apply(diff(p, g), p) ≡ g for every corrupted prediction.
    #[test]
    fn diff_apply_recovers_gold(seed in 0u64..500) {
        let corpus = corpus_for(seed);
        for e in corpus.examples.iter().take(20) {
            for wc in e.channels.iter().take(3) {
                let bad = normalize_query(&fisql_spider::corrupt(&e.intent, &wc.channel));
                let edits = diff_queries(&bad, &e.gold);
                let fixed = apply_edits(&bad, &edits).expect("edits apply");
                prop_assert!(
                    structurally_equal(&fixed, &e.gold),
                    "channel {} not invertible: {} → {}",
                    wc.channel.kind(),
                    print_query(&bad),
                    print_query(&fixed)
                );
            }
        }
    }

    /// Engine invariants on generated data: LIMIT bounds, WHERE subsets,
    /// DISTINCT no larger than raw.
    #[test]
    fn engine_invariants(seed in 0u64..500) {
        let corpus = corpus_for(seed);
        let db = &corpus.databases[(seed as usize) % corpus.databases.len()];
        let table = db.tables.iter().find(|t| !t.rows.is_empty()).unwrap();
        let name = &table.name;
        let total = execute_sql(db, &format!("SELECT COUNT(*) FROM {name}")).unwrap();
        let total_n = match total.scalar().unwrap() { Value::Int(n) => *n, _ => unreachable!() };
        prop_assert_eq!(total_n as usize, table.rows.len());

        let limited = execute_sql(db, &format!("SELECT * FROM {name} LIMIT 5")).unwrap();
        prop_assert!(limited.len() <= 5);

        let col = &table.columns[0].name;
        let distinct = execute_sql(db, &format!("SELECT DISTINCT {col} FROM {name}")).unwrap();
        let raw = execute_sql(db, &format!("SELECT {col} FROM {name}")).unwrap();
        prop_assert!(distinct.len() <= raw.len());

        let union_all = execute_sql(
            db,
            &format!("SELECT {col} FROM {name} UNION ALL SELECT {col} FROM {name}"),
        )
        .unwrap();
        prop_assert_eq!(union_all.len(), 2 * raw.len());

        let union = execute_sql(
            db,
            &format!("SELECT {col} FROM {name} UNION SELECT {col} FROM {name}"),
        )
        .unwrap();
        prop_assert_eq!(union.len(), distinct.len());
    }

    /// Zero-shot generation is invariant under the attempt salt
    /// (misreadings are systematic), and corrupted outputs always parse.
    #[test]
    fn generation_systematicity(seed in 0u64..200) {
        let corpus = corpus_for(seed);
        let llm = SimLlm::new(LlmConfig { seed, calibration: Calibration::default() });
        for e in corpus.examples.iter().take(10) {
            let gen = |salt| llm.generate_sql(&GenRequest {
                example: e,
                demos: 0,
                hint_text: "",
                salt,
                mode: GenMode::Initial,
            }).query;
            let a = gen(0);
            prop_assert_eq!(&gen(1234), &a);
            // The produced SQL is always well-formed.
            let printed = print_query(&a);
            prop_assert!(parse_query(&printed).is_ok(), "unparsable generation {}", printed);
        }
    }

    /// The semantic analyzer never panics on generated or corrupted
    /// queries, never flags a gold query as erroneous, and whenever it
    /// reports no errors the engine executes the query successfully
    /// (no name/type failures slip past a clean bill of health).
    #[test]
    fn analyzer_agrees_with_engine(seed in 0u64..500) {
        let corpus = corpus_for(seed);
        for e in corpus.examples.iter().take(15) {
            let db = corpus.database(e);
            let schema = db.schema_info();
            let gold_sql = print_query(&e.gold);
            let gold_diags = check_query(&e.gold, &schema);
            prop_assert!(
                gold_diags.iter().all(|d| !d.is_error()),
                "gold query flagged as erroneous: {}\n{}",
                gold_sql,
                render_report(&gold_sql, &gold_diags)
            );
            prop_assert!(
                repair_query(&e.gold, &schema).is_none(),
                "repair rewrote a clean gold query: {}",
                gold_sql
            );
            for wc in e.channels.iter().take(3) {
                let bad = normalize_query(&fisql_spider::corrupt(&e.intent, &wc.channel));
                let diags = check_query(&bad, &schema);
                if diags.iter().all(|d| !d.is_error()) {
                    prop_assert!(
                        fisql::fisql_engine::execute(db, &bad).is_ok(),
                        "analyzer-clean query failed execution: {}",
                        print_query(&bad)
                    );
                }
            }
        }
    }

    /// Equivalence-oracle soundness: whenever `provably_equivalent`
    /// claims two queries are equivalent, executing both against the
    /// generated database yields matching results. Exercised over gold
    /// queries, their normalizations, fold-removable tautological
    /// padding (provably equivalent), and channel corruptions (mostly
    /// not — the oracle must never claim those falsely either).
    #[test]
    fn equivalence_oracle_is_sound(seed in 0u64..300) {
        use fisql::fisql_sqlkit::{BinOp, Expr, Literal};
        let corpus = corpus_for(seed);
        for e in corpus.examples.iter().take(12) {
            let db = corpus.database(e);
            let mut variants = vec![e.gold.clone(), normalize_query(&e.gold)];
            // `WHERE p` → `WHERE p AND TRUE`: constant folding makes this
            // provably equivalent to the original.
            if let Some(w) = &e.gold.core.where_clause {
                let mut padded = e.gold.clone();
                padded.core.where_clause = Some(Expr::Binary {
                    left: Box::new(w.clone()),
                    op: BinOp::And,
                    right: Box::new(Expr::Literal(Literal::Bool(true))),
                });
                prop_assert!(
                    provably_equivalent(&e.gold, &padded),
                    "tautological padding not recognized for {}",
                    print_query(&e.gold)
                );
                variants.push(padded);
            }
            for wc in e.channels.iter().take(2) {
                variants.push(normalize_query(&fisql_spider::corrupt(&e.intent, &wc.channel)));
            }
            for a in &variants {
                for b in &variants {
                    if !provably_equivalent(a, b) {
                        continue;
                    }
                    let ra = fisql::fisql_engine::execute(db, a);
                    let rb = fisql::fisql_engine::execute(db, b);
                    match (ra, rb) {
                        (Ok(ra), Ok(rb)) => prop_assert!(
                            results_match(&ra, &rb),
                            "oracle unsound: {} vs {}",
                            print_query(a),
                            print_query(b)
                        ),
                        (Err(_), Err(_)) => {}
                        _ => prop_assert!(
                            false,
                            "oracle equated an executing and a failing query: {} vs {}",
                            print_query(a),
                            print_query(b)
                        ),
                    }
                }
            }
        }
    }

    /// The simulated user never fabricates feedback for a correct query
    /// and never leaks gold SQL text verbatim.
    #[test]
    fn user_feedback_sanity(seed in 0u64..200) {
        let corpus = corpus_for(seed);
        let user = SimUser::new(UserConfig { seed, p_engage: 1.0, ..Default::default() });
        for e in corpus.examples.iter().take(10) {
            let view = UserView {
                question: e.question.clone(),
                sql: fisql::fisql_sqlkit::print_query_spanned(&e.gold),
                explanation: String::new(),
                result: Ok(String::new()),
            };
            prop_assert!(user.feedback(e, &e.gold, &view, 0).is_none());
            if let Some(wc) = e.channels.first() {
                let bad = normalize_query(&fisql_spider::corrupt(&e.intent, &wc.channel));
                if !structurally_equal(&bad, &e.gold) {
                    if let Some(fb) = user.feedback(e, &bad, &view, 0) {
                        prop_assert!(!fb.text.contains("SELECT"), "feedback leaked SQL: {}", fb.text);
                    }
                }
            }
        }
    }

    /// The repair search's twin static guarantees: every enumerated
    /// candidate is structure-preserving (its realized AST diff stays
    /// inside the clause families its edit script declares), and every
    /// candidate the abstract interpreter prunes as contradictory really
    /// returns zero rows when executed — pruning it can never have cost
    /// the search a correct query.
    #[test]
    fn repair_candidates_preserve_structure_and_pruning_is_sound(seed in 0u64..300) {
        use fisql::fisql_sqlkit::{
            enumerate_repairs, is_structure_preserving, locate_faults, prune_candidates,
            FeedbackCues, LocateOptions,
        };
        let corpus = corpus_for(seed);
        let feedbacks = [
            "we are in 2024",
            "order the results in descending order",
            "only show the top 3",
            "that name is wrong",
            "use the created time",
        ];
        for (i, e) in corpus.examples.iter().take(8).enumerate() {
            let db = corpus.database(e);
            let schema = db.schema_info();
            for wc in e.channels.iter().take(2) {
                let bad = normalize_query(&fisql_spider::corrupt(&e.intent, &wc.channel));
                let text = feedbacks[i % feedbacks.len()];
                let sites = locate_faults(
                    &bad,
                    &schema,
                    LocateOptions { feedback: Some(text), highlight: None },
                );
                let cues = FeedbackCues::extract(text, &schema);
                let pool = enumerate_repairs(&bad, &schema, &sites, &cues);
                for cand in &pool {
                    prop_assert!(
                        is_structure_preserving(&bad, cand),
                        "candidate `{}` ({}) is not structure-preserving against `{}`",
                        print_query(&cand.query),
                        cand.label,
                        print_query(&bad)
                    );
                }
                let outcome = prune_candidates(&bad, pool, &schema);
                for cand in &outcome.contradictory {
                    if let Ok(rs) = fisql::fisql_engine::execute(db, &cand.query) {
                        // Zero matching rows: either an empty result set,
                        // or — for ungrouped aggregates, which always
                        // emit one row — the empty-input aggregate row
                        // (COUNT = 0, SUM/MIN/MAX/AVG = NULL).
                        let empty_aggregate_rows = rs
                            .rows
                            .iter()
                            .all(|row| row.iter().all(|v| matches!(v, Value::Null | Value::Int(0))));
                        prop_assert!(
                            rs.is_empty() || empty_aggregate_rows,
                            "candidate `{}` pruned as contradictory matched rows: {rs}",
                            print_query(&cand.query)
                        );
                    }
                }
            }
        }
    }
}

/// Cases for the canonicalization fuzz block below: 24 by default (the
/// tests iterate whole corpora per case, so each case is already broad),
/// cranked up in CI's `canon` job via `PROPTEST_CASES`.
fn canon_fuzz_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(canon_fuzz_cases()))]

    /// Canonicalization is idempotent: one more pass over an already
    /// canonical query changes nothing. Exercised over gold queries and
    /// their channel corruptions (the shapes the pipeline actually
    /// canonicalizes).
    #[test]
    fn canonicalize_is_idempotent(seed in 0u64..300) {
        let corpus = corpus_for(seed);
        for e in corpus.examples.iter().take(12) {
            let c = canonicalize(&e.gold);
            prop_assert_eq!(
                canonicalize(&c), c.clone(),
                "canonicalize not idempotent for {}", print_query(&e.gold)
            );
            for wc in e.channels.iter().take(2) {
                let bad = normalize_query(&fisql_spider::corrupt(&e.intent, &wc.channel));
                let cb = canonicalize(&bad);
                prop_assert_eq!(
                    canonicalize(&cb), cb.clone(),
                    "canonicalize not idempotent for {}", print_query(&bad)
                );
            }
        }
    }

    /// Semantic-fingerprint soundness — the property the result cache's
    /// correctness rides on: whenever two queries share a canonical
    /// fingerprint, executing both against the generated database yields
    /// the same multiset of rows (or both fail). The variant pool mixes
    /// gold queries, their normalizations, tautological `AND TRUE`
    /// padding, double negation, and channel corruptions; the padded and
    /// normalized variants are asserted to actually collide with gold,
    /// so the property is never vacuously true.
    #[test]
    fn canon_fingerprint_is_sound(seed in 0u64..300) {
        use fisql::fisql_sqlkit::{BinOp, Expr, Literal, UnaryOp};
        let corpus = corpus_for(seed);
        for e in corpus.examples.iter().take(12) {
            let db = corpus.database(e);
            let gold_fp = canon_fingerprint(&e.gold);
            let mut variants = vec![e.gold.clone(), normalize_query(&e.gold)];
            prop_assert_eq!(
                canon_fingerprint(&variants[1]), gold_fp,
                "normalization moved the fingerprint of {}", print_query(&e.gold)
            );
            if let Some(w) = &e.gold.core.where_clause {
                // `WHERE p` → `WHERE p AND TRUE` folds away.
                let mut padded = e.gold.clone();
                padded.core.where_clause = Some(Expr::Binary {
                    left: Box::new(w.clone()),
                    op: BinOp::And,
                    right: Box::new(Expr::Literal(Literal::Bool(true))),
                });
                // `WHERE p` → `WHERE NOT NOT p` — the canonicalizer
                // eliminates the double negation when `p` is
                // boolean-shaped (and must stay sound either way).
                let mut doubled = e.gold.clone();
                doubled.core.where_clause = Some(Expr::Unary {
                    op: UnaryOp::Not,
                    expr: Box::new(Expr::Unary {
                        op: UnaryOp::Not,
                        expr: Box::new(w.clone()),
                    }),
                });
                prop_assert_eq!(
                    canon_fingerprint(&padded), gold_fp,
                    "tautological padding moved the fingerprint of {}",
                    print_query(&e.gold)
                );
                variants.push(padded);
                variants.push(doubled);
            }
            for wc in e.channels.iter().take(2) {
                variants.push(normalize_query(&fisql_spider::corrupt(&e.intent, &wc.channel)));
            }
            for a in &variants {
                for b in &variants {
                    if canon_fingerprint(a) != canon_fingerprint(b) {
                        continue;
                    }
                    let ra = fisql::fisql_engine::execute(db, a);
                    let rb = fisql::fisql_engine::execute(db, b);
                    match (ra, rb) {
                        (Ok(ra), Ok(rb)) => prop_assert!(
                            results_match(&ra, &rb),
                            "fingerprint collision between inequivalent queries: {} vs {}",
                            print_query(a),
                            print_query(b)
                        ),
                        (Err(_), Err(_)) => {}
                        _ => prop_assert!(
                            false,
                            "fingerprint equated an executing and a failing query: {} vs {}",
                            print_query(a),
                            print_query(b)
                        ),
                    }
                }
            }
        }
    }

    /// `canonically_equivalent` subsumes both prior equivalence oracles
    /// and stays sound on everything it claims (checked by execution,
    /// like `equivalence_oracle_is_sound` above).
    #[test]
    fn canonical_equivalence_subsumes_and_stays_sound(seed in 0u64..200) {
        let corpus = corpus_for(seed);
        for e in corpus.examples.iter().take(10) {
            let db = corpus.database(e);
            let norm = normalize_query(&e.gold);
            prop_assert!(structurally_equal(&norm, &norm));
            prop_assert!(canonically_equivalent(&e.gold, &norm));
            let mut variants = vec![e.gold.clone(), norm];
            for wc in e.channels.iter().take(2) {
                variants.push(normalize_query(&fisql_spider::corrupt(&e.intent, &wc.channel)));
            }
            for a in &variants {
                for b in &variants {
                    // Subsumption: anything the old oracles accept, the
                    // canonical oracle accepts.
                    if structurally_equal(a, b) || provably_equivalent(a, b) {
                        prop_assert!(
                            canonically_equivalent(a, b),
                            "canonical oracle weaker than prior oracles: {} vs {}",
                            print_query(a),
                            print_query(b)
                        );
                    }
                    if !canonically_equivalent(a, b) {
                        continue;
                    }
                    let ra = fisql::fisql_engine::execute(db, a);
                    let rb = fisql::fisql_engine::execute(db, b);
                    match (ra, rb) {
                        (Ok(ra), Ok(rb)) => prop_assert!(
                            results_match(&ra, &rb),
                            "canonical oracle unsound: {} vs {}",
                            print_query(a),
                            print_query(b)
                        ),
                        (Err(_), Err(_)) => {}
                        _ => prop_assert!(
                            false,
                            "canonical oracle equated an executing and a failing query: {} vs {}",
                            print_query(a),
                            print_query(b)
                        ),
                    }
                }
            }
        }
    }

}

// Fuzz block: no explicit case count, so the proptest default applies
// and CI can crank it up via `PROPTEST_CASES` (the crash-recovery job
// runs these at 10k+ cases). The properties assert only "never panics":
// the SQL front end must answer arbitrary garbage with `Err`, not abort.
proptest! {
    /// Lexing and parsing arbitrary bytes never panics — including
    /// invalid UTF-8 (lossily decoded), control characters, and
    /// pathological repetition.
    #[test]
    fn sql_frontend_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let input = String::from_utf8_lossy(&bytes);
        let _ = fisql::fisql_sqlkit::lexer::lex(&input);
        let _ = parse_query(&input);
        let _ = fisql::fisql_sqlkit::parse_expr(&input);
    }

    /// Splicing garbage into well-formed corpus SQL never panics the
    /// lexer, parser, printer, normalizer, or schema checker — the
    /// near-valid neighborhood where a parser's assumptions actually
    /// break, rather than uniformly random noise.
    #[test]
    fn mutated_gold_sql_never_panics_the_frontend(
        seed in 0u64..200,
        example_idx in 0usize..40,
        cut in 0usize..400,
        garbage in ".{0,48}",
    ) {
        let corpus = corpus_for(seed);
        let e = &corpus.examples[example_idx % corpus.examples.len()];
        let sql = print_query(&e.gold);
        let at = sql
            .char_indices()
            .map(|(i, _)| i)
            .chain(std::iter::once(sql.len()))
            .nth(cut % (sql.chars().count() + 1))
            .unwrap_or(sql.len());
        let mutated = format!("{}{}{}", &sql[..at], garbage, &sql[at..]);
        let _ = fisql::fisql_sqlkit::lexer::lex(&mutated);
        if let Ok(q) = parse_query(&mutated) {
            // Whatever still parses must survive the rest of the
            // pipeline: printing, normalizing, and schema checking.
            let _ = print_query(&q);
            let _ = normalize_query(&q);
            let schema = corpus.database(e).schema_info();
            let _ = check_query(&q, &schema);
        }
    }

    /// Deep nesting is answered with a diagnostic, not a stack overflow,
    /// at every depth — below, at, and far beyond the parser's budget.
    #[test]
    fn nested_input_never_overflows_the_parser(depth in 1usize..4_000) {
        let bomb = format!("SELECT {}1{} FROM t", "(".repeat(depth), ")".repeat(depth));
        let _ = parse_query(&bomb);
        let not_bomb = format!("SELECT * FROM t WHERE {}x = 1", "NOT ".repeat(depth));
        let _ = parse_query(&not_bomb);
    }
}

/// Highlight spans always slice to valid UTF-8 text inside the rendered
/// SQL (non-proptest because it exercises the feedback highlighter).
#[test]
fn highlights_are_within_rendered_sql() {
    let corpus = corpus_for(99);
    let user = SimUser::new(UserConfig {
        p_engage: 1.0,
        p_misalign: 0.0,
        p_highlight: 1.0,
        ..Default::default()
    });
    let mut checked = 0;
    for e in &corpus.examples {
        let Some(wc) = e.channels.first() else {
            continue;
        };
        let bad = normalize_query(&fisql_spider::corrupt(&e.intent, &wc.channel));
        if structurally_equal(&bad, &e.gold) {
            continue;
        }
        let spanned = fisql::fisql_sqlkit::print_query_spanned(&bad);
        let view = UserView {
            question: e.question.clone(),
            sql: spanned.clone(),
            explanation: String::new(),
            result: Ok(String::new()),
        };
        if let Some(mut fb) = user.feedback(e, &bad, &view, 0) {
            user.add_highlight(&mut fb, &spanned, e.id, 0);
            if let Some(hl) = fb.highlight {
                assert!(hl.end <= spanned.text.len());
                assert!(!hl.slice(&spanned.text).is_empty());
                checked += 1;
            }
        }
    }
    assert!(checked > 3, "too few highlights exercised: {checked}");
}

/// The AEP database regenerates identically from the same seed.
#[test]
fn aep_database_is_seed_deterministic() {
    let a = fisql_spider::build_aep_database(&mut StdRng::seed_from_u64(5));
    let b = fisql_spider::build_aep_database(&mut StdRng::seed_from_u64(5));
    assert_eq!(a, b);
}

// ---------------------------------------------------------------------
// Serve wire-protocol fuzzing: adversarial bytes through the frame
// reader must produce a typed error or clean EOF — never a panic, an
// unbounded allocation, or a hang.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes: the reader returns `Ok` or `Err`, never panics.
    #[test]
    fn protocol_reader_never_panics_on_random_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..256usize)
    ) {
        let mut cursor = std::io::Cursor::new(bytes);
        let _ = fisql_core::serve::protocol::read_frame::<_, fisql_core::serve::ClientRequest>(
            &mut cursor,
        );
    }

    /// A valid frame truncated at every possible cut point is an error
    /// or EOF, never a panic.
    #[test]
    fn protocol_reader_never_panics_on_truncated_frames(cut in 0usize..64) {
        let mut bytes = Vec::new();
        fisql_core::serve::protocol::write_frame(
            &mut bytes,
            &fisql_core::serve::ClientRequest::Bye,
        ).unwrap();
        let full = bytes.len();
        bytes.truncate(cut.min(full));
        let truncated = bytes.len() < full;
        let mut cursor = std::io::Cursor::new(bytes);
        let result = fisql_core::serve::protocol::read_frame::<
            _,
            fisql_core::serve::ClientRequest,
        >(&mut cursor);
        if truncated {
            // Empty input is clean EOF (`Ok(None)`); a torn frame is a
            // typed error.
            prop_assert!(matches!(result, Ok(None) | Err(_)));
        } else {
            prop_assert!(matches!(
                result,
                Ok(Some(fisql_core::serve::ClientRequest::Bye))
            ));
        }
    }

    /// Deeply nested JSON in a well-formed frame is refused by the
    /// parser's depth limit — it must not blow the stack.
    #[test]
    fn protocol_reader_survives_deeply_nested_json(depth in 1usize..1500) {
        let mut body = Vec::with_capacity(depth * 2);
        body.extend(std::iter::repeat_n(b'[', depth));
        body.extend(std::iter::repeat_n(b']', depth));
        let mut frame = (body.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&body);
        let mut cursor = std::io::Cursor::new(frame);
        let result = fisql_core::serve::protocol::read_frame::<
            _,
            fisql_core::serve::ClientRequest,
        >(&mut cursor);
        // A JSON array is never a `ClientRequest`, and past the depth
        // limit it is not even JSON to serde: both are typed errors.
        prop_assert!(result.is_err());
    }

    /// A frame header may claim any length: oversized claims are
    /// refused before any allocation happens.
    #[test]
    fn protocol_reader_refuses_oversized_headers(extra in 1u32..1024) {
        let claimed = (fisql_core::serve::protocol::MAX_FRAME_LEN as u32) + extra;
        let mut cursor = std::io::Cursor::new(claimed.to_le_bytes().to_vec());
        let result = fisql_core::serve::protocol::read_frame::<
            _,
            fisql_core::serve::ClientRequest,
        >(&mut cursor);
        prop_assert!(result.is_err());
    }
}
