//! Integration tests for `fisql serve`: concurrent session capacity,
//! admission backpressure, journal-backed restart replay, and graceful
//! shutdown — all against a real daemon on a real socket.

use fisql_core::serve::{
    run_load, Connected, ServeClient, ServeSummary, Server, ServerHandle, SessionStore,
};
use fisql_core::{LoadConfig, ServeConfig, SessionEvent};
use fisql_spider::{build_aep, AepConfig};
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;
use std::time::Duration;

/// A small, fast serving configuration on an ephemeral port.
fn test_config() -> ServeConfig {
    ServeConfig::default().port(0).n_examples(24)
}

/// Boots a daemon and returns its address, shutdown handle, and the
/// thread that will yield the final summary.
fn boot(config: ServeConfig) -> (String, ServerHandle, JoinHandle<ServeSummary>) {
    let server = Server::bind(config).expect("bind");
    let handle = server.handle().expect("handle");
    let addr = handle.addr().to_string();
    let thread = std::thread::spawn(move || server.serve().expect("serve loop"));
    (addr, handle, thread)
}

fn stop(handle: &ServerHandle, thread: JoinHandle<ServeSummary>) -> ServeSummary {
    handle.shutdown();
    thread.join().expect("server thread")
}

fn admitted(connected: Connected) -> ServeClient {
    match connected {
        Connected::Admitted(client) => client,
        Connected::Rejected { reason, .. } => panic!("rejected: {reason}"),
        Connected::ShuttingDown => panic!("daemon shutting down"),
    }
}

#[test]
fn thirty_two_truly_concurrent_sessions_are_sustained() {
    let config = test_config().max_sessions(32);
    let seed = config.seed;
    let n_examples = config.n_examples;
    let (addr, handle, thread) = boot(config);
    let corpus = build_aep(&AepConfig { n_examples, seed });

    // 32 clients connect and ALL hold their sessions open at once
    // (barrier), then each runs a full ask+feedback round.
    let barrier = Arc::new(Barrier::new(32));
    let clients: Vec<_> = (0..32usize)
        .map(|i| {
            let addr = addr.clone();
            let question = corpus.examples[i % corpus.examples.len()].question.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = admitted(
                    ServeClient::connect_retry(addr.as_str(), None, Duration::from_secs(10))
                        .expect("connect"),
                );
                // Everyone is admitted concurrently before anyone works.
                barrier.wait();
                let turn = client.ask(&question).expect("ask");
                assert!(!turn.sql.is_empty());
                let turn = client.feedback("we are in 2024", None).expect("feedback");
                assert_eq!(turn.round, 1);
                client.bye().expect("bye")
            })
        })
        .collect();
    for client in clients {
        assert_eq!(client.join().expect("client thread"), 1);
    }

    let summary = stop(&handle, thread);
    assert_eq!(summary.sessions_opened, 32);
    assert_eq!(
        summary.admission.peak_active, 32,
        "all 32 held slots at once"
    );
    assert_eq!(summary.admission.rejected(), 0);
    assert_eq!(summary.rounds_served, 32);
    assert_eq!(summary.contained_panics, 0);
}

#[test]
fn admission_rejects_beyond_cap_without_crash_or_hang() {
    // Two slots, no queue: the third concurrent connection must be
    // rejected immediately — and the daemon must keep serving afterwards.
    let config = test_config().max_sessions(2).queue_depth(0);
    let (addr, handle, thread) = boot(config);

    let a =
        admitted(ServeClient::connect_retry(addr.as_str(), None, Duration::from_secs(10)).unwrap());
    let b = admitted(ServeClient::connect(addr.as_str(), None).unwrap());
    match ServeClient::connect(addr.as_str(), None).unwrap() {
        Connected::Rejected { reason, active, .. } => {
            assert_eq!(active, 2);
            assert!(reason.contains("capacity"), "{reason}");
        }
        Connected::Admitted(_) => panic!("third session must be rejected"),
        Connected::ShuttingDown => panic!("daemon is not shutting down"),
    }

    // Free the slots; the daemon still serves new sessions.
    drop(a);
    drop(b);
    let mut retries = 0;
    let c = loop {
        match ServeClient::connect(addr.as_str(), None).unwrap() {
            Connected::Admitted(client) => break client,
            _ if retries < 100 => {
                retries += 1;
                std::thread::sleep(Duration::from_millis(20));
            }
            other => {
                let _ = other;
                panic!("slots never freed after clients dropped");
            }
        }
    };
    assert_eq!(c.bye().expect("bye"), 0);

    let summary = stop(&handle, thread);
    assert!(summary.admission.rejected_full >= 1);
    assert_eq!(summary.admission.peak_active, 2);
}

#[test]
fn scripted_load_completes_against_a_capped_daemon() {
    let config = test_config().max_sessions(8);
    let seed = config.seed;
    let n_examples = config.n_examples;
    let (addr, handle, thread) = boot(config);

    let load = LoadConfig {
        addr,
        sessions: 40,
        concurrency: 16,
        max_rounds: 2,
        corpus_seed: seed,
        n_examples,
        ..LoadConfig::default()
    };
    let report = run_load(&load).expect("load");
    // Queued admission (depth 16, 5 s budget) absorbs the overshoot:
    // every scripted session completes, none fail.
    assert_eq!(report.sessions_completed, 40);
    assert_eq!(report.sessions_failed, 0);
    assert!(report.rounds >= 40);
    assert!(report.latencies_us.len() >= 80);

    let summary = stop(&handle, thread);
    assert_eq!(summary.sessions_opened, 40);
    assert!(summary.admission.peak_active <= 8);
}

#[test]
fn restart_replays_journaled_sessions_bit_identically() {
    let dir = std::env::temp_dir().join(format!("fisql-serve-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("sessions.fjnl");
    std::fs::remove_file(&store).ok();

    let config = test_config().store(&store);
    let seed = config.seed;
    let n_examples = config.n_examples;
    let corpus = build_aep(&AepConfig { n_examples, seed });

    // Run a session against the first daemon, then stop it WITHOUT the
    // client saying Bye — as a crash/restart would.
    let (addr, handle, thread) = boot(config.clone());
    let (session_id, before) = {
        let mut client = admitted(
            ServeClient::connect_retry(addr.as_str(), None, Duration::from_secs(10)).unwrap(),
        );
        client.ask(&corpus.examples[1].question).unwrap();
        client.feedback("we are in 2024", None).unwrap();
        client
            .feedback("only the january rows please", None)
            .unwrap();
        let transcript = client.transcript().unwrap();
        (client.session_id, transcript)
        // client drops here: connection closes, session stays journaled.
    };
    stop(&handle, thread);

    // A fresh daemon on the same store reports the unclosed session and
    // replays it bit-identically on resume.
    let restarted = Server::bind(config).expect("rebind");
    assert_eq!(restarted.recovered_sessions(), vec![session_id]);
    let handle = restarted.handle().unwrap();
    let addr = handle.addr().to_string();
    let thread = std::thread::spawn(move || restarted.serve().expect("serve loop"));

    let mut client = admitted(
        ServeClient::connect_retry(addr.as_str(), Some(session_id), Duration::from_secs(10))
            .unwrap(),
    );
    assert_eq!(client.session_id, session_id);
    assert_eq!(client.replayed_rounds, 2);
    let after = client.transcript().unwrap();
    assert_eq!(after, before, "replayed transcript diverged");
    assert_eq!(
        serde_json::to_vec(&after).unwrap(),
        serde_json::to_vec(&before).unwrap(),
        "replayed transcript not bit-identical"
    );
    // The resumed session is live: another round works on top of it.
    let turn = client
        .feedback("count them instead of listing", None)
        .unwrap();
    assert_eq!(turn.round, 3);
    client.bye().unwrap();

    let summary = stop(&handle, thread);
    assert_eq!(summary.sessions_resumed, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn foreign_store_configuration_is_refused_at_bind() {
    let dir = std::env::temp_dir().join(format!("fisql-serve-foreign-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("sessions.fjnl");
    std::fs::remove_file(&store).ok();

    let config = test_config().store(&store);
    let (_, handle, thread) = boot(config.clone());
    stop(&handle, thread);

    // A different corpus seed changes the replay fingerprint: binding
    // over the old store must refuse, not silently replay wrong.
    let err = Server::bind(config.seed(0xD1FF))
        .err()
        .expect("must refuse");
    assert!(err.to_string().contains("fingerprint"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_request_drains_the_daemon_gracefully() {
    let (addr, _handle, thread) = boot(test_config());
    // An open session sees the drain notice instead of a dead socket.
    let mut client =
        admitted(ServeClient::connect_retry(addr.as_str(), None, Duration::from_secs(10)).unwrap());
    assert!(fisql_core::serve::request_shutdown(addr.as_str()).expect("shutdown"));
    let summary = thread.join().expect("server thread");
    assert_eq!(summary.sessions_opened, 1);
    // The daemon is gone: new connections fail or are drained.
    assert!(matches!(
        ServeClient::connect(addr.as_str(), None),
        Err(_) | Ok(Connected::ShuttingDown) | Ok(Connected::Rejected { .. })
    ));
    // The held client's next request surfaces the drain (ShuttingDown
    // frame or closed socket), never a hang.
    let _ = client.request(&fisql_core::serve::ClientRequest::Transcript);
}

#[test]
fn session_store_marker_separates_stores_from_eval_journals() {
    // A serve session store can never be opened as an eval journal: the
    // header's case-count slot is pinned to the marker.
    let dir = std::env::temp_dir().join(format!("fisql-serve-marker-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sessions.fjnl");
    std::fs::remove_file(&path).ok();
    let store = SessionStore::open(Some(&path), 7, fisql_core::FsyncPolicy::EachRecord).unwrap();
    store.open_session().unwrap();
    store.sync().unwrap();
    drop(store);
    let err = fisql_core::RunJournal::open_resume::<SessionEvent>(
        &path,
        7,
        10, // a real case count, not the marker
        fisql_core::FsyncPolicy::Never,
    )
    .expect_err("eval open over a session store must refuse");
    assert!(err.to_string().contains("case"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}
