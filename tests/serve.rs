//! Integration tests for `fisql serve`: concurrent session capacity,
//! admission backpressure, journal-backed restart replay, and graceful
//! shutdown — all against a real daemon on a real socket.

use fisql_core::serve::{
    request_compact, request_stats, run_load, Connected, ServeClient, ServeSummary, Server,
    ServerHandle, SessionStore, StoreOptions,
};
use fisql_core::{LoadConfig, ServeConfig, SessionEvent};
use fisql_spider::{build_aep, AepConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;
use std::time::Duration;

/// A small, fast serving configuration on an ephemeral port.
fn test_config() -> ServeConfig {
    ServeConfig::default().port(0).n_examples(24)
}

/// Boots a daemon and returns its address, shutdown handle, and the
/// thread that will yield the final summary.
fn boot(config: ServeConfig) -> (String, ServerHandle, JoinHandle<ServeSummary>) {
    let server = Server::bind(config).expect("bind");
    let handle = server.handle().expect("handle");
    let addr = handle.addr().to_string();
    let thread = std::thread::spawn(move || server.serve().expect("serve loop"));
    (addr, handle, thread)
}

fn stop(handle: &ServerHandle, thread: JoinHandle<ServeSummary>) -> ServeSummary {
    handle.shutdown();
    thread.join().expect("server thread")
}

fn admitted(connected: Connected) -> ServeClient {
    match connected {
        Connected::Admitted(client) => client,
        Connected::Rejected { reason, .. } => panic!("rejected: {reason}"),
        Connected::ShuttingDown => panic!("daemon shutting down"),
        Connected::Fenced { message, .. } => panic!("fenced: {message}"),
    }
}

#[test]
fn thirty_two_truly_concurrent_sessions_are_sustained() {
    let config = test_config().max_sessions(32);
    let seed = config.seed;
    let n_examples = config.n_examples;
    let (addr, handle, thread) = boot(config);
    let corpus = build_aep(&AepConfig { n_examples, seed });

    // 32 clients connect and ALL hold their sessions open at once
    // (barrier), then each runs a full ask+feedback round.
    let barrier = Arc::new(Barrier::new(32));
    let clients: Vec<_> = (0..32usize)
        .map(|i| {
            let addr = addr.clone();
            let question = corpus.examples[i % corpus.examples.len()].question.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = admitted(
                    ServeClient::connect_retry(addr.as_str(), None, Duration::from_secs(10))
                        .expect("connect"),
                );
                // Everyone is admitted concurrently before anyone works.
                barrier.wait();
                let turn = client.ask(&question).expect("ask");
                assert!(!turn.sql.is_empty());
                let turn = client.feedback("we are in 2024", None).expect("feedback");
                assert_eq!(turn.round, 1);
                client.bye().expect("bye")
            })
        })
        .collect();
    for client in clients {
        assert_eq!(client.join().expect("client thread"), 1);
    }

    let summary = stop(&handle, thread);
    assert_eq!(summary.sessions_opened, 32);
    assert_eq!(
        summary.admission.peak_active, 32,
        "all 32 held slots at once"
    );
    assert_eq!(summary.admission.rejected(), 0);
    assert_eq!(summary.rounds_served, 32);
    assert_eq!(summary.contained_panics, 0);
}

#[test]
fn admission_rejects_beyond_cap_without_crash_or_hang() {
    // Two slots, no queue: the third concurrent connection must be
    // rejected immediately — and the daemon must keep serving afterwards.
    let config = test_config().max_sessions(2).queue_depth(0);
    let (addr, handle, thread) = boot(config);

    let a =
        admitted(ServeClient::connect_retry(addr.as_str(), None, Duration::from_secs(10)).unwrap());
    let b = admitted(ServeClient::connect(addr.as_str(), None).unwrap());
    match ServeClient::connect(addr.as_str(), None).unwrap() {
        Connected::Rejected { reason, active, .. } => {
            assert_eq!(active, 2);
            assert!(reason.contains("capacity"), "{reason}");
        }
        Connected::Admitted(_) => panic!("third session must be rejected"),
        Connected::ShuttingDown => panic!("daemon is not shutting down"),
        Connected::Fenced { message, .. } => panic!("fenced: {message}"),
    }

    // Free the slots; the daemon still serves new sessions.
    drop(a);
    drop(b);
    let mut retries = 0;
    let c = loop {
        match ServeClient::connect(addr.as_str(), None).unwrap() {
            Connected::Admitted(client) => break client,
            _ if retries < 100 => {
                retries += 1;
                std::thread::sleep(Duration::from_millis(20));
            }
            other => {
                let _ = other;
                panic!("slots never freed after clients dropped");
            }
        }
    };
    assert_eq!(c.bye().expect("bye"), 0);

    let summary = stop(&handle, thread);
    assert!(summary.admission.rejected_full >= 1);
    assert_eq!(summary.admission.peak_active, 2);
}

#[test]
fn scripted_load_completes_against_a_capped_daemon() {
    let config = test_config().max_sessions(8);
    let seed = config.seed;
    let n_examples = config.n_examples;
    let (addr, handle, thread) = boot(config);

    let load = LoadConfig {
        addr,
        sessions: 40,
        concurrency: 16,
        max_rounds: 2,
        corpus_seed: seed,
        n_examples,
        ..LoadConfig::default()
    };
    let report = run_load(&load).expect("load");
    // Queued admission (depth 16, 5 s budget) absorbs the overshoot:
    // every scripted session completes, none fail.
    assert_eq!(report.sessions_completed, 40);
    assert_eq!(report.sessions_failed, 0);
    assert!(report.rounds >= 40);
    assert!(report.latencies_us.len() >= 80);

    let summary = stop(&handle, thread);
    assert_eq!(summary.sessions_opened, 40);
    assert!(summary.admission.peak_active <= 8);
}

#[test]
fn restart_replays_journaled_sessions_bit_identically() {
    let dir = std::env::temp_dir().join(format!("fisql-serve-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("sessions.fjnl");
    std::fs::remove_file(&store).ok();

    let config = test_config().store(&store);
    let seed = config.seed;
    let n_examples = config.n_examples;
    let corpus = build_aep(&AepConfig { n_examples, seed });

    // Run a session against the first daemon, then stop it WITHOUT the
    // client saying Bye — as a crash/restart would.
    let (addr, handle, thread) = boot(config.clone());
    let (session_id, before) = {
        let mut client = admitted(
            ServeClient::connect_retry(addr.as_str(), None, Duration::from_secs(10)).unwrap(),
        );
        client.ask(&corpus.examples[1].question).unwrap();
        client.feedback("we are in 2024", None).unwrap();
        client
            .feedback("only the january rows please", None)
            .unwrap();
        let transcript = client.transcript().unwrap();
        (client.session_id, transcript)
        // client drops here: connection closes, session stays journaled.
    };
    stop(&handle, thread);

    // A fresh daemon on the same store reports the unclosed session and
    // replays it bit-identically on resume.
    let restarted = Server::bind(config).expect("rebind");
    assert_eq!(restarted.recovered_sessions(), vec![session_id]);
    let handle = restarted.handle().unwrap();
    let addr = handle.addr().to_string();
    let thread = std::thread::spawn(move || restarted.serve().expect("serve loop"));

    let mut client = admitted(
        ServeClient::connect_retry(addr.as_str(), Some(session_id), Duration::from_secs(10))
            .unwrap(),
    );
    assert_eq!(client.session_id, session_id);
    assert_eq!(client.replayed_rounds, 2);
    let after = client.transcript().unwrap();
    assert_eq!(after, before, "replayed transcript diverged");
    assert_eq!(
        serde_json::to_vec(&after).unwrap(),
        serde_json::to_vec(&before).unwrap(),
        "replayed transcript not bit-identical"
    );
    // The resumed session is live: another round works on top of it.
    let turn = client
        .feedback("count them instead of listing", None)
        .unwrap();
    assert_eq!(turn.round, 3);
    client.bye().unwrap();

    let summary = stop(&handle, thread);
    assert_eq!(summary.sessions_resumed, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn foreign_store_configuration_is_refused_at_bind() {
    let dir = std::env::temp_dir().join(format!("fisql-serve-foreign-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("sessions.fjnl");
    std::fs::remove_file(&store).ok();

    let config = test_config().store(&store);
    let (_, handle, thread) = boot(config.clone());
    stop(&handle, thread);

    // A different corpus seed changes the replay fingerprint: binding
    // over the old store must refuse, not silently replay wrong.
    let err = Server::bind(config.seed(0xD1FF))
        .err()
        .expect("must refuse");
    assert!(err.to_string().contains("fingerprint"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_request_drains_the_daemon_gracefully() {
    let (addr, _handle, thread) = boot(test_config());
    // An open session sees the drain notice instead of a dead socket.
    let mut client =
        admitted(ServeClient::connect_retry(addr.as_str(), None, Duration::from_secs(10)).unwrap());
    assert!(fisql_core::serve::request_shutdown(addr.as_str()).expect("shutdown"));
    let summary = thread.join().expect("server thread");
    assert_eq!(summary.sessions_opened, 1);
    // The daemon is gone: new connections fail or are drained.
    assert!(matches!(
        ServeClient::connect(addr.as_str(), None),
        Err(_) | Ok(Connected::ShuttingDown | Connected::Rejected { .. })
    ));
    // The held client's next request surfaces the drain (ShuttingDown
    // frame or closed socket), never a hang.
    let _ = client.request(&fisql_core::serve::ClientRequest::Transcript);
}

#[test]
fn session_store_marker_separates_stores_from_eval_journals() {
    // A serve session store can never be opened as an eval journal: the
    // header's case-count slot is pinned to the marker.
    let dir = std::env::temp_dir().join(format!("fisql-serve-marker-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sessions.fjnl");
    std::fs::remove_file(&path).ok();
    let store = SessionStore::open(
        Some(&path),
        StoreOptions::new(7).fsync(fisql_core::FsyncPolicy::EachRecord),
    )
    .unwrap();
    store.open_session().unwrap();
    store.sync().unwrap();
    drop(store);
    let err = fisql_core::RunJournal::open_resume::<SessionEvent>(
        &path,
        7,
        10, // a real case count, not the marker
        fisql_core::FsyncPolicy::Never,
    )
    .expect_err("eval open over a session store must refuse");
    assert!(err.to_string().contains("case"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Writes one raw byte blob to a fresh connection and returns whatever
/// the daemon sent back before closing.
fn poke_raw(addr: &str, payload: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(payload).expect("write");
    let mut reply = Vec::new();
    let _ = stream.read_to_end(&mut reply);
    reply
}

/// Decodes the first frame of a raw reply as a typed response (None
/// when the daemon closed without answering).
fn first_frame(reply: &[u8]) -> Option<fisql_core::serve::ServerResponse> {
    if reply.len() < 4 {
        return None;
    }
    let len = u32::from_le_bytes(reply[..4].try_into().unwrap()) as usize;
    serde_json::from_slice(&reply[4..4 + len.min(reply.len() - 4)]).ok()
}

#[test]
fn hostile_frames_get_typed_errors_and_the_daemon_keeps_serving() {
    let config = test_config();
    let seed = config.seed;
    let n_examples = config.n_examples;
    let (addr, handle, thread) = boot(config);

    // Non-UTF-8 garbage in a well-formed frame: typed Error.
    let mut garbage = 8u32.to_le_bytes().to_vec();
    garbage.extend_from_slice(&[0xFF, 0xFE, 0x80, 0x81, 0x00, 0xC0, 0xC1, 0xF5]);
    let reply = first_frame(&poke_raw(&addr, &garbage)).expect("a typed reply");
    assert!(
        matches!(reply, fisql_core::serve::ServerResponse::Error { .. }),
        "{reply:?}"
    );

    // Valid JSON that is not a request: typed Error.
    let body = br#"{"definitely":"not a request"}"#;
    let mut framed = (body.len() as u32).to_le_bytes().to_vec();
    framed.extend_from_slice(body);
    let reply = first_frame(&poke_raw(&addr, &framed)).expect("a typed reply");
    assert!(
        matches!(reply, fisql_core::serve::ServerResponse::Error { .. }),
        "{reply:?}"
    );

    // An oversized length claim: typed Error, no allocation.
    let oversized = ((4u32 << 20) + 1).to_le_bytes();
    let reply = first_frame(&poke_raw(&addr, &oversized)).expect("a typed reply");
    assert!(
        matches!(reply, fisql_core::serve::ServerResponse::Error { .. }),
        "{reply:?}"
    );

    // Deeply nested JSON: the parser's depth limit answers, the stack
    // survives.
    let mut nested = Vec::new();
    nested.extend(std::iter::repeat_n(b'[', 600));
    nested.extend(std::iter::repeat_n(b']', 600));
    let mut framed = (nested.len() as u32).to_le_bytes().to_vec();
    framed.extend_from_slice(&nested);
    let reply = first_frame(&poke_raw(&addr, &framed)).expect("a typed reply");
    assert!(
        matches!(reply, fisql_core::serve::ServerResponse::Error { .. }),
        "{reply:?}"
    );

    // A truncated frame (header promises more than arrives): the daemon
    // just closes; either way it must not crash or hang.
    let torn = 64u32.to_le_bytes().to_vec();
    let _ = poke_raw(&addr, &torn);

    // After all that abuse, a normal session still completes.
    let corpus = build_aep(&AepConfig { n_examples, seed });
    let mut client =
        admitted(ServeClient::connect_retry(addr.as_str(), None, Duration::from_secs(10)).unwrap());
    let turn = client.ask(&corpus.examples[0].question).expect("ask");
    assert!(!turn.sql.is_empty());
    client.bye().expect("bye");

    let summary = stop(&handle, thread);
    assert_eq!(summary.sessions_opened, 1);
    assert_eq!(summary.contained_panics, 0);
    assert!(
        summary.errors >= 4,
        "hostile frames counted: {}",
        summary.errors
    );
}

#[test]
fn idle_sessions_are_reaped_and_the_slot_returns() {
    // One slot, 200 ms idle budget: a stalled session must be reaped
    // and its slot handed to the next client.
    let config = test_config().max_sessions(1).idle_timeout_ms(200);
    let seed = config.seed;
    let n_examples = config.n_examples;
    let (addr, handle, thread) = boot(config);
    let corpus = build_aep(&AepConfig { n_examples, seed });

    let mut stalled =
        admitted(ServeClient::connect_retry(addr.as_str(), None, Duration::from_secs(10)).unwrap());
    stalled.ask(&corpus.examples[0].question).expect("ask");

    // The stalled client goes quiet; a second client queues for the
    // only slot and must be admitted once the reaper fires.
    let mut fresh = admitted(
        ServeClient::connect_retry(addr.as_str(), None, Duration::from_secs(10)).expect("connect"),
    );
    let turn = fresh.ask(&corpus.examples[1].question).expect("ask");
    assert!(!turn.sql.is_empty());
    fresh.bye().expect("bye");

    // The reaped client's next request surfaces the eviction as an
    // error (the typed Reaped farewell or the closed socket), not a
    // hang.
    let verdict = stalled.feedback("we are in 2024", None);
    assert!(verdict.is_err(), "reaped session must not keep serving");

    let summary = stop(&handle, thread);
    assert_eq!(summary.admission.reaped, 1);
    assert_eq!(summary.sessions_opened, 2);
    assert_eq!(summary.final_active, 0);
    assert_eq!(summary.contained_panics, 0);
}

#[test]
fn stats_admin_request_reports_live_counters() {
    let config = test_config();
    let seed = config.seed;
    let n_examples = config.n_examples;
    let (addr, handle, thread) = boot(config);
    let corpus = build_aep(&AepConfig { n_examples, seed });

    let mut client =
        admitted(ServeClient::connect_retry(addr.as_str(), None, Duration::from_secs(10)).unwrap());
    client.ask(&corpus.examples[0].question).expect("ask");
    client.feedback("we are in 2024", None).expect("feedback");

    // Session-less admin fetch while the session is still open.
    let stats = request_stats(addr.as_str()).expect("stats");
    assert_eq!(stats.sessions_opened, 1);
    assert_eq!(stats.questions_served, 1);
    assert_eq!(stats.rounds_served, 1);
    assert_eq!(stats.admission.admitted_direct, 1);
    assert_eq!(stats.sessions_degraded, 0);
    assert!(!stats.store.durable, "no --store configured");
    assert!(stats.store.writable);
    assert!(stats.store.ops >= 3, "Opened + Ask + Feedback journaled");

    // The same request also answers in-session.
    let in_session = client.stats().expect("in-session stats");
    assert_eq!(in_session.sessions_opened, 1);
    client.bye().expect("bye");

    let summary = stop(&handle, thread);
    assert_eq!(summary.sessions_opened, 1);
}

#[test]
fn compaction_preserves_survivors_across_restart_bit_identically() {
    let dir = std::env::temp_dir().join(format!("fisql-serve-compact-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("sessions.fjnl");
    std::fs::remove_file(&store).ok();

    let config = test_config().store(&store);
    let seed = config.seed;
    let n_examples = config.n_examples;
    let corpus = build_aep(&AepConfig { n_examples, seed });

    let (addr, handle, thread) = boot(config.clone());

    // Two sessions complete (compaction fodder)...
    for i in 0..2 {
        let mut client = admitted(
            ServeClient::connect_retry(addr.as_str(), None, Duration::from_secs(10)).unwrap(),
        );
        client.ask(&corpus.examples[i].question).expect("ask");
        client.bye().expect("bye");
    }
    // ...and one survivor stays open across a crash-style disconnect.
    let (survivor_id, before) = {
        let mut client = admitted(
            ServeClient::connect_retry(addr.as_str(), None, Duration::from_secs(10)).unwrap(),
        );
        client.ask(&corpus.examples[5].question).expect("ask");
        client
            .feedback("only the january rows please", None)
            .expect("feedback");
        (client.session_id, client.transcript().expect("transcript"))
    };

    // Admin-triggered compaction drops the two closed sessions.
    let outcome = request_compact(addr.as_str()).expect("compact");
    assert_eq!(outcome.generation, 1);
    assert_eq!(outcome.sessions_dropped, 2);
    let stats = request_stats(addr.as_str()).expect("stats");
    assert_eq!(stats.store.generation, 1);
    assert_eq!(stats.store.compactions, 1);
    stop(&handle, thread);

    // Kill/rebind: only the survivor is recovered, and its replay is
    // byte-identical to the pre-compaction transcript.
    let restarted = Server::bind(config).expect("rebind over compacted store");
    assert_eq!(restarted.recovered_sessions(), vec![survivor_id]);
    let handle = restarted.handle().unwrap();
    let addr = handle.addr().to_string();
    let thread = std::thread::spawn(move || restarted.serve().expect("serve loop"));

    let mut client = admitted(
        ServeClient::connect_retry(addr.as_str(), Some(survivor_id), Duration::from_secs(10))
            .unwrap(),
    );
    let after = client.transcript().expect("transcript");
    assert_eq!(
        serde_json::to_vec(&after).unwrap(),
        serde_json::to_vec(&before).unwrap(),
        "survivor replay diverged after compaction + restart"
    );
    client.bye().expect("bye");
    stop(&handle, thread);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn automatic_compaction_runs_on_the_closed_session_cadence() {
    let dir = std::env::temp_dir().join(format!("fisql-serve-autocompact-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("sessions.fjnl");
    std::fs::remove_file(&store).ok();

    let config = test_config().store(&store).compact_every(2);
    let seed = config.seed;
    let n_examples = config.n_examples;
    let corpus = build_aep(&AepConfig { n_examples, seed });
    let (addr, handle, thread) = boot(config);

    for i in 0..4 {
        let mut client = admitted(
            ServeClient::connect_retry(addr.as_str(), None, Duration::from_secs(10)).unwrap(),
        );
        client
            .ask(&corpus.examples[i % n_examples].question)
            .expect("ask");
        client.bye().expect("bye");
    }
    let stats = request_stats(addr.as_str()).expect("stats");
    assert!(
        stats.store.compactions >= 2,
        "4 closed sessions at --compact-every 2: {stats:?}"
    );
    assert!(stats.store.ops_dropped > 0);

    let summary = stop(&handle, thread);
    assert_eq!(summary.sessions_opened, 4);
    assert!(summary.store.generation >= 2);
    std::fs::remove_dir_all(&dir).ok();
}
