//! Multi-round conversation behavior: sequential corrections (paper
//! Figure 8's mechanism at the session level), strategy switching, and
//! transcript integrity.

use fisql::prelude::*;
use fisql_core::Assistant;

/// Builds an example with two forced misreadings (wrong year + a spurious
/// extra column), so correcting it takes two feedback rounds.
fn two_error_setup() -> (Corpus, Example, SimLlm) {
    let corpus = build_aep(&AepConfig {
        n_examples: 6,
        seed: 0x2E2,
    });
    let mut example = corpus.examples[0].clone();
    example
        .channels
        .retain(|wc| matches!(wc.channel.kind(), "year-default" | "extra-column"));
    // An extra-column channel may not be present on the flagship; add one
    // deterministically.
    if !example
        .channels
        .iter()
        .any(|wc| wc.channel.kind() == "extra-column")
    {
        example.channels.push(fisql_spider::WeightedChannel {
            channel: fisql_spider::ErrorChannel::ExtraColumn {
                column: "segment_name".into(),
            },
            weight: 1.0,
        });
    }
    let llm = SimLlm::new(LlmConfig {
        seed: 3,
        calibration: Calibration {
            base_fire_rate: 10.0,
            max_fire_prob: 1.0,
            router_noise: 0.0,
            edit_apply_with_routing: 1.0,
            edit_apply_without_routing: 1.0,
            moderate_edit_reliability: 1.0,
            structural_edit_reliability: 1.0,
            ..Default::default()
        },
    });
    (corpus, example, llm)
}

#[test]
fn two_errors_need_two_rounds_and_then_match() {
    let (corpus, example, llm) = two_error_setup();
    let db = &corpus.databases[0];
    let assistant = Assistant {
        llm: llm.clone(),
        store: DemoStore::new(vec![]),
        demos_k: 0,
    };
    let mut session = fisql_core::Session::new(
        db,
        assistant,
        Strategy::Fisql {
            routing: true,
            highlighting: false,
        },
    );
    let first = session.ask(&example);
    // Both channels fired.
    assert!(first.sql_text.contains("2023"), "{}", first.sql_text);
    assert!(
        first.sql_text.to_lowercase().contains("segment_name"),
        "{}",
        first.sql_text
    );

    // Round 1: fix the year. Still wrong (extra column).
    let after_year = session.give_feedback(&llm, &example, "we are in 2024", None);
    assert!(
        after_year.sql_text.contains("2024"),
        "{}",
        after_year.sql_text
    );
    assert!(
        !structurally_equal(&after_year.query, &example.gold),
        "one round should not fix both errors"
    );

    // Round 2: drop the stray column. Now execution-correct.
    let fixed = session.give_feedback(&llm, &example, "do not give segment names", None);
    assert!(
        structurally_equal(&fixed.query, &example.gold),
        "after two rounds: {}",
        fixed.sql_text
    );

    // Transcript has 3 user turns and 3 assistant turns.
    let t = session.render_transcript();
    assert_eq!(t.matches("User>").count(), 3);
    assert_eq!(t.matches("Assistant>").count(), 3);
}

#[test]
fn feedback_order_does_not_matter() {
    let (corpus, example, llm) = two_error_setup();
    let db = &corpus.databases[0];
    let assistant = Assistant {
        llm: llm.clone(),
        store: DemoStore::new(vec![]),
        demos_k: 0,
    };
    let mut session = fisql_core::Session::new(
        db,
        assistant,
        Strategy::Fisql {
            routing: true,
            highlighting: false,
        },
    );
    session.ask(&example);
    session.give_feedback(&llm, &example, "do not give segment names", None);
    let fixed = session.give_feedback(&llm, &example, "we are in 2024", None);
    assert!(
        structurally_equal(&fixed.query, &example.gold),
        "reverse order failed: {}",
        fixed.sql_text
    );
}

#[test]
fn asking_again_resets_the_round_counter() {
    let (corpus, example, llm) = two_error_setup();
    let db = &corpus.databases[0];
    let assistant = Assistant {
        llm: llm.clone(),
        store: DemoStore::new(vec![]),
        demos_k: 0,
    };
    let mut session = fisql_core::Session::new(
        db,
        assistant,
        Strategy::Fisql {
            routing: true,
            highlighting: false,
        },
    );
    let a = session.ask(&example);
    session.give_feedback(&llm, &example, "we are in 2024", None);
    // Re-asking returns to the same deterministic initial answer.
    let b = session.ask(&example);
    assert_eq!(
        a.sql_text, b.sql_text,
        "initial answers must be reproducible"
    );
}

#[test]
fn query_rewrite_session_changes_question_across_rounds() {
    let (corpus, example, llm) = two_error_setup();
    let db = &corpus.databases[0];
    let assistant = Assistant {
        llm: llm.clone(),
        store: DemoStore::new(vec![]),
        demos_k: 0,
    };
    let mut session = fisql_core::Session::new(db, assistant, Strategy::QueryRewrite);
    session.ask(&example);
    let turn = session.give_feedback(&llm, &example, "we are in 2024", None);
    // The rewrite prompt records the merged question.
    assert!(turn.prompt.contains("we are in 2024"), "{}", turn.prompt);
}
