//! `fisql` — the interactive FISQL console.
//!
//! A terminal rendition of the paper's tool (Figures 3-4): ask questions
//! against the bundled AEP-like marketing database (or your own `.sql`
//! schema file), read the Assistant's four outputs, and steer it with
//! plain-language feedback.
//!
//! ```text
//! fisql [path/to/schema.sql]
//!
//! you> how many audiences were created in January?
//! ...assistant answers...
//! you> feedback: we are in 2024
//! ...assistant revises the SQL...
//! you> :sql        show the current SQL
//! you> :run SELECT COUNT(*) FROM hkg_dim_segment
//! you> :schema     print the schema
//! you> :quit
//! ```
//!
//! `fisql --eval [--workers N]` skips the console and runs the sharded
//! correction evaluation (collect → annotate → correct) on the bundled
//! corpora, printing per-round correction rates and throughput. `N = 0`
//! (the default) uses all available cores; `FISQL_WORKERS` is honoured
//! when the flag is absent.
//!
//! The backing model is the simulated LLM, so "asking a question" means
//! picking the bundled corpus question closest to yours (by embedding
//! similarity) and answering it — good enough to drive the whole feedback
//! pipeline interactively.

use fisql::prelude::*;
use fisql_core::Assistant;
use fisql_llm::Embedding;
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().collect();

    if args.iter().any(|a| a == "--eval") {
        run_eval(&args);
        return;
    }

    // Corpus + database: bundled AEP-like by default; a schema file makes
    // a custom database (questions then run through :run only).
    let corpus = build_aep(&AepConfig {
        n_examples: 120,
        seed: 0xC11,
    });
    let custom_db = args.get(1).map(|path| {
        let sql = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        });
        fisql::fisql_engine::load_script("custom", &sql).unwrap_or_else(|e| {
            eprintln!("error: cannot load {path}: {e}");
            std::process::exit(2);
        })
    });
    let db = custom_db.as_ref().unwrap_or(&corpus.databases[0]);

    let llm = SimLlm::new(LlmConfig::default());
    let assistant = Assistant::for_corpus(&corpus, llm, 3);
    let strategy = Strategy::Fisql {
        routing: true,
        highlighting: false,
    };
    let mut session = fisql_core::Session::new(db, assistant, strategy);

    // Question embeddings for nearest-question matching.
    let embeddings: Vec<Embedding> = corpus
        .examples
        .iter()
        .map(|e| Embedding::embed(&e.question))
        .collect();
    let mut current_example: Option<Example> = None;

    println!("fisql — Feedback-Infused SQL console (database: {db})");
    println!("type a question, `feedback: <text>`, `:sql`, `:run <SQL>`, `:explain <SQL>`, `:schema`, `:examples`, or `:quit`\n");

    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        print!("you> ");
        std::io::stdout().flush().ok();
        line.clear();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let input = line.trim();
        if input.is_empty() {
            continue;
        }
        match input {
            ":quit" | ":q" | "exit" => break,
            ":schema" => {
                println!("{}", db.schema_text());
                continue;
            }
            ":sql" => {
                match session.transcript.iter().rev().find_map(|e| match e {
                    fisql_core::ChatEvent::Assistant(t) => Some(t.clone()),
                    _ => None,
                }) {
                    Some(t) => {
                        let sql = t
                            .lines()
                            .skip_while(|l| !l.contains("[Show source]"))
                            .nth(1)
                            .unwrap_or("(no SQL yet)");
                        println!("{sql}");
                    }
                    None => println!("(ask a question first)"),
                }
                continue;
            }
            ":examples" => {
                for e in corpus.examples.iter().take(10) {
                    println!("  - {}", e.question);
                }
                continue;
            }
            _ => {}
        }
        if let Some(sql) = input.strip_prefix(":run ") {
            match execute_sql(db, sql) {
                Ok(rs) => println!("{rs}"),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if let Some(sql) = input.strip_prefix(":explain ") {
            match parse_query(sql) {
                Ok(q) => println!("{}", fisql::fisql_engine::explain(db, &q)),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if input.starts_with(':') {
            println!(
                "(unknown command `{input}` — try :sql, :run, :explain, :schema, :examples, :quit)"
            );
            continue;
        }
        if let Some(feedback) = input
            .strip_prefix("feedback:")
            .or_else(|| input.strip_prefix("fb:"))
        {
            let Some(example) = &current_example else {
                println!("(ask a question before giving feedback)");
                continue;
            };
            let turn = session.give_feedback(example, feedback.trim(), None);
            println!("{}", Assistant::render_turn(&turn));
            continue;
        }

        // A question: find the nearest bundled question and answer it.
        if custom_db.is_some() {
            println!("(custom databases support `:run <SQL>`; questions need the bundled corpus)");
            continue;
        }
        let q = Embedding::embed(input);
        let best = embeddings
            .iter()
            .enumerate()
            .max_by(|a, b| {
                q.cosine(a.1)
                    .partial_cmp(&q.cosine(b.1))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        let example = corpus.examples[best].clone();
        if !example.question.eq_ignore_ascii_case(input) {
            println!("(interpreting as: {})", example.question);
        }
        let turn = session.ask(&example);
        println!("{}", Assistant::render_turn(&turn));
        current_example = Some(example);
    }
    println!("bye.");
}

/// Parses `--flag value` from the argument list, exiting on a malformed
/// value.
fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("error: {flag} got an invalid value `{v}`");
                std::process::exit(2);
            })
        })
}

/// `fisql --eval [--strategy S] [--workers N] [--fault-rate R]
/// [--retry-budget B] [--no-static-oracle] [--conformance-gate]`: the
/// sharded correction evaluation on the bundled SPIDER-like and AEP-like
/// corpora.
///
/// `--strategy fisql|dynamic|rewrite|search` picks the
/// feedback-incorporation strategy (default `fisql`): the paper's
/// two-step prompting, its dynamic-routing variant, the Query Rewrite
/// baseline, or the static fault-localization repair search
/// (`SearchRefine`), which enumerates structure-preserving candidate
/// edits, prunes them statically, and executes only the chosen
/// candidate.
///
/// `--fault-rate R` injects deterministic backend faults at total rate
/// `R` (e.g. `0.2`), split evenly across timeouts, rate limits,
/// transient faults, and malformed output; `--retry-budget B` sets the
/// resilience layer's attempts per call (default 3). With faults the
/// correction loop degrades gracefully — failed rounds keep the previous
/// SQL — and the printed metrics include retry/breaker/degradation
/// counts. `FISQL_FAULT_RATE` is honoured when the flag is absent.
///
/// `--no-static-oracle` disables the equivalence oracle that skips
/// engine executions of candidates provably equivalent to queries
/// already found incorrect; `--conformance-gate` enables the
/// router-vs-realized feedback-conformance check with its one-shot
/// re-prompt.
///
/// Durability flags: `--journal PATH` appends every finished case's
/// verdict to a crash-safe write-ahead journal (one file per corpus,
/// suffixed with the corpus name); `--resume` replays an existing
/// journal's intact prefix and runs only the remaining cases, producing
/// a report bit-identical to an uninterrupted run; `--fsync
/// never|each|batch` picks the journal's durability/throughput
/// trade-off (default `batch`); `--case-deadline MS` arms the stall
/// watchdog, expiring cases whose virtual session clock exceeds `MS`
/// (deterministic at any worker count) and cancelling runaway engine
/// statements.
fn run_eval(args: &[String]) {
    let strategy = match flag_value::<String>(args, "--strategy").as_deref() {
        None | Some("fisql") => Strategy::Fisql {
            routing: true,
            highlighting: false,
        },
        Some("dynamic") => Strategy::FisqlDynamic,
        Some("rewrite") => Strategy::QueryRewrite,
        Some("search") => Strategy::SearchRefine,
        Some(other) => {
            eprintln!("error: unknown --strategy `{other}` (try fisql, dynamic, rewrite, search)");
            std::process::exit(2);
        }
    };
    let workers = flag_value(args, "--workers").unwrap_or_else(fisql_core::workers_from_env);
    let fault_rate: f64 = flag_value(args, "--fault-rate")
        .or_else(|| FaultConfig::from_env().map(|c| c.total_rate()))
        .unwrap_or(0.0);
    let retry_budget: u32 = flag_value(args, "--retry-budget").unwrap_or(3);
    let static_oracle = !args.iter().any(|a| a == "--no-static-oracle");
    let conformance_gate = args.iter().any(|a| a == "--conformance-gate");
    let journal: Option<String> = flag_value(args, "--journal");
    let resume = args.iter().any(|a| a == "--resume");
    let case_deadline: Option<u64> = flag_value(args, "--case-deadline");
    let fsync: FsyncPolicy = flag_value(args, "--fsync").unwrap_or_default();
    if resume && journal.is_none() {
        eprintln!("error: --resume requires --journal PATH");
        std::process::exit(2);
    }

    let spider = build_spider(&SpiderConfig {
        n_databases: 12,
        n_examples: 96,
        seed: 0xC11,
    });
    let aep = build_aep(&AepConfig {
        n_examples: 60,
        seed: 0xC11 ^ 0xAE9,
    });
    let llm = SimLlm::new(LlmConfig::default());
    let user = SimUser::new(UserConfig::default());
    // The chaos stack: faults injected under the simulated model, retries
    // and breaker on top. Built even at rate 0 — the zero-rate injector
    // passes everything through, and `Resilient` adds only bookkeeping —
    // so the eval path is identical with and without chaos.
    let chaos = Resilient::new(
        FaultyBackend::new(llm.clone(), FaultConfig::uniform(fault_rate)),
        ResilienceConfig {
            attempt_budget: retry_budget,
            ..ResilienceConfig::default()
        },
    );

    for corpus in [&spider, &aep] {
        // Error collection runs the Assistant front end (SimLlm-specific);
        // the correction loop proper runs through the chaos stack.
        let collect = CorrectionRun::new(corpus, &llm, &user)
            .demos_k(3)
            .rounds(2)
            .workers(workers);
        let errors = collect.collect_errors();
        let cases = collect.annotate(&errors);
        // One journal file per corpus: both corpora share the --journal
        // prefix but must not share a fingerprinted case list.
        let journal_path = journal
            .as_ref()
            .map(|p| std::path::PathBuf::from(format!("{p}.{}", corpus.name)));
        let mut run = CorrectionRun::new(corpus, &chaos, &user)
            .strategy(strategy)
            .demos_k(3)
            .rounds(2)
            .workers(workers)
            .static_oracle(static_oracle)
            .conformance_gate(conformance_gate)
            .case_deadline_ms(case_deadline)
            .resume(resume)
            .fsync(fsync);
        if let Some(path) = &journal_path {
            run = run.journal(path);
        }
        let report = match run.try_run(&cases) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("error: run journal I/O failed: {e}");
                std::process::exit(1);
            }
        };
        let m = &report.metrics;
        println!(
            "{} [{}]: {} errors, {} annotated; corrected after r1/r2: {:.1}%/{:.1}%",
            corpus.name,
            strategy.name(),
            errors.len(),
            cases.len(),
            report.pct_after(1),
            report.pct_after(2),
        );
        println!(
            "  {} worker(s), {:.1} ms, {:.1} cases/s, {} engine executions, cache hit rate {:.0}%",
            m.workers,
            m.wall_ms,
            m.cases_per_sec,
            m.engine_executions,
            100.0 * m.cache_hit_rate(),
        );
        if static_oracle {
            println!(
                "  static oracle: {} execution(s) skipped",
                report.executions_skipped_static,
            );
        }
        if conformance_gate {
            println!(
                "  conformance: {} agreed / {} disagreed, {} re-prompt(s)",
                report.router_realized_agreements,
                report.router_realized_disagreements,
                report.conformance_retries,
            );
        }
        if let Some(path) = &journal_path {
            println!(
                "  journal: {} ({} policy){}",
                path.display(),
                fsync,
                if resume { ", resumed" } else { "" },
            );
        }
        if report.cases_crashed > 0 || report.cases_timed_out > 0 {
            println!(
                "  robustness: {} case(s) crashed, {} timed out",
                report.cases_crashed, report.cases_timed_out,
            );
        }
        if fault_rate > 0.0 {
            let r = &m.resilience;
            println!(
                "  faults: rate {:.0}%, {} attempts / {} calls, {} retries, {} breaker trips, \
                 {} rounds degraded in {} case(s)",
                100.0 * fault_rate,
                r.attempts,
                r.calls,
                r.retries,
                r.breaker_trips,
                report.degraded_rounds,
                report.cases_degraded,
            );
        }
    }
}
