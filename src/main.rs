//! `fisql` — the interactive FISQL console, evaluator, and daemon.
//!
//! A terminal rendition of the paper's tool (Figures 3-4): ask questions
//! against the bundled AEP-like marketing database (or your own `.sql`
//! schema file), read the Assistant's four outputs, and steer it with
//! plain-language feedback.
//!
//! ```text
//! fisql [path/to/schema.sql]
//!
//! you> how many audiences were created in January?
//! ...assistant answers...
//! you> feedback: we are in 2024
//! ...assistant revises the SQL...
//! you> :sql        show the current SQL
//! you> :run SELECT COUNT(*) FROM hkg_dim_segment
//! you> :schema     print the schema
//! you> :quit
//! ```
//!
//! Three non-interactive entry points share the console's pipeline:
//!
//! - `fisql --eval` runs the sharded correction evaluation (collect →
//!   annotate → correct) on the bundled corpora; flags parse into
//!   [`EvalConfig`].
//! - `fisql serve` hosts the session API as a long-lived multi-session
//!   TCP daemon ([`ServeConfig`]): length-prefixed JSON frames,
//!   admission control with backpressure, per-connection resilience, and
//!   a journal-backed session store that replays sessions bit-identically
//!   across restarts (`--store PATH`).
//! - `fisql load` drives a daemon with seeded deterministic session
//!   scripts ([`LoadConfig`]) and reports throughput, latency
//!   percentiles, and the order-insensitive transcript digest;
//!   `--shutdown` asks the daemon to drain afterwards.
//!
//! The backing model is the simulated LLM, so "asking a question" means
//! picking the bundled corpus question closest to yours (by embedding
//! similarity) and answering it — good enough to drive the whole feedback
//! pipeline interactively.

#![forbid(unsafe_code)]

use fisql::prelude::*;
use fisql_core::serve::{run_load, Server};
use fisql_core::{chaos_stack, Assistant, EvalConfig, LoadConfig, ServeConfig};
use fisql_llm::Embedding;
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().collect();

    match args.get(1).map(String::as_str) {
        Some("serve") => return run_serve(&args[2..]),
        Some("load") => return run_load_cli(&args[2..]),
        _ if args.iter().any(|a| a == "--eval") => return run_eval(&args),
        _ => {}
    }

    // Corpus + database: bundled AEP-like by default; a schema file makes
    // a custom database (questions then run through :run only).
    let corpus = build_aep(&AepConfig {
        n_examples: 120,
        seed: 0xC11,
    });
    let custom_db = args.get(1).map(|path| {
        let sql = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        });
        fisql::fisql_engine::load_script("custom", &sql).unwrap_or_else(|e| {
            eprintln!("error: cannot load {path}: {e}");
            std::process::exit(2);
        })
    });
    let db = custom_db.as_ref().unwrap_or(&corpus.databases[0]);

    let llm = SimLlm::new(LlmConfig::default());
    let assistant = Assistant::for_corpus(&corpus, llm.clone(), 3);
    let strategy = Strategy::Fisql {
        routing: true,
        highlighting: false,
    };
    let mut session = fisql_core::Session::new(db, assistant, strategy);

    // Question embeddings for nearest-question matching.
    let embeddings: Vec<Embedding> = corpus
        .examples
        .iter()
        .map(|e| Embedding::embed(&e.question))
        .collect();
    let mut current_example: Option<Example> = None;

    println!("fisql — Feedback-Infused SQL console (database: {db})");
    println!("type a question, `feedback: <text>`, `:sql`, `:run <SQL>`, `:explain <SQL>`, `:schema`, `:examples`, or `:quit`\n");

    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        print!("you> ");
        std::io::stdout().flush().ok();
        line.clear();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let input = line.trim();
        if input.is_empty() {
            continue;
        }
        match input {
            ":quit" | ":q" | "exit" => break,
            ":schema" => {
                println!("{}", db.schema_text());
                continue;
            }
            ":sql" => {
                match session.events().iter().rev().find_map(|e| match e {
                    SessionEvent::Assistant { sql, .. } => Some(sql.clone()),
                    _ => None,
                }) {
                    Some(sql) => println!("{sql}"),
                    None => println!("(ask a question first)"),
                }
                continue;
            }
            ":examples" => {
                for e in corpus.examples.iter().take(10) {
                    println!("  - {}", e.question);
                }
                continue;
            }
            _ => {}
        }
        if let Some(sql) = input.strip_prefix(":run ") {
            match execute_sql(db, sql) {
                Ok(rs) => println!("{rs}"),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if let Some(sql) = input.strip_prefix(":explain ") {
            match parse_query(sql) {
                Ok(q) => println!("{}", fisql::fisql_engine::explain(db, &q)),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if input.starts_with(':') {
            println!(
                "(unknown command `{input}` — try :sql, :run, :explain, :schema, :examples, :quit)"
            );
            continue;
        }
        if let Some(feedback) = input
            .strip_prefix("feedback:")
            .or_else(|| input.strip_prefix("fb:"))
        {
            let Some(example) = &current_example else {
                println!("(ask a question before giving feedback)");
                continue;
            };
            let turn = session.give_feedback(&llm, example, feedback.trim(), None);
            println!("{}", Assistant::render_turn(&turn));
            continue;
        }

        // A question: find the nearest bundled question and answer it.
        if custom_db.is_some() {
            println!("(custom databases support `:run <SQL>`; questions need the bundled corpus)");
            continue;
        }
        let q = Embedding::embed(input);
        let best = embeddings
            .iter()
            .enumerate()
            .max_by(|a, b| {
                q.cosine(a.1)
                    .partial_cmp(&q.cosine(b.1))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        let example = corpus.examples[best].clone();
        if !example.question.eq_ignore_ascii_case(input) {
            println!("(interpreting as: {})", example.question);
        }
        let turn = session.ask(&example);
        println!("{}", Assistant::render_turn(&turn));
        current_example = Some(example);
    }
    println!("bye.");
}

/// `fisql serve [--host H] [--port P] [--max-sessions N] [--queue-depth
/// Q] [--queue-wait-ms MS] [--store PATH] [--fsync never|each|batch]
/// [--idle-timeout MS] [--compact-every N] [--disk-fault-rate R]
/// [--strategy S] [--fault-rate R] [--retry-budget B] [--seed S]
/// [--examples N] [--no-semantic-cache] [--repl-listen ADDR]
/// [--replica-of ADDR] [--repl-ack none|quorum] [--repl-ack-timeout MS]
/// [--no-auto-promote]`: the long-lived multi-session daemon.
///
/// Connections speak the length-prefixed JSON protocol
/// (`fisql_core::serve::protocol`). Up to `--max-sessions` sessions run
/// concurrently; `--queue-depth` more connections wait (bounded) and
/// everything beyond is rejected with a typed backpressure response.
/// With `--store PATH` every session operation is journaled write-ahead,
/// and a restarted daemon replays stored sessions bit-identically
/// (clients resume with `Hello { resume: <id> }`). A `Shutdown` request
/// (`fisql load --shutdown`) drains the daemon gracefully.
///
/// Survivability: `--idle-timeout MS` reaps sessions that complete no
/// frame for that long (typed `Reaped` farewell, slot returned);
/// `--compact-every N` rewrites the store after every N closed sessions,
/// keeping only live sessions; `--disk-fault-rate R` (or the
/// `FISQL_DISK_FAULT_RATE` env var) injects deterministic store faults —
/// an affected session degrades to memory-only instead of dying.
///
/// Replication: `--repl-listen ADDR` makes this daemon a primary that
/// ships every journal record to attached followers; `--replica-of
/// ADDR` makes it a follower of that primary's replication listener
/// (read-only until promoted). `--repl-ack quorum` holds each write's
/// response until a follower confirms durability (released after
/// `--repl-ack-timeout` with the timeout counted); the default
/// (`none`) ships asynchronously. A follower that loses its primary
/// self-promotes by bumping the persisted fencing epoch — pass
/// `--no-auto-promote` to require an explicit admin `Promote` instead.
/// A deposed primary fences itself and answers writes with a typed
/// `Fenced` response.
fn run_serve(args: &[String]) {
    let config = ServeConfig::from_args(args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let server = Server::bind(config.clone()).unwrap_or_else(|e| {
        eprintln!("error: cannot bind {}: {e}", config.addr());
        std::process::exit(1);
    });
    let addr = server
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| config.addr());
    println!(
        "fisql serve: listening on {addr} ({} session slot(s), queue {}, store {})",
        config.max_sessions,
        config.queue_depth,
        config
            .store
            .as_ref()
            .map_or("none".to_string(), |p| p.display().to_string()),
    );
    // The replication listener's resolved address on its own line, so
    // scripts (and the CI smoke job) binding port 0 can read it back.
    if let Some(repl_addr) = server.repl_addr() {
        println!(
            "  replication listening on {repl_addr} (ack {})",
            config.repl_ack
        );
    }
    if let Some(primary) = &config.replica_of {
        println!(
            "  replicating from {primary} (auto-promote {})",
            if config.auto_promote { "on" } else { "off" },
        );
        if config.auto_promote {
            println!(
                "  note: auto-promote cannot distinguish a dead primary from a network \
                 partition; where partitions are plausible, prefer --no-auto-promote \
                 and an explicit admin Promote"
            );
        }
    }
    let recovered = server.recovered_sessions();
    if !recovered.is_empty() {
        println!(
            "  recovered {} unclosed session(s) from the store: {recovered:?}",
            recovered.len()
        );
    }
    match server.serve() {
        Ok(summary) => {
            let a = &summary.admission;
            println!(
                "fisql serve: drained — {} session(s) opened, {} resumed, {} question(s), \
                 {} feedback round(s), {} contained panic(s)",
                summary.sessions_opened,
                summary.sessions_resumed,
                summary.questions_served,
                summary.rounds_served,
                summary.contained_panics,
            );
            println!(
                "  admission: {} direct, {} queued, {} rejected ({} full / {} timeout / {} closed), peak {}",
                a.admitted_direct,
                a.admitted_queued,
                a.rejected(),
                a.rejected_full,
                a.rejected_timeout,
                a.rejected_closed,
                a.peak_active,
            );
            let s = &summary.store;
            println!(
                "  survivability: {} reaped, {} degraded, store gen {} ({} op(s), {} compaction(s), \
                 {} append fault(s), writable {}, epoch {}), final active {} / queued {}",
                a.reaped,
                summary.sessions_degraded,
                s.generation,
                s.ops,
                s.compactions,
                s.append_faults,
                s.writable,
                s.epoch,
                summary.final_active,
                summary.final_queued,
            );
        }
        Err(e) => {
            eprintln!("error: serve loop failed: {e}");
            std::process::exit(1);
        }
    }
}

/// `fisql load [--addr A] [--sessions N] [--concurrency C] [--rounds R]
/// [--seed S] [--corpus-seed S] [--examples N] [--connect-retry-ms MS]
/// [--shutdown]`: the deterministic load generator.
///
/// Drives a running daemon with seeded session scripts and prints
/// sessions/s, rounds/s, latency percentiles, and the order-insensitive
/// transcript digest (stable across runs at any concurrency).
/// `--shutdown` sends a graceful `Shutdown` after the load completes.
///
/// `--addr` takes a comma-separated endpoint list (`primary,follower`):
/// each scripted client holds the whole list and, when its endpoint
/// dies mid-session, re-attaches by session id to the next one — riding
/// a failover without losing its place. The report then includes the
/// failover count, any lost rounds, and re-attach latency percentiles.
fn run_load_cli(args: &[String]) {
    let config = LoadConfig::from_args(args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let report = run_load(&config).unwrap_or_else(|e| {
        eprintln!("error: load run failed: {e}");
        std::process::exit(1);
    });
    println!(
        "fisql load: {} session(s) completed, {} rejected, {} failed in {:.1} s",
        report.sessions_completed,
        report.sessions_rejected,
        report.sessions_failed,
        report.wall_ms as f64 / 1000.0,
    );
    println!(
        "  {:.1} sessions/s, {:.1} rounds/s ({} question(s), {} round(s))",
        report.sessions_per_sec(),
        report.rounds_per_sec(),
        report.questions,
        report.rounds,
    );
    println!(
        "  latency p50 {} us, p99 {} us over {} request(s)",
        report.latency_percentile_us(50.0),
        report.latency_percentile_us(99.0),
        report.latencies_us.len(),
    );
    println!("  transcript digest {:#018x}", report.digest);
    if report.failovers > 0 || report.lost_rounds > 0 {
        println!(
            "  failover: {} re-attach(es), {} lost round(s), re-attach p50 {} us / p99 {} us",
            report.failovers,
            report.lost_rounds,
            report.failover_percentile_us(50.0),
            report.failover_percentile_us(99.0),
        );
    }
    if let Some(stats) = &report.stats {
        println!(
            "  daemon: {} opened / {} resumed / {} reaped / {} degraded, store gen {} \
             ({} op(s), {} compaction(s)), uptime {:.1} s",
            stats.sessions_opened,
            stats.sessions_resumed,
            stats.admission.reaped,
            stats.sessions_degraded,
            stats.store.generation,
            stats.store.ops,
            stats.store.compactions,
            stats.uptime_ms as f64 / 1000.0,
        );
        println!(
            "  replication: role {:?}, epoch {}, lag {} record(s), {} follower(s), \
             {} shipped, {} ack timeout(s), ack degraded {} ({} entry(ies))",
            stats.role,
            stats.epoch,
            stats.replication_lag_records,
            stats.repl_followers,
            stats.repl_records_shipped,
            stats.repl_ack_timeouts,
            if stats.repl_ack_degraded { "yes" } else { "no" },
            stats.repl_ack_degraded_entries,
        );
    }
    if report.sessions_failed > 0 {
        std::process::exit(1);
    }
}

/// `fisql --eval [--strategy S] [--workers N] [--fault-rate R]
/// [--retry-budget B] [--no-static-oracle] [--no-semantic-cache]
/// [--conformance-gate] [--journal PATH] [--resume]
/// [--case-deadline MS] [--fsync P]`: the
/// sharded correction evaluation on the bundled SPIDER-like and AEP-like
/// corpora. Flags parse and validate through [`EvalConfig`]; see its
/// docs for each knob's meaning.
fn run_eval(args: &[String]) {
    let config = EvalConfig::from_args(args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });

    let spider = build_spider(&SpiderConfig {
        n_databases: 12,
        n_examples: 96,
        seed: 0xC11,
    });
    let aep = build_aep(&AepConfig {
        n_examples: 60,
        seed: 0xC11 ^ 0xAE9,
    });
    let llm = SimLlm::new(LlmConfig::default());
    let user = SimUser::new(UserConfig::default());
    // The chaos stack: faults injected under the simulated model, retries
    // and breaker on top — the same stack `fisql serve` builds per
    // connection.
    let chaos = chaos_stack(&llm, config.fault_rate, config.retry_budget);

    for corpus in [&spider, &aep] {
        // Error collection runs the Assistant front end (SimLlm-specific);
        // the correction loop proper runs through the chaos stack.
        let collect = CorrectionRun::new(corpus, &llm, &user)
            .demos_k(3)
            .rounds(2)
            .workers(config.workers);
        let errors = collect.collect_errors();
        let cases = collect.annotate(&errors);
        // One journal file per corpus: both corpora share the --journal
        // prefix but must not share a fingerprinted case list.
        let journal_path = config
            .journal
            .as_ref()
            .map(|p| std::path::PathBuf::from(format!("{}.{}", p.display(), corpus.name)));
        let mut run = CorrectionRun::new(corpus, &chaos, &user)
            .strategy(config.strategy)
            .demos_k(3)
            .rounds(2)
            .workers(config.workers)
            .static_oracle(config.static_oracle)
            .semantic_cache(config.semantic_cache)
            .conformance_gate(config.conformance_gate)
            .case_deadline_ms(config.case_deadline_ms)
            .resume(config.resume)
            .fsync(config.fsync);
        if let Some(path) = &journal_path {
            run = run.journal(path);
        }
        let report = match run.try_run(&cases) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("error: run journal I/O failed: {e}");
                std::process::exit(1);
            }
        };
        let m = &report.metrics;
        println!(
            "{} [{}]: {} errors, {} annotated; corrected after r1/r2: {:.1}%/{:.1}%",
            corpus.name,
            config.strategy.name(),
            errors.len(),
            cases.len(),
            report.pct_after(1),
            report.pct_after(2),
        );
        println!(
            "  {} worker(s), {:.1} ms, {:.1} cases/s, {} engine executions, cache hit rate {:.0}%",
            m.workers,
            m.wall_ms,
            m.cases_per_sec,
            m.engine_executions,
            100.0 * m.cache_hit_rate(),
        );
        if config.static_oracle {
            println!(
                "  static oracle: {} execution(s) skipped",
                report.executions_skipped_static,
            );
        }
        if config.semantic_cache {
            println!(
                "  semantic cache: {} execution(s) skipped, hit rate {:.0}%",
                m.executions_skipped_cache,
                100.0 * m.semantic_cache_hit_rate(),
            );
        }
        if config.conformance_gate {
            println!(
                "  conformance: {} agreed / {} disagreed, {} re-prompt(s)",
                report.router_realized_agreements,
                report.router_realized_disagreements,
                report.conformance_retries,
            );
        }
        if let Some(path) = &journal_path {
            println!(
                "  journal: {} ({} policy){}",
                path.display(),
                config.fsync,
                if config.resume { ", resumed" } else { "" },
            );
        }
        if report.cases_crashed > 0 || report.cases_timed_out > 0 {
            println!(
                "  robustness: {} case(s) crashed, {} timed out",
                report.cases_crashed, report.cases_timed_out,
            );
        }
        if config.fault_rate > 0.0 {
            let r = &m.resilience;
            println!(
                "  faults: rate {:.0}%, {} attempts / {} calls, {} retries, {} breaker trips, \
                 {} rounds degraded in {} case(s)",
                100.0 * config.fault_rate,
                r.attempts,
                r.calls,
                r.retries,
                r.breaker_trips,
                report.degraded_rounds,
                report.cases_degraded,
            );
        }
    }
}
