//! # fisql — Feedback-Infused SQL generation
//!
//! A full Rust reproduction of *"FISQL: Enhancing Text-to-SQL Systems
//! with Rich Interactive Feedback"* (Menon et al., EDBT 2025): an
//! interactive human-in-the-loop NL2SQL correction pipeline, together
//! with every substrate it needs to run offline —
//!
//! - [`fisql_sqlkit`]: SQL lexer/parser/AST, span-tracked printer,
//!   structural diff, and clause-level edit engine;
//! - [`fisql_engine`]: an in-memory relational executor with SQLite-like
//!   semantics and the execution-match metric;
//! - [`fisql_spider`]: seeded SPIDER-like and AEP-like benchmark corpora;
//! - [`fisql_llm`]: the simulated LLM (prompts per the paper's Figures
//!   1/5/6, RAG retrieval, calibrated comprehension model);
//! - [`fisql_feedback`]: the simulated user/annotator;
//! - [`fisql_core`]: FISQL itself — Assistant, feedback interpretation,
//!   routing, highlighting, baselines, and the experiment drivers.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! substitution arguments, and `EXPERIMENTS.md` for paper-vs-measured
//! results.
//!
//! ```
//! use fisql::prelude::*;
//!
//! let mut db = Database::new("demo");
//! let mut t = Table::new("singer", vec![
//!     Column::new("name", DataType::Text),
//!     Column::new("age", DataType::Int),
//! ]);
//! t.push_row(vec!["Ann".into(), Value::Int(33)]);
//! db.add_table(t);
//! let rs = execute_sql(&db, "SELECT COUNT(*) FROM singer").unwrap();
//! assert_eq!(rs.scalar().unwrap(), &Value::Int(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fisql_core;
pub use fisql_engine;
pub use fisql_feedback;
pub use fisql_llm;
pub use fisql_spider;
pub use fisql_sqlkit;

/// The commonly-used surface of the whole workspace in one import.
pub mod prelude {
    pub use fisql_core::{
        explain_query, incorporate, interpret, reformulate, render_events, run_fingerprint,
        zero_shot_report, AnnotatedCase, Assistant, AssistantTurn, CaseOutcome, CaseVerdict,
        ConfigError, ConformanceReport, CorrectionReport, CorrectionRun, ErrorCase, EvalConfig,
        ExperimentConfig, FsyncPolicy, IncorporateContext, LoadConfig, RunJournal, RunMetrics,
        ServeClient, ServeConfig, Server, Session, SessionEvent, Strategy,
    };
    pub use fisql_engine::{
        execute_sql, results_match, Column, DataType, Database, ForeignKey, ResultSet, Table, Value,
    };
    pub use fisql_feedback::{Feedback, SimUser, UserConfig, UserView};
    pub use fisql_llm::{
        BackendError, BackendResult, Calibration, DemoStore, Demonstration, ExhaustedReason,
        FallibleLanguageModel, FaultConfig, FaultyBackend, GenMode, GenRequest, LanguageModel,
        LlmConfig, ResilienceConfig, ResilienceStats, Resilient, SimLlm,
    };
    pub use fisql_spider::{
        build_aep, build_spider, AepConfig, Corpus, Example, Hardness, SpiderConfig,
    };
    pub use fisql_sqlkit::{
        apply_edits, canon_fingerprint, canonicalize, canonically_equivalent, check_query,
        diff_queries, normalize_query, parse_query, print_query, provably_equivalent,
        render_report, repair_query, structurally_equal, DiagCode, Diagnostic, EditOp, OpClass,
        Query, SchemaInfo, Severity, Span,
    };
    pub use rand::SeedableRng;
}
