//! Offline stand-in for the `serde` crate, providing the API subset this
//! workspace uses: `#[derive(Serialize, Deserialize)]` on named structs
//! and enums (externally tagged), `serde::Serialize` bounds, and
//! `serde::de::DeserializeOwned` bounds.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `serde` to this crate. Instead of serde's visitor-based
//! zero-copy architecture, this stand-in round-trips every value through
//! a small self-describing [`Content`] tree; `serde_json` (also patched)
//! renders and parses that tree. Field order, externally-tagged enum
//! representation, and the `skip`/`default` attributes match real serde,
//! so the JSON produced is what the real stack would produce.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree: the intermediate representation between
/// typed Rust values and any serialized format.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer that does not fit `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence (arrays, tuples).
    Seq(Vec<Content>),
    /// A map with insertion-ordered string keys (structs, maps,
    /// externally-tagged enum variants).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&Vec<(String, Content)>> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up `key` in insertion-ordered map entries.
pub fn content_get<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A value that can be serialized (rendered to a [`Content`] tree).
pub trait Serialize {
    /// Converts `self` into the intermediate representation.
    fn to_content(&self) -> Content;
}

/// A value that can be deserialized (built from a [`Content`] tree).
pub trait Deserialize: Sized {
    /// Builds a value from the intermediate representation.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// Deserialization traits, mirroring `serde::de`.
pub mod de {
    /// A type deserializable without borrowing from the input, mirroring
    /// `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned: Sized + crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

// --------------------------------------------------------------------------
// Primitive impls
// --------------------------------------------------------------------------

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let n: i64 = match content {
                    Content::I64(n) => *n,
                    Content::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::new("integer out of range"))?,
                    _ => return Err(DeError::new(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
signed_impl!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                match i64::try_from(*self) {
                    Ok(n) => Content::I64(n),
                    Err(_) => Content::U64(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let n: u64 = match content {
                    Content::I64(n) => u64::try_from(*n)
                        .map_err(|_| DeError::new("negative integer for unsigned field"))?,
                    Content::U64(n) => *n,
                    _ => return Err(DeError::new(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
unsigned_impl!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(x) => Ok(*x),
            Content::I64(n) => Ok(*n as f64),
            Content::U64(n) => Ok(*n as f64),
            _ => Err(DeError::new("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|x| x as f32)
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::new("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(DeError::new("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

macro_rules! tuple_impl {
    ($len:expr => $($name:ident . $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::Seq(items) if items.len() == $len => {
                        Ok(($($name::from_content(&items[$idx])?,)+))
                    }
                    _ => Err(DeError::new("expected tuple sequence")),
                }
            }
        }
    };
}
tuple_impl!(2 => A.0, B.1);
tuple_impl!(3 => A.0, B.1, C.2);
tuple_impl!(4 => A.0, B.1, C.2, D.3);

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            _ => Err(DeError::new("expected map")),
        }
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}
impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}
