//! Test configuration, RNG, and failure type for the `proptest!` macro.

/// Property-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Config {
    /// A config running exactly `cases` cases (env var does not apply,
    /// matching real proptest's `with_cases`).
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    /// 256 cases, overridable via `PROPTEST_CASES` (matching real
    /// proptest's env-var handling for default configs).
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(256);
        Config { cases }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The deterministic RNG driving strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A deterministic RNG seeded from the test name, so each property
    /// explores its own fixed stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Widening-multiply mapping; bias is irrelevant for test-input
        // generation at these magnitudes.
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }
}
