//! A small regex-subset parser and generator backing string strategies
//! (`"[a-z]{1,4}"` used as a `Strategy<Value = String>`).
//!
//! Supported constructs — the ones appearing in this workspace's test
//! patterns: literal characters, `.`, escaped characters, `\PC`
//! (printable / non-control), character classes with ranges, negation,
//! and `&&[^...]` intersection-exclusion, alternation groups `(a|b)`,
//! and `{n}` / `{n,m}` / `?` / `*` / `+` repetition.

use crate::test_runner::TestRng;

/// One parsed regex construct.
#[derive(Debug, Clone)]
pub enum Node {
    /// A literal character.
    Lit(char),
    /// A set of characters to choose from uniformly.
    Class(Vec<char>),
    /// A parenthesized group.
    Group(Vec<Node>),
    /// Alternation between sequences.
    Alt(Vec<Vec<Node>>),
    /// Repetition of a node between `min` and `max` times.
    Rep(Box<Node>, u32, u32),
}

/// Printable ASCII plus a few multibyte scalars, standing in for the
/// `\PC` (non-control) category and `.`.
fn printable() -> Vec<char> {
    let mut set: Vec<char> = (0x20u8..=0x7e).map(char::from).collect();
    // A few non-ASCII printables so UTF-8 handling gets exercised.
    set.extend(['à', 'é', 'λ', '→', '字']);
    set
}

struct ClassSpec {
    negated: bool,
    chars: Vec<char>,
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl Parser<'_> {
    fn parse_alt(&mut self) -> Result<Vec<Node>, String> {
        let mut arms = vec![self.parse_seq()?];
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            arms.push(self.parse_seq()?);
        }
        if arms.len() == 1 {
            Ok(arms.pop().unwrap())
        } else {
            Ok(vec![Node::Alt(arms)])
        }
    }

    fn parse_seq(&mut self) -> Result<Vec<Node>, String> {
        let mut seq = Vec::new();
        loop {
            let node = match self.chars.peek() {
                None | Some(')' | '|') => break,
                Some('(') => {
                    self.chars.next();
                    let inner = self.parse_alt()?;
                    if self.chars.next() != Some(')') {
                        return Err("unclosed group".into());
                    }
                    Node::Group(inner)
                }
                Some('[') => {
                    self.chars.next();
                    Node::Class(self.parse_class()?)
                }
                Some('.') => {
                    self.chars.next();
                    Node::Class(printable())
                }
                Some('\\') => {
                    self.chars.next();
                    match self.chars.next() {
                        Some('P') => {
                            // `\PX`: negated one-letter Unicode category.
                            match self.chars.next() {
                                Some('C') => Node::Class(printable()),
                                other => return Err(format!("unsupported category \\P{other:?}")),
                            }
                        }
                        Some('n') => Node::Lit('\n'),
                        Some('t') => Node::Lit('\t'),
                        Some('r') => Node::Lit('\r'),
                        Some(c) => Node::Lit(c),
                        None => return Err("dangling backslash".into()),
                    }
                }
                Some(&c) => {
                    self.chars.next();
                    Node::Lit(c)
                }
            };
            seq.push(self.apply_quantifier(node)?);
        }
        Ok(seq)
    }

    fn apply_quantifier(&mut self, node: Node) -> Result<Node, String> {
        let (min, max) = match self.chars.peek() {
            Some('{') => {
                self.chars.next();
                let mut min_text = String::new();
                while self.chars.peek().is_some_and(char::is_ascii_digit) {
                    min_text.push(self.chars.next().unwrap());
                }
                let min: u32 = min_text.parse().map_err(|_| "bad repetition bound")?;
                let max = if self.chars.peek() == Some(&',') {
                    self.chars.next();
                    let mut max_text = String::new();
                    while self.chars.peek().is_some_and(char::is_ascii_digit) {
                        max_text.push(self.chars.next().unwrap());
                    }
                    if max_text.is_empty() {
                        min.saturating_mul(2).max(min + 8)
                    } else {
                        max_text.parse().map_err(|_| "bad repetition bound")?
                    }
                } else {
                    min
                };
                if self.chars.next() != Some('}') {
                    return Err("unclosed repetition".into());
                }
                (min, max)
            }
            Some('?') => {
                self.chars.next();
                (0, 1)
            }
            Some('*') => {
                self.chars.next();
                (0, 8)
            }
            Some('+') => {
                self.chars.next();
                (1, 8)
            }
            _ => return Ok(node),
        };
        Ok(Node::Rep(Box::new(node), min, max))
    }

    /// Parses a class body after the opening `[`, through the matching
    /// `]`, handling `&&[^...]` intersection-exclusion.
    fn parse_class(&mut self) -> Result<Vec<char>, String> {
        // Scan the raw class text first (nested brackets appear in the
        // intersection syntax).
        let mut raw = String::new();
        let mut depth = 0u32;
        loop {
            match self.chars.next() {
                None => return Err("unclosed character class".into()),
                Some('\\') => {
                    raw.push('\\');
                    raw.push(self.chars.next().ok_or("dangling backslash in class")?);
                }
                Some('[') => {
                    depth += 1;
                    raw.push('[');
                }
                Some(']') => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                    raw.push(']');
                }
                Some(c) => raw.push(c),
            }
        }

        let mut parts = raw.split("&&");
        let base = parse_class_part(parts.next().unwrap_or(""))?;
        let mut set = if base.negated {
            printable()
                .into_iter()
                .filter(|c| !base.chars.contains(c))
                .collect()
        } else {
            base.chars
        };
        for part in parts {
            let inner = part
                .strip_prefix('[')
                .and_then(|p| p.strip_suffix(']'))
                .unwrap_or(part);
            let spec = parse_class_part(inner)?;
            if spec.negated {
                set.retain(|c| !spec.chars.contains(c));
            } else {
                set.retain(|c| spec.chars.contains(c));
            }
        }
        set.sort_unstable();
        set.dedup();
        if set.is_empty() {
            return Err("empty character class".into());
        }
        Ok(set)
    }
}

/// Parses one `&&`-free class body (optionally `^`-negated) into its
/// character set.
fn parse_class_part(text: &str) -> Result<ClassSpec, String> {
    let (negated, body) = match text.strip_prefix('^') {
        Some(rest) => (true, rest),
        None => (false, text),
    };
    let mut chars = Vec::new();
    let mut it = body.chars().peekable();
    while let Some(c) = it.next() {
        let lo = if c == '\\' {
            match it.next().ok_or("dangling backslash in class")? {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            }
        } else {
            c
        };
        // A `-` between two chars forms a range; elsewhere it is literal.
        if it.peek() == Some(&'-') {
            let mut ahead = it.clone();
            ahead.next();
            if let Some(&hi) = ahead.peek() {
                if hi != ']' {
                    it.next();
                    let hi = it.next().unwrap();
                    if (lo as u32) > (hi as u32) {
                        return Err("inverted class range".into());
                    }
                    for code in (lo as u32)..=(hi as u32) {
                        if let Some(ch) = char::from_u32(code) {
                            chars.push(ch);
                        }
                    }
                    continue;
                }
            }
        }
        chars.push(lo);
    }
    Ok(ClassSpec { negated, chars })
}

/// Parses a regex pattern into its node sequence.
pub fn parse(pattern: &str) -> Result<Vec<Node>, String> {
    let mut parser = Parser {
        chars: pattern.chars().peekable(),
    };
    let nodes = parser.parse_alt()?;
    if parser.chars.next().is_some() {
        return Err("unbalanced `)`".into());
    }
    Ok(nodes)
}

/// Generates one string matching the parsed pattern.
pub fn generate(nodes: &[Node], rng: &mut TestRng) -> String {
    let mut out = String::new();
    gen_seq(nodes, rng, &mut out);
    out
}

fn gen_seq(nodes: &[Node], rng: &mut TestRng, out: &mut String) {
    for node in nodes {
        gen_node(node, rng, out);
    }
}

fn gen_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
        Node::Group(inner) => gen_seq(inner, rng, out),
        Node::Alt(arms) => gen_seq(&arms[rng.below(arms.len() as u64) as usize], rng, out),
        Node::Rep(inner, min, max) => {
            let n = min + rng.below(u64::from(max - min + 1)) as u32;
            for _ in 0..n {
                gen_node(inner, rng, out);
            }
        }
    }
}
