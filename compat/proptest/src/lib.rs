//! Offline stand-in for `proptest`, providing the API subset this
//! workspace uses: the `proptest!` / `prop_assert!` / `prop_assert_eq!`
//! / `prop_oneof!` macros, `Strategy` with `prop_map` / `prop_filter` /
//! `prop_recursive` / `boxed`, `Just`, `any::<T>()`, integer-range
//! strategies, tuple strategies, `collection::vec`, `option::of`, and
//! string strategies from a small regex subset.
//!
//! Differences from real proptest, none observable to the tests here:
//! no shrinking (failures report the failing input unminimized), a fixed
//! deterministic RNG (equivalent to proptest's deterministic-RNG config),
//! and regex support limited to the constructs the workspace's patterns
//! actually use (classes with ranges/negation/intersection, `.`, `\PC`,
//! alternation groups, and `{n,m}` repetition).

pub mod regex;
pub mod strategy;
pub mod test_runner;

/// Strategies for `Vec<T>`.
pub mod collection {
    use crate::strategy::{SizeBound, Strategy, VecStrategy};

    /// A `Vec` strategy with element strategy `element` and length
    /// sampled from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeBound>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Strategies for `Option<T>`.
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// An `Option` strategy: `None` about a quarter of the time,
    /// otherwise `Some` of the inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Types with a canonical strategy, mirroring `proptest::arbitrary`.
pub mod arbitrary {
    use crate::strategy::{AnyStrategy, Strategy};
    use crate::test_runner::TestRng;

    /// A type with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Samples an arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    macro_rules! arb_int {
        ($($t:ty => $m:ident),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.$m() as $t
                }
            }
        )*};
    }
    arb_int!(u8 => next_u64, u16 => next_u64, u32 => next_u64, u64 => next_u64,
             usize => next_u64, i8 => next_u64, i16 => next_u64, i32 => next_u64,
             i64 => next_u64, isize => next_u64);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The glob import every test file uses.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    /// Module alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, option};
    }
}

// --------------------------------------------------------------------------
// Macros
// --------------------------------------------------------------------------

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let cases = config.cases;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..cases {
                    $(let $pat = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {}/{} failed: {}", case + 1, cases, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: `{:?}`\n right: `{:?}`",
                format!($($fmt)*),
                left,
                right
            )));
        }
    }};
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Picks among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
