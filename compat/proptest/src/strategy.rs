//! The `Strategy` trait and combinators.

use crate::test_runner::TestRng;
use std::sync::Arc;

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `f`, resampling on rejection.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for
    /// the next-smaller depth and returns the composite level. `depth`
    /// levels are stacked on top of `self` as the leaf.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            current = recurse(current.clone()).boxed();
        }
        current
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_gen(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_gen(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.dyn_gen(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    pub(crate) inner: S,
    pub(crate) whence: String,
    pub(crate) f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.gen_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter: 1000 consecutive rejections ({})", self.whence);
    }
}

/// Weighted choice among strategies of a common value type; built by
/// `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof!: zero total weight");
        Union { arms, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(u64::from(self.total)) as u32;
        for (w, strat) in &self.arms {
            if pick < *w {
                return strat.gen_value(rng);
            }
            pick -= w;
        }
        unreachable!("prop_oneof!: weight bookkeeping error")
    }
}

/// `any::<T>()`'s strategy type.
pub struct AnyStrategy<T>(pub(crate) std::marker::PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(std::marker::PhantomData)
    }
}

// ---------------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident . $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

// ---------------------------------------------------------------------------
// Collections and Option
// ---------------------------------------------------------------------------

/// A sampled length bound for `collection::vec`.
#[derive(Debug, Clone, Copy)]
pub struct SizeBound {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<std::ops::Range<usize>> for SizeBound {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeBound {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeBound {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeBound {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeBound {
    fn from(n: usize) -> Self {
        SizeBound { min: n, max: n }
    }
}

/// See [`crate::collection::vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeBound,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// See [`crate::option::of`].
#[derive(Clone)]
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.gen_value(rng))
        }
    }
}

// ---------------------------------------------------------------------------
// Strings from regex patterns
// ---------------------------------------------------------------------------

impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let ast = crate::regex::parse(self)
            .unwrap_or_else(|e| panic!("unsupported regex strategy {self:?}: {e}"));
        crate::regex::generate(&ast, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let ast = crate::regex::parse(self)
            .unwrap_or_else(|e| panic!("unsupported regex strategy {self:?}: {e}"));
        crate::regex::generate(&ast, rng)
    }
}
