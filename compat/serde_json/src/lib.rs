//! Offline stand-in for `serde_json`, providing the API subset this
//! workspace uses: `to_string`, `to_vec`, `from_slice`, `from_str`,
//! `Value`, and the `json!` macro.
//!
//! Values round-trip through the patched `serde` crate's [`Content`]
//! tree. The emitted text matches real serde_json's compact format:
//! struct fields in declaration order, externally-tagged enums, floats
//! always carrying a decimal point, strings with standard JSON escapes.
//!
//! One deliberate divergence: `json!` objects preserve insertion order
//! rather than sorting keys the way serde_json's default `BTreeMap`
//! backend does. Every consumer in this workspace either parses the
//! output or compares it against output of the same binary, so key order
//! only needs to be deterministic, which insertion order is.

use serde::{Content, DeError, Serialize};

/// Errors from serialization or deserialization.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// `Result` alias matching serde_json.
pub type Result<T> = std::result::Result<T, Error>;

/// A JSON value, thinly wrapping the serde [`Content`] tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Value(pub Content);

impl Value {
    /// JSON `null`.
    #[allow(non_upper_case_globals)]
    pub const Null: Value = Value(Content::Null);

    /// Builds a boolean value.
    pub fn from_bool(b: bool) -> Value {
        Value(Content::Bool(b))
    }

    /// Builds an array value.
    pub fn array(items: Vec<Value>) -> Value {
        Value(Content::Seq(items.into_iter().map(|v| v.0).collect()))
    }

    /// Builds an object value with insertion-ordered keys.
    pub fn object(entries: Vec<(String, Value)>) -> Value {
        Value(Content::Map(
            entries.into_iter().map(|(k, v)| (k, v.0)).collect(),
        ))
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        self.0.clone()
    }
}

impl serde::Deserialize for Value {
    fn from_content(content: &Content) -> std::result::Result<Self, DeError> {
        Ok(Value(content.clone()))
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        write_content(&self.0, &mut out);
        f.write_str(&out)
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(Value(value.to_content()))
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out);
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: serde::de::DeserializeOwned>(text: &str) -> Result<T> {
    let content = Parser::new(text).parse_document()?;
    T::from_content(&content).map_err(Error::from)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let text =
        std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8 in JSON: {e}")))?;
    from_str(text)
}

// --------------------------------------------------------------------------
// Writer
// --------------------------------------------------------------------------

fn write_content(content: &Content, out: &mut String) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::F64(x) => {
            if x.is_finite() {
                let s = format!("{x}");
                out.push_str(&s);
                // ryu always keeps a fractional part; Rust's shortest
                // display drops ".0" — restore it for format parity.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                // serde_json writes non-finite floats as null.
                out.push_str("null");
            }
        }
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(k, out);
                out.push(':');
                write_content(v, out);
            }
            out.push('}');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn parse_document(&mut self) -> Result<Content> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected JSON value")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Content) -> Result<Content> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid keyword"))
        }
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.eat(b'{', "expected `{`")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected `:`")?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Content::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Content::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

// --------------------------------------------------------------------------
// json! macro
// --------------------------------------------------------------------------

/// Builds a [`Value`] from JSON-like syntax, mirroring `serde_json::json!`.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

/// Implementation detail of [`json!`]; the tt-muncher from serde_json.
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // Done with trailing comma.
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    // Done without trailing comma.
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    // Next element is `null`.
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    // Next element is `true`.
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    // Next element is `false`.
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    // Next element is an array.
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    // Next element is a map.
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    // Next element is an expression followed by comma.
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    // Last element is an expression with no trailing comma.
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    // Comma after the most recent element.
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // Done.
    (@object $object:ident () () ()) => {};
    // Insert the current entry followed by trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.push((($($key)+).into(), $value));
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Current entry followed by unexpected token (missing comma).
    (@object $object:ident [$($key:tt)+] ($value:expr) $unexpected:tt $($rest:tt)*) => {
        $crate::json_unexpected!($unexpected);
    };
    // Insert the last entry without trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.push((($($key)+).into(), $value));
    };
    // Next value is `null`.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    // Next value is `true`.
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    // Next value is `false`.
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    // Next value is an array.
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    // Next value is a map.
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    // Next value is an expression followed by comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    // Last value is an expression with no trailing comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Missing value for last entry.
    (@object $object:ident ($($key:tt)+) (:) $copy:tt) => {
        $crate::json_internal!();
    };
    // Missing colon and value.
    (@object $object:ident ($($key:tt)+) () $copy:tt) => {
        $crate::json_internal!();
    };
    // Munch a token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) $copy);
    };

    // ---- Entry points ----
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::from_bool(true)
    };
    (false) => {
        $crate::Value::from_bool(false)
    };
    ([]) => {
        $crate::Value::array(vec![])
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::object(vec![])
    };
    ({ $($tt:tt)+ }) => {
        {
            let mut object: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
                ::std::vec::Vec::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            $crate::Value::object(object)
        }
    };
    // Any Serialize expression.
    ($other:expr) => {
        $crate::to_value(&$other).expect("json!: serialization failed")
    };
}

/// Implementation detail of [`json!`]: reports a missing comma.
#[macro_export]
#[doc(hidden)]
macro_rules! json_unexpected {
    () => {};
}
