//! Offline stand-in for `serde_derive`: generates `serde::Serialize` /
//! `serde::Deserialize` impls for the shapes this workspace uses —
//! named-field structs and enums with unit / newtype / tuple / struct
//! variants, with the `#[serde(skip)]`, `#[serde(default)]`, and
//! `#[serde(default = "path")]` field attributes.
//!
//! `syn`/`quote` are unavailable offline, so the input is parsed directly
//! from the `proc_macro` token stream and the impl is emitted as source
//! text. Representation choices (field order, externally-tagged enums)
//! match real serde so the serialized form is identical.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    skip: bool,
    /// `None` = required; `Some(None)` = `Default::default()`;
    /// `Some(Some(path))` = call `path()`.
    default: Option<Option<String>>,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Input {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// --------------------------------------------------------------------------
// Parsing
// --------------------------------------------------------------------------

/// Consumes leading attributes (`#[...]`), returning any serde field
/// attributes found among them.
fn take_attrs(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                let Some(TokenTree::Group(g)) = tokens.next() else {
                    panic!("serde_derive: `#` not followed by a bracket group");
                };
                parse_attr_group(g.stream(), &mut attrs);
            }
            _ => return attrs,
        }
    }
}

/// Parses the inside of one `#[...]`; records serde(skip/default) args.
fn parse_attr_group(stream: TokenStream, attrs: &mut FieldAttrs) {
    let mut it = stream.into_iter();
    let Some(TokenTree::Ident(name)) = it.next() else {
        return;
    };
    if name.to_string() != "serde" {
        return;
    }
    let Some(TokenTree::Group(args)) = it.next() else {
        return;
    };
    let mut args = args.stream().into_iter().peekable();
    while let Some(tt) = args.next() {
        let TokenTree::Ident(arg) = tt else { continue };
        match arg.to_string().as_str() {
            "skip" | "skip_serializing" | "skip_deserializing" => attrs.skip = true,
            "default" => {
                if matches!(args.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    args.next();
                    let Some(TokenTree::Literal(lit)) = args.next() else {
                        panic!("serde_derive: expected string after `default =`");
                    };
                    let text = lit.to_string();
                    let path = text.trim_matches('"').to_string();
                    attrs.default = Some(Some(path));
                } else {
                    attrs.default = Some(None);
                }
            }
            other => panic!("serde_derive: unsupported serde attribute `{other}`"),
        }
    }
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

/// Skips a type (or any token run) up to a top-level `,`, tracking angle
/// brackets since `<`/`>` are plain puncts in the token stream.
fn skip_until_comma(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut depth = 0i32;
    while let Some(tt) = tokens.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                tokens.next();
                return;
            }
            _ => {}
        }
        tokens.next();
    }
}

/// Parses `{ field: Ty, ... }` contents into named fields.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let attrs = take_attrs(&mut tokens);
        skip_vis(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Ident(name)) => {
                match tokens.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
                }
                skip_until_comma(&mut tokens);
                fields.push(Field {
                    name: name.to_string(),
                    attrs,
                });
            }
            None => return fields,
            other => panic!("serde_derive: unexpected token in fields: {other:?}"),
        }
    }
}

/// Counts the top-level comma-separated types in a tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut saw_tokens = false;
    for tt in stream {
        match tt {
            TokenTree::Punct(ref p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(ref p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(ref p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1;
    }
    count
}

/// Parses enum variants from the brace group contents.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let _attrs = take_attrs(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Ident(name)) => {
                let shape = match tokens.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let n = count_tuple_fields(g.stream());
                        tokens.next();
                        VariantShape::Tuple(n)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream());
                        tokens.next();
                        VariantShape::Struct(fields)
                    }
                    _ => VariantShape::Unit,
                };
                // Skip an explicit discriminant, then the comma.
                if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    tokens.next();
                    skip_until_comma(&mut tokens);
                } else if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    tokens.next();
                }
                variants.push(Variant {
                    name: name.to_string(),
                    shape,
                });
            }
            None => return variants,
            other => panic!("serde_derive: unexpected token in enum body: {other:?}"),
        }
    }
}

/// Parses a full `struct`/`enum` item.
fn parse_input(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();
    let _ = take_attrs(&mut tokens);
    skip_vis(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported by the offline stand-in");
    }
    let Some(TokenTree::Group(body)) = tokens.next() else {
        panic!("serde_derive: expected `{{ ... }}` body on `{name}` (tuple structs unsupported)");
    };
    match kind.as_str() {
        "struct" => Input::Struct {
            name,
            fields: parse_named_fields(body.stream()),
        },
        "enum" => Input::Enum {
            name,
            variants: parse_variants(body.stream()),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

// --------------------------------------------------------------------------
// Code generation
// --------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let mut out = String::new();
    match input {
        Input::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                 let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = ::std::vec::Vec::new();\n"
            ));
            for f in fields {
                if f.attrs.skip {
                    continue;
                }
                let fname = &f.name;
                out.push_str(&format!(
                    "fields.push((\"{fname}\".to_string(), ::serde::Serialize::to_content(&self.{fname})));\n"
                ));
            }
            out.push_str("::serde::Content::Map(fields)\n}\n}\n");
        }
        Input::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                 match self {{\n"
            ));
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => out.push_str(&format!(
                        "{name}::{vname} => ::serde::Content::Str(\"{vname}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(1) => out.push_str(&format!(
                        "{name}::{vname}(f0) => ::serde::Content::Map(vec![(\"{vname}\".to_string(), ::serde::Serialize::to_content(f0))]),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        out.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Content::Map(vec![(\"{vname}\".to_string(), ::serde::Content::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.attrs.skip)
                            .map(|f| {
                                format!(
                                    "inner.push((\"{0}\".to_string(), ::serde::Serialize::to_content({0})));",
                                    f.name
                                )
                            })
                            .collect();
                        out.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                             let mut inner: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = ::std::vec::Vec::new();\n\
                             {}\n\
                             ::serde::Content::Map(vec![(\"{vname}\".to_string(), ::serde::Content::Map(inner))])\n\
                             }}\n",
                            binds.join(", "),
                            pushes.join("\n")
                        ));
                    }
                }
            }
            out.push_str("}\n}\n}\n");
        }
    }
    out
}

fn field_deser(owner: &str, f: &Field) -> String {
    let fname = &f.name;
    if f.attrs.skip {
        return format!("{fname}: ::std::default::Default::default(),\n");
    }
    let missing = match &f.attrs.default {
        None => format!(
            "return ::std::result::Result::Err(::serde::DeError::new(\"{owner}: missing field `{fname}`\"))"
        ),
        Some(None) => "::std::default::Default::default()".to_string(),
        Some(Some(path)) => format!("{path}()"),
    };
    format!(
        "{fname}: match ::serde::content_get(map, \"{fname}\") {{\n\
         ::std::option::Option::Some(v) => ::serde::Deserialize::from_content(v)?,\n\
         ::std::option::Option::None => {missing},\n\
         }},\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let mut out = String::new();
    match input {
        Input::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(content: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let map = match content {{\n\
                 ::serde::Content::Map(m) => m,\n\
                 _ => return ::std::result::Result::Err(::serde::DeError::new(\"{name}: expected map\")),\n\
                 }};\n\
                 ::std::result::Result::Ok({name} {{\n"
            ));
            for f in fields {
                out.push_str(&field_deser(name, f));
            }
            out.push_str("})\n}\n}\n");
        }
        Input::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    format!(
                        "\"{0}\" => ::std::result::Result::Ok({name}::{0}),\n",
                        v.name
                    )
                })
                .collect();
            let tagged: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.shape, VariantShape::Unit))
                .collect();
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(content: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match content {{\n"
            ));
            out.push_str(&format!(
                "::serde::Content::Str(s) => match s.as_str() {{\n\
                 {}\
                 _ => ::std::result::Result::Err(::serde::DeError::new(\"{name}: unknown variant\")),\n\
                 }},\n",
                unit_arms.join("")
            ));
            if !tagged.is_empty() {
                out.push_str(
                    "::serde::Content::Map(m) if m.len() == 1 => {\nlet (tag, body) = &m[0];\nmatch tag.as_str() {\n",
                );
                for v in &tagged {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => unreachable!(),
                        VariantShape::Tuple(1) => out.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_content(body)?)),\n"
                        )),
                        VariantShape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_content(&seq[{i}])?")
                                })
                                .collect();
                            out.push_str(&format!(
                                "\"{vname}\" => {{\n\
                                 let seq = match body {{\n\
                                 ::serde::Content::Seq(s) if s.len() == {n} => s,\n\
                                 _ => return ::std::result::Result::Err(::serde::DeError::new(\"{name}::{vname}: expected {n}-element sequence\")),\n\
                                 }};\n\
                                 ::std::result::Result::Ok({name}::{vname}({}))\n\
                                 }}\n",
                                items.join(", ")
                            ));
                        }
                        VariantShape::Struct(fields) => {
                            let mut body_fields = String::new();
                            let owner = format!("{name}::{vname}");
                            for f in fields {
                                body_fields.push_str(&field_deser(&owner, f));
                            }
                            out.push_str(&format!(
                                "\"{vname}\" => {{\n\
                                 let map = match body {{\n\
                                 ::serde::Content::Map(m) => m,\n\
                                 _ => return ::std::result::Result::Err(::serde::DeError::new(\"{name}::{vname}: expected map\")),\n\
                                 }};\n\
                                 ::std::result::Result::Ok({name}::{vname} {{\n{body_fields}}})\n\
                                 }}\n"
                            ));
                        }
                    }
                }
                out.push_str(&format!(
                    "_ => ::std::result::Result::Err(::serde::DeError::new(\"{name}: unknown variant\")),\n}}\n}}\n"
                ));
            }
            out.push_str(&format!(
                "_ => ::std::result::Result::Err(::serde::DeError::new(\"{name}: expected variant\")),\n}}\n}}\n}}\n"
            ));
        }
    }
    out
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}
