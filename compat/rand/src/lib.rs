//! Offline stand-in for the `rand` 0.8 crate, providing the exact API
//! subset this workspace uses: `StdRng`, `SeedableRng::{from_seed,
//! seed_from_u64}`, and `Rng::{gen, gen_bool, gen_range}`.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rand` to this crate. Behavioral compatibility with rand
//! 0.8.5 is a hard requirement — every sampled stream in the repo is
//! part of its determinism contract — so the implementation mirrors the
//! published algorithms bit for bit:
//!
//! * `StdRng` is ChaCha (12 rounds) with a 64-bit block counter, exactly
//!   as in `rand_chacha`'s `ChaCha12Rng`;
//! * `seed_from_u64` expands the seed with SplitMix64, as in
//!   `rand_core`'s default implementation;
//! * `gen_range` uses the widening-multiply rejection method of
//!   `UniformInt` (`sample_single_inclusive`);
//! * `gen_bool` uses the `Bernoulli` fixed-point comparison, including
//!   the draw-free `p == 1.0` special case;
//! * `gen::<f64>()` uses the 53-bit multiply construction of `Standard`.

pub mod rngs;

/// A random number generator core, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Seedable construction, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding with a PCG32 stream
    /// (bit-identical to `rand_core` 0.6's default implementation).
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6_364_136_223_846_793_005;
            const INC: u64 = 11_634_580_027_462_260_723;
            // Advance the state first (to get away from the input value,
            // in case it has low Hamming weight).
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let state = *state;
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            chunk.copy_from_slice(&pcg32(&mut state)[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

mod uniform {
    use super::RngCore;

    /// Widening multiply: returns `(hi, lo)` of `a * b`.
    #[inline]
    pub fn wmul64(a: u64, b: u64) -> (u64, u64) {
        let t = (a as u128) * (b as u128);
        ((t >> 64) as u64, t as u64)
    }

    #[inline]
    pub fn wmul32(a: u32, b: u32) -> (u32, u32) {
        let t = (a as u64) * (b as u64);
        ((t >> 32) as u32, t as u32)
    }

    /// One integer type's uniform sampling, rand 0.8.5's
    /// `sample_single_inclusive` algorithm.
    macro_rules! uniform_impl {
        ($ty:ty, $unsigned:ty, $u_large:ty, $gen:ident, $wmul:ident) => {
            impl SampleUniform for $ty {
                #[inline]
                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: $ty,
                    high: $ty,
                    rng: &mut R,
                ) -> $ty {
                    assert!(low <= high, "gen_range: low > high");
                    let range = (high as $unsigned)
                        .wrapping_sub(low as $unsigned)
                        .wrapping_add(1) as $u_large;
                    if range == 0 {
                        // The full integer range.
                        return $gen(rng) as $ty;
                    }
                    let zone = if (<$unsigned>::MAX as u64) <= (u16::MAX as u64) {
                        let unsigned_max = <$u_large>::MAX;
                        let ints_to_reject = (unsigned_max - range + 1) % range;
                        unsigned_max - ints_to_reject
                    } else {
                        (range << range.leading_zeros()).wrapping_sub(1)
                    };
                    loop {
                        let v: $u_large = $gen(rng);
                        let (hi, lo) = $wmul(v, range);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }

    #[inline]
    fn gen_u32<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
    #[inline]
    fn gen_u64<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }

    /// Types `gen_range` accepts.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Uniform sample from `[low, high]`.
        fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R)
            -> Self;
    }

    uniform_impl!(u8, u8, u32, gen_u32, wmul32);
    uniform_impl!(i8, u8, u32, gen_u32, wmul32);
    uniform_impl!(u16, u16, u32, gen_u32, wmul32);
    uniform_impl!(i16, u16, u32, gen_u32, wmul32);
    uniform_impl!(u32, u32, u32, gen_u32, wmul32);
    uniform_impl!(i32, u32, u32, gen_u32, wmul32);
    uniform_impl!(u64, u64, u64, gen_u64, wmul64);
    uniform_impl!(i64, u64, u64, gen_u64, wmul64);
    uniform_impl!(usize, usize, u64, gen_u64, wmul64);
    uniform_impl!(isize, usize, u64, gen_u64, wmul64);
}

pub use uniform::SampleUniform;

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    /// Whether the range contains no values.
    fn is_empty_range(&self) -> bool;
}

impl<T: SampleUniform + One> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        // Exclusive high: rand delegates to the inclusive sampler on
        // `high - 1`.
        T::sample_single_inclusive(self.start, self.end.sub_one(), rng)
    }
    fn is_empty_range(&self) -> bool {
        self.start >= self.end
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single_inclusive(*self.start(), *self.end(), rng)
    }
    fn is_empty_range(&self) -> bool {
        self.start() > self.end()
    }
}

/// Decrement helper for exclusive ranges.
pub trait One {
    /// `self - 1`.
    fn sub_one(self) -> Self;
}
macro_rules! one_impl {
    ($($t:ty),*) => {$(impl One for $t { fn sub_one(self) -> Self { self - 1 } })*};
}
one_impl!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

/// Values `gen()` can produce, mirroring `Standard`.
pub trait Standard: Sized {
    /// Sample a uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8 compares the *most* significant bit of a u32 (low
        // bits of weak generators can be patterned).
        (rng.next_u32() as i32) < 0
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53-bit multiply construction (rand 0.8 `Standard` for f64).
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / ((1u32 << 24) as f32))
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from `range`.
    fn gen_range<T, Ra>(&mut self, range: Ra) -> T
    where
        T: SampleUniform,
        Ra: SampleRange<T>,
        Self: Sized,
    {
        assert!(!range.is_empty_range(), "cannot sample empty range");
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` (rand 0.8 semantics,
    /// including the draw-free `p >= 1.0` fast path).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        if p >= 1.0 {
            return true;
        }
        // Fixed-point comparison: p_int = p * 2^64.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore> Rng for R {}

/// RNG implementations.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}
