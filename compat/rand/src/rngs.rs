//! RNG implementations: `StdRng` (ChaCha, 12 rounds), bit-compatible
//! with `rand_chacha`'s `ChaCha12Rng` as used by rand 0.8's `StdRng`.

use crate::{RngCore, SeedableRng};

/// ChaCha block function with a 64-bit counter in words 12–13 and the
/// stream id in words 14–15 (the `rand_chacha` layout).
fn chacha_block(key: &[u32; 8], counter: u64, stream: u64, rounds: usize, out: &mut [u32; 16]) {
    const C: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
    let mut x = [0u32; 16];
    x[..4].copy_from_slice(&C);
    x[4..12].copy_from_slice(key);
    x[12] = counter as u32;
    x[13] = (counter >> 32) as u32;
    x[14] = stream as u32;
    x[15] = (stream >> 32) as u32;
    let initial = x;

    #[inline(always)]
    fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(16);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(12);
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(8);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(7);
    }

    for _ in 0..rounds / 2 {
        // Column round.
        quarter(&mut x, 0, 4, 8, 12);
        quarter(&mut x, 1, 5, 9, 13);
        quarter(&mut x, 2, 6, 10, 14);
        quarter(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter(&mut x, 0, 5, 10, 15);
        quarter(&mut x, 1, 6, 11, 12);
        quarter(&mut x, 2, 7, 8, 13);
        quarter(&mut x, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = x[i].wrapping_add(initial[i]);
    }
}

/// The standard RNG: ChaCha with 12 rounds, exactly rand 0.8's `StdRng`.
#[derive(Debug, Clone)]
pub struct StdRng {
    key: [u32; 8],
    /// Block counter of the *next* block to generate.
    counter: u64,
    stream: u64,
    /// Current 16-word block.
    buf: [u32; 16],
    /// Next word index into `buf`; 16 means exhausted.
    index: usize,
}

impl StdRng {
    fn refill(&mut self) {
        let mut out = [0u32; 16];
        chacha_block(&self.key, self.counter, self.stream, 12, &mut out);
        self.counter = self.counter.wrapping_add(1);
        self.buf = out;
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        StdRng {
            key,
            counter: 0,
            stream: 0,
            buf: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // BlockRng pairing: low word first, high word second, crossing
        // a block boundary exactly as rand_core does.
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_word().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_across_clones() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn chacha20_rfc_vector() {
        // RFC 8439 §2.3.2 test vector (20 rounds, counter 1, 96-bit
        // nonce folded into our 64-bit stream layout does not apply;
        // instead verify the zero-key zero-nonce ChaCha20 first block
        // against the well-known reference output).
        let key = [0u32; 8];
        let mut out = [0u32; 16];
        chacha_block(&key, 0, 0, 20, &mut out);
        // First four words of the ChaCha20 keystream for all-zero
        // key/nonce (little-endian words of
        // 76b8e0ada0f13d90405d6ae55386bd28..., as produced by
        // `openssl enc -chacha20` with zero key/iv).
        assert_eq!(out[0].to_le_bytes(), [0x76, 0xb8, 0xe0, 0xad]);
        assert_eq!(out[1].to_le_bytes(), [0xa0, 0xf1, 0x3d, 0x90]);
        assert_eq!(out[2].to_le_bytes(), [0x40, 0x5d, 0x6a, 0xe5]);
        assert_eq!(out[3].to_le_bytes(), [0x53, 0x86, 0xbd, 0x28]);
    }

    #[test]
    fn gen_bool_edge_cases() {
        let mut r = StdRng::seed_from_u64(7);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
        let mut trues = 0;
        for _ in 0..1000 {
            if r.gen_bool(0.5) {
                trues += 1;
            }
        }
        assert!((300..700).contains(&trues));
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: usize = r.gen_range(0..10);
            assert!(x < 10);
            let y: i64 = r.gen_range(5..=7);
            assert!((5..=7).contains(&y));
        }
    }
}
