//! Offline stand-in for `criterion`, providing the API subset this
//! workspace's benches use: `Criterion::{bench_function,
//! benchmark_group}`, groups with `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, `Bencher::iter`, `BenchmarkId`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! It runs each closure a small fixed number of iterations and reports
//! wall-clock medians — enough to exercise every bench target end to end
//! (the repo's benches double as smoke tests with embedded assertions),
//! without crates.io access for the real statistics machinery.

use std::time::Instant;

/// Opaque-value hint, mirroring `criterion::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier with an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to bench closures; runs the measured routine.
pub struct Bencher {
    iters: u32,
    last_ns: u128,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.last_ns = start.elapsed().as_nanos() / u128::from(self.iters.max(1));
    }
}

/// The benchmark driver.
pub struct Criterion {
    iters: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 3 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.iters, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iters: self.iters,
            _parent: std::marker::PhantomData,
        }
    }

    /// Returns a configured driver (config knobs are accepted and
    /// ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u32,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the statistical sample count (accepted and ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted and ignored).
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.iters, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let iters = self.iters;
        run_one(&format!("{}/{}", self.name, id), iters, &mut |b| {
            f(b, input);
        });
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one(id: &str, iters: u32, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { iters, last_ns: 0 };
    f(&mut bencher);
    println!(
        "bench {id}: ~{} ns/iter (offline stand-in)",
        bencher.last_ns
    );
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
