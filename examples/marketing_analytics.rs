//! Closed-domain analytics over the AEP-like marketing database.
//!
//! Demonstrates the substrate the paper's motivating scenario runs on:
//! the marketing schema (segments, destinations, activations, journeys),
//! the jargon problem ("which destinations is the segment activated
//! to?"), and the engine answering the *correctly interpreted* SQL with
//! joins through the mapping table.
//!
//! Run: `cargo run --example marketing_analytics`

use fisql::prelude::*;
use rand::rngs::StdRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let db = fisql_spider::build_aep_database(&mut rng);
    println!("schema:\n{}", db.schema_text());

    // The paper's §1 example: "which destinations is the 'ABC' segment
    // activated to?" — `activated` means the segment↔destination mapping
    // is non-empty, which requires joining through the map table.
    let activated = execute_sql(
        &db,
        "SELECT DISTINCT d.destination_name \
         FROM hkg_dim_segment s \
         JOIN hkg_map_segment_destination m ON s.segment_id = m.segment_id \
         JOIN hkg_dim_destination d ON m.destination_id = d.destination_id \
         WHERE s.segment_name LIKE 'ABC%'",
    )
    .unwrap();
    println!("destinations the ABC segment is activated to:\n{activated}");

    // A naive (mis)interpretation — `activated` read as a status flag —
    // produces a different (wrong) answer, motivating the feedback loop.
    let naive = execute_sql(
        &db,
        "SELECT destination_name FROM hkg_dim_destination WHERE status = 'active'",
    )
    .unwrap();
    println!(
        "naive reading (`status = 'active'`): {} rows — a different answer entirely\n",
        naive.len()
    );

    // Operational insights of the kind the Assistant serves (Figure 3):
    for (label, sql) in [
        (
            "audiences created in January 2024",
            "SELECT COUNT(*) FROM hkg_dim_segment \
             WHERE createdTime >= '2024-01-01' AND createdTime < '2024-02-01'",
        ),
        (
            "largest audiences by profile count",
            "SELECT segment_name, profile_count FROM hkg_dim_segment \
             WHERE profile_count IS NOT NULL ORDER BY profile_count DESC LIMIT 3",
        ),
        (
            "activations per destination platform",
            "SELECT d.platform_type, COUNT(*) FROM hkg_map_segment_destination m \
             JOIN hkg_dim_destination d ON m.destination_id = d.destination_id \
             GROUP BY d.platform_type ORDER BY COUNT(*) DESC",
        ),
        (
            "datasets with no successful queries",
            "SELECT dataset_name FROM hkg_dim_dataset WHERE dataset_id NOT IN \
             (SELECT dataset_id FROM hkg_fact_query_log WHERE status = 'success')",
        ),
    ] {
        let rs = execute_sql(&db, sql).unwrap();
        println!("== {label} ==\n{rs}");
    }

    // And the Assistant's explanation surface for the join query.
    let q = parse_query(
        "SELECT d.destination_name FROM hkg_dim_segment s \
         JOIN hkg_map_segment_destination m ON s.segment_id = m.segment_id \
         JOIN hkg_dim_destination d ON m.destination_id = d.destination_id \
         WHERE s.segment_name LIKE 'ABC%'",
    )
    .unwrap();
    println!("how the Assistant explains it:\n{}", explain_query(&q));
}
