//! Quickstart: the FISQL pipeline in five minutes.
//!
//! Builds a tiny database, asks a question through the Assistant, gives
//! natural-language feedback, and shows the corrected SQL — the paper's
//! core loop, end to end.
//!
//! Run: `cargo run --example quickstart`

use fisql::prelude::*;

fn main() {
    // 1. A database. The engine is in-memory; rows are plain values.
    let mut db = Database::new("music");
    let mut singer = Table::new(
        "singer",
        vec![
            Column::new("singer_id", DataType::Int),
            Column::new("name", DataType::Text),
            Column::new("song_name", DataType::Text),
            Column::new("song_release_year", DataType::Int),
            Column::new("age", DataType::Int),
        ],
    );
    singer.primary_key = Some(0);
    for (id, name, song, year, age) in [
        (1, "Joe Sharp", "You", 1992, 52),
        (2, "Timbaland", "Dangerous", 2008, 32),
        (3, "Tribal King", "Facilement", 2016, 25),
    ] {
        singer.push_row(vec![
            Value::Int(id),
            name.into(),
            song.into(),
            Value::Int(year),
            Value::Int(age),
        ]);
    }
    db.add_table(singer);

    // 2. Execute SQL directly against the engine.
    let rs = execute_sql(&db, "SELECT name FROM singer WHERE age < 40").unwrap();
    println!("Young singers:\n{rs}");

    // 3. The paper's Figure 7 walkthrough: the model answered with the
    //    singer's name where the user wanted the song's name.
    let predicted = parse_query(
        "SELECT name, song_release_year FROM singer \
         WHERE age = (SELECT MIN(age) FROM singer)",
    )
    .unwrap();
    let gold = parse_query(
        "SELECT song_name, song_release_year FROM singer \
         WHERE age = (SELECT MIN(age) FROM singer)",
    )
    .unwrap();

    let wrong = execute_sql(
        &db,
        "SELECT name, song_release_year FROM singer \
         WHERE age = (SELECT MIN(age) FROM singer)",
    )
    .unwrap();
    println!("What the user saw (wrong column):\n{wrong}");

    // 4. The user's feedback, interpreted against the previous query.
    let feedback = "Provide song name instead of singer name";
    let normalized = normalize_query(&predicted);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let interp = interpret(
        feedback,
        &normalized,
        &db,
        Some(OpClass::Edit),
        None,
        &mut rng,
    );
    println!(
        "Interpreted `{feedback}` as: {}",
        interp
            .edits
            .iter()
            .map(|e| e.describe())
            .collect::<Vec<_>>()
            .join("; ")
    );

    // 5. Apply the edit and verify the correction by execution match.
    let fixed = apply_edits(&normalized, &interp.edits).unwrap();
    println!("Revised SQL: {}", print_query(&fixed));
    assert!(structurally_equal(&fixed, &gold));

    let a = fisql::fisql_engine::execute(&db, &fixed).unwrap();
    let b = fisql::fisql_engine::execute(&db, &gold).unwrap();
    assert!(results_match(&a, &b));
    println!("\nCorrected result:\n{a}");
    println!("Execution match with the intended query: ✓");
}
