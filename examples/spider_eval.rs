//! Evaluating an NL2SQL system on the SPIDER-like benchmark.
//!
//! Shows the evaluation harness as a downstream user would adopt it:
//! build the corpus, plug in a "model" (here the simulated LLM at two
//! demonstration budgets), and read execution-accuracy reports with
//! hardness breakdowns.
//!
//! Run: `cargo run --release --example spider_eval`

use fisql::prelude::*;
use fisql_spider::evaluate;

fn main() {
    let corpus = build_spider(&SpiderConfig {
        n_databases: 40,
        n_examples: 250,
        seed: 7,
    });
    println!(
        "corpus: {} databases, {} examples",
        corpus.databases.len(),
        corpus.examples.len()
    );
    let (e, m, h, x) = corpus.hardness_mix();
    println!("hardness mix: easy {e} / medium {m} / hard {h} / extra {x}\n");

    let llm = SimLlm::new(LlmConfig::default());

    for demos in [0usize, 3, 5] {
        let assistant = fisql_core::Assistant::for_corpus(&corpus, llm.clone(), demos);
        let predictions: Vec<(usize, Query)> = corpus
            .examples
            .iter()
            .enumerate()
            .map(|(i, ex)| (i, assistant.answer(corpus.database(ex), ex, 0).query))
            .collect();
        let report = evaluate(
            &corpus,
            predictions.iter().map(|(i, q)| (&corpus.examples[*i], q)),
        );
        println!("--- {demos}-shot ---");
        println!("{}", report.render());
    }

    // Gold predictions score 100% — the harness's own sanity check.
    let gold_report = evaluate(&corpus, corpus.examples.iter().map(|e| (e, &e.gold)));
    assert_eq!(gold_report.correct, gold_report.total);
    println!(
        "gold sanity check: {}/{} ✓",
        gold_report.correct, gold_report.total
    );
}
