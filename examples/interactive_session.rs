//! The paper's Figure 4 walkthrough as a live chat session.
//!
//! Reproduces, turn by turn, the conversation in the paper: the user asks
//! "how many audiences were created in January?", the Assistant
//! misresolves the implicit year to 2023, the user replies "we are in
//! 2024", and FISQL performs the precise Edit-type revision of Figure 5.
//!
//! Run: `cargo run --example interactive_session`

use fisql::prelude::*;
use fisql_core::Assistant as CoreAssistant;

fn main() {
    // The AEP-like corpus seeds its first example with the Figure 4
    // flagship question.
    let corpus = build_aep(&AepConfig {
        n_examples: 5,
        seed: 44,
    });
    let mut example = corpus.examples[0].clone();
    println!("Database: {}\n", corpus.databases[0]);

    // Force the paper's exact failure: keep only the implicit-year
    // channel and make it certain to fire, like GPT-3.5 defaulting to its
    // training-data present.
    example
        .channels
        .retain(|wc| wc.channel.kind() == "year-default");
    let llm = SimLlm::new(LlmConfig {
        seed: 9,
        calibration: Calibration {
            base_fire_rate: 10.0,
            max_fire_prob: 1.0,
            router_noise: 0.0,
            edit_apply_with_routing: 1.0,
            ..Default::default()
        },
    });
    let assistant = CoreAssistant {
        llm: llm.clone(),
        store: DemoStore::new(vec![]),
        demos_k: 0,
    };

    let mut session = Session::new(
        &corpus.databases[0],
        assistant,
        Strategy::Fisql {
            routing: true,
            highlighting: false,
        },
    );

    // Turn 1: the question.
    let first = session.ask(&example);
    assert!(first.sql_text.contains("2023"), "expected the 2023 default");

    // Turn 2: the feedback of Figure 4.
    let revised = session.give_feedback(&llm, &example, "we are in 2024", None);
    assert!(
        structurally_equal(&revised.query, &example.gold),
        "feedback failed to fix the query"
    );

    println!("{}", session.render_transcript());
    println!("--- FISQL corrected the query exactly as in the paper's Figure 5 ---");
    println!("final SQL: {}", revised.sql_text);
}
