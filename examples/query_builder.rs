//! Incremental query building (the paper's §5 future work): start from a
//! simple question and layer plain-language refinements until the query
//! does what you want — with undo.
//!
//! Run: `cargo run --example query_builder`

use fisql::prelude::*;
use fisql_core::refine::QueryBuilder;
use rand::rngs::StdRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let db = fisql_spider::build_aep_database(&mut rng);

    let mut builder = QueryBuilder::from_sql(&db, "SELECT segment_name FROM hkg_dim_segment")
        .expect("seed query parses");
    println!("start:   {}", builder.sql());

    for step in [
        "only include rows where status is 'active'",
        "also show the profile count",
        "order the profile count in descending order",
        "only show the top 5",
    ] {
        builder.refine(step).expect("refinement applies");
        println!("+ `{step}`\n  -> {}", builder.sql());
    }

    println!("\nresult:\n{}", builder.run().expect("query executes"));

    // Changed your mind? Undo pops the last step.
    builder.undo();
    println!("after undo: {}", builder.sql());

    // Uninterpretable refinements fail loudly instead of guessing.
    let err = builder.refine("make it fancier").unwrap_err();
    println!("rejected: {err}");

    println!("\n{} steps recorded:", builder.history().len());
    for (i, step) in builder.history().iter().enumerate() {
        println!(
            "  {}. `{}` => {}",
            i + 1,
            step.text,
            step.edits
                .iter()
                .map(|e| e.describe())
                .collect::<Vec<_>>()
                .join("; ")
        );
    }
}
