//! EXPLAIN-style plan rendering.
//!
//! The engine is an interpreter, but the operator structure it will
//! follow for a query is fully determined up front — including whether a
//! join takes the hash fast path or the nested loop. [`explain`] renders
//! that plan as an indented operator tree, the way production engines
//! answer `EXPLAIN`:
//!
//! ```text
//! Limit 3
//! └─ Sort [COUNT(*) DESC]
//!    └─ Aggregate group=[country] having=COUNT(*) > 2
//!       └─ Filter age > 30
//!          └─ HashJoin singer.singer_id = concert.singer_id
//!             ├─ Scan singer (~6 rows)
//!             └─ Scan concert (~6 rows)
//! ```

use crate::schema::Database;
use fisql_sqlkit::ast::*;
use fisql_sqlkit::print_expr;

/// Renders the operator tree the executor will follow for `query`.
pub fn explain(db: &Database, query: &Query) -> String {
    let mut lines: Vec<String> = Vec::new();
    plan_query(db, query, &mut lines);
    render_tree(&lines)
}

/// One plan node per line with an explicit depth prefix (`\u{1}` per
/// level), converted to box-drawing at render time.
fn push(lines: &mut Vec<String>, depth: usize, text: String) {
    lines.push(format!("{}{}", "\u{1}".repeat(depth), text));
}

fn plan_query(db: &Database, q: &Query, lines: &mut Vec<String>) {
    let mut depth = 0;
    if let Some(l) = &q.limit {
        let mut s = format!("Limit {}", l.count);
        if let Some(off) = l.offset {
            s.push_str(&format!(" offset {off}"));
        }
        push(lines, depth, s);
        depth += 1;
    }
    if !q.order_by.is_empty() {
        let keys: Vec<String> = q
            .order_by
            .iter()
            .map(|o| {
                format!(
                    "{} {}",
                    print_expr(&o.expr),
                    if o.desc { "DESC" } else { "ASC" }
                )
            })
            .collect();
        push(lines, depth, format!("Sort [{}]", keys.join(", ")));
        depth += 1;
    }
    if !q.compound.is_empty() {
        let ops: Vec<&str> = q.compound.iter().map(|(op, _)| op.as_str()).collect();
        push(lines, depth, format!("SetOp [{}]", ops.join(", ")));
        depth += 1;
        plan_core(db, &q.core, depth, lines);
        for (_, core) in &q.compound {
            plan_core(db, core, depth, lines);
        }
        return;
    }
    plan_core(db, &q.core, depth, lines);
}

fn plan_core(db: &Database, core: &SelectCore, mut depth: usize, lines: &mut Vec<String>) {
    // Projection / aggregation.
    let has_agg = core.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
        _ => false,
    }) || !core.group_by.is_empty();
    if core.distinct {
        push(lines, depth, "Distinct".to_string());
        depth += 1;
    }
    if has_agg {
        let groups: Vec<String> = core.group_by.iter().map(print_expr).collect();
        let mut s = format!("Aggregate group=[{}]", groups.join(", "));
        if let Some(h) = &core.having {
            s.push_str(&format!(" having={}", print_expr(h)));
        }
        push(lines, depth, s);
        depth += 1;
    }
    let items: Vec<String> = core
        .items
        .iter()
        .map(|i| match i {
            SelectItem::Wildcard => "*".to_string(),
            SelectItem::QualifiedWildcard(t) => format!("{t}.*"),
            SelectItem::Expr { expr, .. } => print_expr(expr),
        })
        .collect();
    push(lines, depth, format!("Project [{}]", items.join(", ")));
    depth += 1;
    if let Some(w) = &core.where_clause {
        push(lines, depth, format!("Filter {}", print_expr(w)));
        depth += 1;
    }
    match &core.from {
        None => push(lines, depth, "Values (1 row)".to_string()),
        Some(from) => plan_from(db, from, depth, lines),
    }
}

fn plan_from(db: &Database, from: &FromClause, depth: usize, lines: &mut Vec<String>) {
    // Joins nest left-deep: the last join is the outermost operator.
    fn go(db: &Database, from: &FromClause, upto: usize, depth: usize, lines: &mut Vec<String>) {
        if upto == 0 {
            plan_factor(db, &from.base, depth, lines);
            return;
        }
        let join = &from.joins[upto - 1];
        let strategy = join_strategy(join);
        let on = join
            .constraint
            .as_ref()
            .map(|c| format!(" on {}", print_expr(c)))
            .unwrap_or_default();
        push(lines, depth, format!("{strategy}{on}"));
        go(db, from, upto - 1, depth + 1, lines);
        plan_factor(db, &join.factor, depth + 1, lines);
    }
    go(db, from, from.joins.len(), depth, lines);
}

fn plan_factor(db: &Database, f: &TableFactor, depth: usize, lines: &mut Vec<String>) {
    match f {
        TableFactor::Table { name, alias } => {
            let rows = db
                .table(name)
                .map(|t| format!(" (~{} rows)", t.rows.len()))
                .unwrap_or_else(|| " (missing!)".to_string());
            let a = alias
                .as_ref()
                .map(|a| format!(" AS {a}"))
                .unwrap_or_default();
            push(lines, depth, format!("Scan {name}{a}{rows}"));
        }
        TableFactor::Derived { subquery, alias } => {
            push(lines, depth, format!("Subquery AS {alias}"));
            // Indent the subquery's plan under this node.
            let mut sub = Vec::new();
            plan_query(db, subquery, &mut sub);
            for line in sub {
                lines.push(format!("{}{}", "\u{1}".repeat(depth + 1), line));
            }
        }
    }
}

/// Which join algorithm the executor will pick (mirrors
/// `exec::equi_join_columns`: a column-equality constraint whose sides
/// split across the join — when both sides are qualified, exactly one
/// must name the joined factor).
fn join_strategy(join: &Join) -> &'static str {
    let equi = match &join.constraint {
        Some(Expr::Binary {
            left,
            op: BinOp::Eq,
            right,
        }) => match (left.as_ref(), right.as_ref()) {
            (Expr::Column(a), Expr::Column(b)) => {
                let joined = join.factor.binding_name();
                match (&a.table, &b.table) {
                    (Some(ta), Some(tb)) => {
                        ta.eq_ignore_ascii_case(joined) != tb.eq_ignore_ascii_case(joined)
                    }
                    // Unqualified sides cannot be checked without the
                    // schema; assume the fast path like the executor will
                    // try to.
                    _ => true,
                }
            }
            _ => false,
        },
        _ => false,
    };
    match (join.kind, equi) {
        (JoinKind::Cross, _) => "CrossJoin",
        (JoinKind::Inner, true) => "HashJoin",
        (JoinKind::Inner, false) => "NestedLoopJoin",
        (JoinKind::Left, true) => "HashJoin (left)",
        (JoinKind::Left, false) => "NestedLoopJoin (left)",
        (JoinKind::Right, true) => "HashJoin (right)",
        (JoinKind::Right, false) => "NestedLoopJoin (right)",
    }
}

/// Converts depth-prefixed lines into a box-drawing tree.
fn render_tree(lines: &[String]) -> String {
    let mut out = String::new();
    for line in lines {
        let depth = line.chars().take_while(|c| *c == '\u{1}').count();
        let text = line.trim_start_matches('\u{1}');
        if depth == 0 {
            out.push_str(text);
        } else {
            out.push_str(&"   ".repeat(depth - 1));
            out.push_str("└─ ");
            out.push_str(text);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::load_script;
    use fisql_sqlkit::parse_query;

    fn db() -> Database {
        load_script(
            "x",
            "CREATE TABLE singer (singer_id INT PRIMARY KEY, name TEXT, age INT, country TEXT);
             CREATE TABLE concert (concert_id INT PRIMARY KEY, singer_id INT REFERENCES singer, year INT);
             INSERT INTO singer VALUES (1, 'a', 30, 'FR'), (2, 'b', 40, 'US');
             INSERT INTO concert VALUES (1, 1, 2014);",
        )
        .unwrap()
    }

    fn plan(sql: &str) -> String {
        explain(&db(), &parse_query(sql).unwrap())
    }

    #[test]
    fn simple_scan_plan() {
        let p = plan("SELECT name FROM singer WHERE age > 30");
        assert!(p.contains("Project [name]"), "{p}");
        assert!(p.contains("Filter age > 30"), "{p}");
        assert!(p.contains("Scan singer (~2 rows)"), "{p}");
    }

    #[test]
    fn hash_join_is_recognized() {
        let p = plan("SELECT * FROM singer JOIN concert ON singer.singer_id = concert.singer_id");
        assert!(
            p.contains("HashJoin on singer.singer_id = concert.singer_id"),
            "{p}"
        );
        assert!(p.contains("Scan concert"), "{p}");
    }

    #[test]
    fn non_equi_join_is_nested_loop() {
        let p = plan("SELECT * FROM singer JOIN concert ON singer.age > concert.year");
        assert!(p.contains("NestedLoopJoin"), "{p}");
    }

    #[test]
    fn same_side_equality_is_not_a_hash_join() {
        // Both columns resolve on the left side: the executor cannot use
        // the hash path, and EXPLAIN must not claim it.
        let p = plan("SELECT * FROM singer JOIN concert ON singer.age = singer.singer_id");
        assert!(p.contains("NestedLoopJoin"), "{p}");
    }

    #[test]
    fn full_stack_plan_order() {
        let p = plan(
            "SELECT country, COUNT(*) FROM singer WHERE age > 20 \
             GROUP BY country HAVING COUNT(*) > 1 ORDER BY country ASC LIMIT 3",
        );
        let order = ["Limit 3", "Sort", "Aggregate", "Project", "Filter", "Scan"];
        let mut last = 0;
        for op in order {
            let pos = p
                .find(op)
                .unwrap_or_else(|| panic!("{op} missing in:\n{p}"));
            assert!(pos >= last, "{op} out of order in:\n{p}");
            last = pos;
        }
    }

    #[test]
    fn set_op_plan() {
        let p = plan("SELECT name FROM singer UNION SELECT name FROM singer");
        assert!(p.contains("SetOp [UNION]"), "{p}");
        assert_eq!(p.matches("Scan singer").count(), 2, "{p}");
    }

    #[test]
    fn derived_table_plan() {
        let p = plan("SELECT d.n FROM (SELECT name AS n FROM singer) AS d");
        assert!(p.contains("Subquery AS d"), "{p}");
        assert!(p.contains("Project [name]"), "{p}");
    }

    #[test]
    fn missing_table_is_flagged() {
        let p = plan("SELECT * FROM ghost");
        assert!(p.contains("Scan ghost (missing!)"), "{p}");
    }
}
