//! Volcano-style query execution over in-memory tables.
//!
//! The executor follows SQLite's (lenient) semantics where they matter to
//! the SPIDER benchmark, because the official SPIDER evaluator executes
//! against SQLite:
//!
//! - integer division truncates; division by zero yields NULL;
//! - `LIKE` is ASCII case-insensitive;
//! - scalar subqueries take the first row, NULL when empty;
//! - bare columns in aggregate queries evaluate on the group's first row;
//! - comparisons across type classes follow the type ordering
//!   (bool < numeric < text) instead of raising.
//!
//! Joins use a hash-join fast path when the ON constraint is a simple
//! column equality, falling back to a nested loop otherwise.

use crate::error::{ExecError, ExecResult};
use crate::result::{row_key, ResultSet};
use crate::schema::Database;
use crate::value::Value;
use fisql_sqlkit::ast::*;
use fisql_sqlkit::print_expr;
use std::cell::{Cell, RefCell};
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::time::Instant;

/// Resource budgets for one statement execution — guard rails for
/// running model-generated SQL inside an interactive loop, where a
/// runaway cross join must not hang the session.
///
/// `max_rows` bounds the rows *materialized* across the whole statement
/// (scans, join outputs, projections — intermediate results count, not
/// just the final result). `deadline_ms` bounds wall-clock time, checked
/// at every materialization step and periodically inside join loops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecLimits {
    /// Maximum rows materialized; `None` = unbounded.
    pub max_rows: Option<u64>,
    /// Wall-clock deadline in milliseconds; `None` = unbounded.
    pub deadline_ms: Option<u64>,
}

impl ExecLimits {
    /// No budgets — the behaviour of plain [`execute`].
    pub const UNLIMITED: ExecLimits = ExecLimits {
        max_rows: None,
        deadline_ms: None,
    };

    /// The default guard for interactive use: generous enough for every
    /// benchmark query, tight enough to stop a runaway cross join.
    pub fn interactive() -> ExecLimits {
        ExecLimits {
            max_rows: Some(1_000_000),
            deadline_ms: Some(2_000),
        }
    }
}

thread_local! {
    /// This thread's execution pulse (see [`set_exec_pulse`]).
    static EXEC_PULSE: RefCell<Option<Box<dyn Fn() -> bool>>> = const { RefCell::new(None) };
}

/// Installs (or, with `None`, clears) this thread's *execution pulse* —
/// an external cancellation callback polled during the executor's
/// strided budget checks. When the pulse returns `true`, the in-flight
/// statement aborts with a `"watchdog"` [`ExecError::BudgetExceeded`].
///
/// The evaluation runner's stall watchdog uses this to cut short engine
/// executions of cases that have exhausted their per-case deadline,
/// independently of any per-statement [`ExecLimits`] (in particular, it
/// fires even for statements running with `deadline_ms: None`).
pub fn set_exec_pulse(pulse: Option<Box<dyn Fn() -> bool>>) {
    EXEC_PULSE.with(|p| *p.borrow_mut() = pulse);
}

/// Polls this thread's execution pulse, if one is installed.
fn pulse_expired() -> bool {
    EXEC_PULSE.with(|p| p.borrow().as_ref().is_some_and(|pulse| pulse()))
}

/// Executes `query` against `db`.
pub fn execute(db: &Database, query: &Query) -> ExecResult<ResultSet> {
    execute_with_limits(db, query, ExecLimits::UNLIMITED)
}

/// Executes `query` against `db` under the given resource budgets,
/// failing with [`ExecError::BudgetExceeded`] when one trips.
pub fn execute_with_limits(
    db: &Database,
    query: &Query,
    limits: ExecLimits,
) -> ExecResult<ResultSet> {
    Executor {
        db,
        subquery_cache: RefCell::new(HashMap::new()),
        limits,
        rows_charged: Cell::new(0),
        started: Instant::now(),
    }
    .query(query, None)
}

/// Parses and executes SQL text in one step.
pub fn execute_sql(db: &Database, sql: &str) -> Result<ResultSet, String> {
    let q = fisql_sqlkit::parse_query(sql).map_err(|e| e.to_string())?;
    execute(db, &q).map_err(|e| e.to_string())
}

// ---------------------------------------------------------------------------
// Internal representation
// ---------------------------------------------------------------------------

/// One named relation bound in a FROM clause.
#[derive(Debug, Clone)]
struct Binding {
    /// Binding name (alias or table name).
    name: String,
    /// Column names, in storage order.
    columns: Vec<String>,
    /// Offset of this binding's first column in the combined row.
    offset: usize,
}

/// A materialized intermediate relation.
#[derive(Debug, Clone)]
struct Relation {
    bindings: Vec<Binding>,
    width: usize,
    rows: Vec<Vec<Value>>,
}

impl Relation {
    fn resolve(&self, col: &ColumnRef) -> ExecResult<Option<usize>> {
        match &col.table {
            Some(t) => {
                let Some(b) = self
                    .bindings
                    .iter()
                    .find(|b| b.name.eq_ignore_ascii_case(t))
                else {
                    return Ok(None);
                };
                match b
                    .columns
                    .iter()
                    .position(|c| c.eq_ignore_ascii_case(&col.column))
                {
                    Some(i) => Ok(Some(b.offset + i)),
                    None => Ok(None),
                }
            }
            None => {
                let mut found = None;
                for b in &self.bindings {
                    if let Some(i) = b
                        .columns
                        .iter()
                        .position(|c| c.eq_ignore_ascii_case(&col.column))
                    {
                        if found.is_some() {
                            return Err(ExecError::AmbiguousColumn {
                                name: col.column.clone(),
                            });
                        }
                        found = Some(b.offset + i);
                    }
                }
                Ok(found)
            }
        }
    }

    #[allow(dead_code)]
    fn all_column_names(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.width);
        for b in &self.bindings {
            out.extend(b.columns.iter().cloned());
        }
        out
    }
}

/// Evaluation scope: a row within a relation, chained to any outer scopes
/// for correlated subqueries.
#[derive(Clone, Copy)]
struct Scope<'a> {
    rel: &'a Relation,
    row: &'a [Value],
    outer: Option<&'a Scope<'a>>,
}

impl Scope<'_> {
    fn lookup(&self, col: &ColumnRef) -> ExecResult<Value> {
        if let Some(idx) = self.rel.resolve(col)? {
            return Ok(self.row[idx].clone());
        }
        match self.outer {
            Some(outer) => outer.lookup(col),
            None => Err(ExecError::UnknownColumn {
                name: col.to_string(),
            }),
        }
    }
}

/// Group scope: a set of rows sharing GROUP BY keys.
struct GroupScope<'a> {
    rel: &'a Relation,
    rows: &'a [&'a Vec<Value>],
    outer: Option<&'a Scope<'a>>,
}

struct Executor<'a> {
    db: &'a Database,
    /// Memoized results of *uncorrelated* subqueries, keyed by rendered
    /// text, for the lifetime of one statement execution. Without this,
    /// `WHERE age = (SELECT MIN(age) FROM singer)` re-runs the inner
    /// query once per outer row.
    subquery_cache: RefCell<HashMap<String, Rc<ResultSet>>>,
    /// Resource budgets for this statement.
    limits: ExecLimits,
    /// Rows materialized so far (statement-wide, across subqueries).
    rows_charged: Cell<u64>,
    /// When the statement started, for the wall-clock deadline.
    started: Instant,
}

impl Executor<'_> {
    /// Charges `n` materialized rows against the budgets. The row check
    /// runs on every charge; the (costlier) clock read runs only when
    /// the running total crosses a 1024-row boundary, so per-row charges
    /// in join loops stay cheap.
    fn charge_rows(&self, n: usize) -> ExecResult<()> {
        let before = self.rows_charged.get();
        let total = before.saturating_add(n as u64);
        self.rows_charged.set(total);
        if let Some(limit) = self.limits.max_rows {
            if total > limit {
                return Err(ExecError::BudgetExceeded {
                    resource: "rows",
                    limit,
                });
            }
        }
        if total >> 10 != before >> 10 {
            self.check_deadline()?;
        }
        Ok(())
    }

    /// Checks the wall-clock deadline and the thread's execution pulse
    /// (called at materialization points and periodically inside join
    /// loops). The pulse check runs even when `deadline_ms` is `None`,
    /// so an external watchdog can cancel otherwise-unbounded
    /// statements.
    fn check_deadline(&self) -> ExecResult<()> {
        if let Some(limit) = self.limits.deadline_ms {
            if self.started.elapsed().as_millis() as u64 > limit {
                return Err(ExecError::BudgetExceeded {
                    resource: "time",
                    limit,
                });
            }
        }
        if pulse_expired() {
            return Err(ExecError::BudgetExceeded {
                resource: "watchdog",
                limit: 0,
            });
        }
        Ok(())
    }
    // -- query / set-op level ------------------------------------------------

    fn query(&self, q: &Query, outer: Option<&Scope<'_>>) -> ExecResult<ResultSet> {
        if q.compound.is_empty() {
            return self.core_full(&q.core, &q.order_by, q.limit, outer);
        }
        let mut acc = self.core_full(&q.core, &[], None, outer)?;
        for (op, core) in &q.compound {
            let rhs = self.core_full(core, &[], None, outer)?;
            acc = combine(acc, rhs, *op)?;
        }
        if !q.order_by.is_empty() {
            apply_output_order(&mut acc, &q.order_by)?;
            acc.ordered = true;
        }
        apply_limit(&mut acc, q.limit);
        Ok(acc)
    }

    /// Executes one select core, applying the (possibly empty) trailing
    /// ORDER BY/LIMIT in the pre-projection scope so sort keys may
    /// reference non-projected columns.
    fn core_full(
        &self,
        core: &SelectCore,
        order_by: &[OrderItem],
        limit: Option<LimitClause>,
        outer: Option<&Scope<'_>>,
    ) -> ExecResult<ResultSet> {
        let rel = match &core.from {
            Some(from) => self.from_clause(from, outer)?,
            None => Relation {
                bindings: Vec::new(),
                width: 0,
                rows: vec![vec![]],
            },
        };

        // WHERE filter.
        let mut kept: Vec<&Vec<Value>> = Vec::with_capacity(rel.rows.len());
        if let Some(w) = &core.where_clause {
            if w.contains_aggregate() {
                return Err(ExecError::TypeError {
                    message: "aggregate function in WHERE clause".into(),
                });
            }
            for row in &rel.rows {
                let scope = Scope {
                    rel: &rel,
                    row,
                    outer,
                };
                if truthy(&self.eval(&scope, w)?) {
                    kept.push(row);
                }
            }
        } else {
            kept.extend(rel.rows.iter());
        }

        let aggregate_mode = !core.group_by.is_empty()
            || core.items.iter().any(|i| match i {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                _ => false,
            })
            || core
                .having
                .as_ref()
                .is_some_and(|h| h.contains_aggregate() || !core.group_by.is_empty());

        let (columns, mut produced) = if aggregate_mode {
            self.project_groups(core, &rel, &kept, order_by, outer)?
        } else {
            self.project_rows(core, &rel, &kept, order_by, outer)?
        };

        // DISTINCT before ORDER BY (keys ride along with their rows).
        if core.distinct {
            let mut seen: HashSet<String> = HashSet::with_capacity(produced.len());
            produced.retain(|(row, _)| seen.insert(row_key(row)));
        }

        // Sort by the precomputed keys.
        if !order_by.is_empty() {
            let descs: Vec<bool> = order_by.iter().map(|o| o.desc).collect();
            produced.sort_by(|(_, ka), (_, kb)| {
                for (i, (a, b)) in ka.iter().zip(kb.iter()).enumerate() {
                    let ord = a.total_cmp(b);
                    let ord = if descs[i] { ord.reverse() } else { ord };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
        }

        let mut rs = ResultSet {
            columns,
            rows: produced.into_iter().map(|(r, _)| r).collect(),
            ordered: !order_by.is_empty(),
        };
        apply_limit(&mut rs, limit);
        Ok(rs)
    }

    // -- FROM clause ---------------------------------------------------------

    #[allow(clippy::wrong_self_convention)]
    fn from_clause(&self, from: &FromClause, outer: Option<&Scope<'_>>) -> ExecResult<Relation> {
        let mut rel = self.factor(&from.base, outer)?;
        for join in &from.joins {
            let right = self.factor(&join.factor, outer)?;
            // Reject duplicate binding names.
            for b in &right.bindings {
                if rel
                    .bindings
                    .iter()
                    .any(|x| x.name.eq_ignore_ascii_case(&b.name))
                {
                    return Err(ExecError::DuplicateBinding {
                        name: b.name.clone(),
                    });
                }
            }
            rel = self.join(rel, right, join, outer)?;
        }
        Ok(rel)
    }

    fn factor(&self, f: &TableFactor, outer: Option<&Scope<'_>>) -> ExecResult<Relation> {
        match f {
            TableFactor::Table { name, alias } => {
                let table = self
                    .db
                    .table(name)
                    .ok_or_else(|| ExecError::UnknownTable { name: name.clone() })?;
                self.charge_rows(table.rows.len())?;
                Ok(Relation {
                    bindings: vec![Binding {
                        name: alias.clone().unwrap_or_else(|| table.name.clone()),
                        columns: table.columns.iter().map(|c| c.name.clone()).collect(),
                        offset: 0,
                    }],
                    width: table.columns.len(),
                    rows: table.rows.clone(),
                })
            }
            TableFactor::Derived { subquery, alias } => {
                let rs = self.query(subquery, outer)?;
                self.charge_rows(rs.rows.len())?;
                Ok(Relation {
                    bindings: vec![Binding {
                        name: alias.clone(),
                        columns: rs.columns.clone(),
                        offset: 0,
                    }],
                    width: rs.columns.len(),
                    rows: rs.rows,
                })
            }
        }
    }

    fn join(
        &self,
        left: Relation,
        right: Relation,
        join: &Join,
        outer: Option<&Scope<'_>>,
    ) -> ExecResult<Relation> {
        let mut bindings = left.bindings.clone();
        for b in &right.bindings {
            bindings.push(Binding {
                name: b.name.clone(),
                columns: b.columns.clone(),
                offset: b.offset + left.width,
            });
        }
        let combined = Relation {
            bindings,
            width: left.width + right.width,
            rows: Vec::new(),
        };

        // Hash-join fast path: `ON a.x = b.y` with one side resolving in
        // `left` and the other in `right`.
        let hash_cols = match (&join.kind, &join.constraint) {
            (JoinKind::Inner | JoinKind::Left | JoinKind::Right, Some(on)) => {
                equi_join_columns(on, &left, &right)
            }
            _ => None,
        };

        let mut rows: Vec<Vec<Value>> = Vec::new();
        match hash_cols {
            Some((li, ri)) => {
                let mut index: HashMap<String, Vec<usize>> =
                    HashMap::with_capacity(right.rows.len());
                for (j, r) in right.rows.iter().enumerate() {
                    if !r[ri].is_null() {
                        index
                            .entry(row_key(std::slice::from_ref(&r[ri])))
                            .or_default()
                            .push(j);
                    }
                }
                let mut right_matched = vec![false; right.rows.len()];
                for l in &left.rows {
                    let mut matched = false;
                    if !l[li].is_null() {
                        if let Some(js) = index.get(&row_key(std::slice::from_ref(&l[li]))) {
                            for &j in js {
                                let mut row = l.clone();
                                row.extend(right.rows[j].iter().cloned());
                                self.charge_rows(1)?;
                                rows.push(row);
                                matched = true;
                                right_matched[j] = true;
                            }
                        }
                    }
                    if !matched && join.kind == JoinKind::Left {
                        let mut row = l.clone();
                        row.extend(std::iter::repeat_n(Value::Null, right.width));
                        self.charge_rows(1)?;
                        rows.push(row);
                    }
                }
                if join.kind == JoinKind::Right {
                    for (j, m) in right_matched.iter().enumerate() {
                        if !m {
                            let mut row: Vec<Value> =
                                std::iter::repeat_n(Value::Null, left.width).collect();
                            row.extend(right.rows[j].iter().cloned());
                            self.charge_rows(1)?;
                            rows.push(row);
                        }
                    }
                }
            }
            None => {
                // Nested loop. A highly selective constraint can spin
                // here for a long time without materializing anything,
                // so the deadline is also checked per outer row.
                let mut right_matched = vec![false; right.rows.len()];
                for l in &left.rows {
                    self.check_deadline()?;
                    let mut matched = false;
                    for (j, r) in right.rows.iter().enumerate() {
                        let mut row = l.clone();
                        row.extend(r.iter().cloned());
                        let keep = match &join.constraint {
                            Some(on) => {
                                let scope = Scope {
                                    rel: &combined,
                                    row: &row,
                                    outer,
                                };
                                truthy(&self.eval(&scope, on)?)
                            }
                            None => true,
                        };
                        if keep {
                            self.charge_rows(1)?;
                            rows.push(row);
                            matched = true;
                            right_matched[j] = true;
                        }
                    }
                    if !matched && join.kind == JoinKind::Left {
                        let mut row = l.clone();
                        row.extend(std::iter::repeat_n(Value::Null, right.width));
                        self.charge_rows(1)?;
                        rows.push(row);
                    }
                }
                if join.kind == JoinKind::Right {
                    for (j, m) in right_matched.iter().enumerate() {
                        if !m {
                            let mut row: Vec<Value> =
                                std::iter::repeat_n(Value::Null, left.width).collect();
                            row.extend(right.rows[j].iter().cloned());
                            self.charge_rows(1)?;
                            rows.push(row);
                        }
                    }
                }
            }
        }
        Ok(Relation { rows, ..combined })
    }

    // -- projection ----------------------------------------------------------

    /// Row-mode projection: one output row per input row, plus sort keys.
    #[allow(clippy::type_complexity)]
    fn project_rows(
        &self,
        core: &SelectCore,
        rel: &Relation,
        kept: &[&Vec<Value>],
        order_by: &[OrderItem],
        outer: Option<&Scope<'_>>,
    ) -> ExecResult<(Vec<String>, Vec<(Vec<Value>, Vec<Value>)>)> {
        let plan = self.projection_plan(core, rel)?;
        let mut out = Vec::with_capacity(kept.len());
        for row in kept {
            let scope = Scope { rel, row, outer };
            let mut values = Vec::with_capacity(plan.outputs.len());
            for output in &plan.outputs {
                match output {
                    Output::Column(idx) => values.push(row[*idx].clone()),
                    Output::Expr(e) => values.push(self.eval(&scope, e)?),
                }
            }
            let keys = self.order_keys(order_by, &plan, &values, |e| self.eval(&scope, e))?;
            out.push((values, keys));
        }
        Ok((plan.names, out))
    }

    /// Aggregate-mode projection: group rows, filter by HAVING, project
    /// one row per group.
    #[allow(clippy::type_complexity)]
    fn project_groups(
        &self,
        core: &SelectCore,
        rel: &Relation,
        kept: &[&Vec<Value>],
        order_by: &[OrderItem],
        outer: Option<&Scope<'_>>,
    ) -> ExecResult<(Vec<String>, Vec<(Vec<Value>, Vec<Value>)>)> {
        let plan = self.projection_plan(core, rel)?;
        // Group rows by GROUP BY key values.
        let mut groups: Vec<Vec<&Vec<Value>>> = Vec::new();
        if core.group_by.is_empty() {
            groups.push(kept.to_vec());
        } else {
            let mut index: HashMap<String, usize> = HashMap::new();
            for row in kept {
                let scope = Scope { rel, row, outer };
                let mut key_vals = Vec::with_capacity(core.group_by.len());
                for g in &core.group_by {
                    key_vals.push(self.eval(&scope, g)?);
                }
                let key = row_key(&key_vals);
                match index.get(&key) {
                    Some(&gi) => groups[gi].push(row),
                    None => {
                        index.insert(key, groups.len());
                        groups.push(vec![row]);
                    }
                }
            }
        }

        let mut out = Vec::with_capacity(groups.len());
        for group in &groups {
            let gscope = GroupScope {
                rel,
                rows: group,
                outer,
            };
            if let Some(h) = &core.having {
                if !truthy(&self.eval_group(&gscope, h)?) {
                    continue;
                }
            }
            let mut values = Vec::with_capacity(plan.outputs.len());
            for output in &plan.outputs {
                match output {
                    Output::Column(idx) => {
                        values.push(match group.first() {
                            Some(row) => row[*idx].clone(),
                            None => Value::Null,
                        });
                    }
                    Output::Expr(e) => values.push(self.eval_group(&gscope, e)?),
                }
            }
            let keys =
                self.order_keys(order_by, &plan, &values, |e| self.eval_group(&gscope, e))?;
            out.push((values, keys));
        }
        Ok((plan.names, out))
    }

    /// Computes sort keys for one output unit. Keys resolve, in priority
    /// order: positional references (`ORDER BY 1`), select-list aliases or
    /// output names, then arbitrary expressions in the source scope.
    fn order_keys(
        &self,
        order_by: &[OrderItem],
        plan: &ProjectionPlan,
        values: &[Value],
        mut eval: impl FnMut(&Expr) -> ExecResult<Value>,
    ) -> ExecResult<Vec<Value>> {
        let mut keys = Vec::with_capacity(order_by.len());
        for item in order_by {
            // Positional.
            if let Expr::Literal(Literal::Number(n)) = &item.expr {
                let idx = *n as usize;
                if idx >= 1 && idx <= values.len() {
                    keys.push(values[idx - 1].clone());
                    continue;
                }
            }
            // Alias / output-name / identical-expression reference.
            if let Some(i) = plan.output_position(&item.expr) {
                keys.push(values[i].clone());
                continue;
            }
            keys.push(eval(&item.expr)?);
        }
        Ok(keys)
    }

    fn projection_plan(&self, core: &SelectCore, rel: &Relation) -> ExecResult<ProjectionPlan> {
        let mut names = Vec::new();
        let mut outputs = Vec::new();
        let mut exprs: Vec<Option<Expr>> = Vec::new();
        for item in &core.items {
            match item {
                SelectItem::Wildcard => {
                    if rel.bindings.is_empty() {
                        return Err(ExecError::MisplacedWildcard);
                    }
                    for b in &rel.bindings {
                        for (i, c) in b.columns.iter().enumerate() {
                            names.push(c.clone());
                            outputs.push(Output::Column(b.offset + i));
                            exprs.push(Some(Expr::qcol(b.name.clone(), c.clone())));
                        }
                    }
                }
                SelectItem::QualifiedWildcard(t) => {
                    let b = rel
                        .bindings
                        .iter()
                        .find(|b| b.name.eq_ignore_ascii_case(t))
                        .ok_or_else(|| ExecError::UnknownTable { name: t.clone() })?;
                    for (i, c) in b.columns.iter().enumerate() {
                        names.push(c.clone());
                        outputs.push(Output::Column(b.offset + i));
                        exprs.push(Some(Expr::qcol(b.name.clone(), c.clone())));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let name = alias.clone().unwrap_or_else(|| default_name(expr));
                    names.push(name);
                    outputs.push(Output::Expr(expr.clone()));
                    exprs.push(Some(expr.clone()));
                }
            }
        }
        Ok(ProjectionPlan {
            names,
            outputs,
            exprs,
            aliases: core
                .items
                .iter()
                .map(|i| match i {
                    SelectItem::Expr { alias: Some(a), .. } => Some(a.clone()),
                    _ => None,
                })
                .collect(),
        })
    }

    /// Executes a subquery, memoizing uncorrelated ones.
    ///
    /// The subquery is first attempted *without* the enclosing scope; if
    /// it only fails with an unknown column, it must be correlated, so it
    /// re-runs with the scope chained (and is not cached).
    fn subquery(&self, q: &Query, scope: &Scope<'_>) -> ExecResult<Rc<ResultSet>> {
        let key = fisql_sqlkit::print_query(q);
        if let Some(hit) = self.subquery_cache.borrow().get(&key) {
            return Ok(Rc::clone(hit));
        }
        match self.query(q, None) {
            Ok(rs) => {
                let rc = Rc::new(rs);
                self.subquery_cache.borrow_mut().insert(key, Rc::clone(&rc));
                Ok(rc)
            }
            Err(ExecError::UnknownColumn { .. }) => {
                // Correlated: evaluate in the enclosing scope, per row.
                self.query(q, Some(scope)).map(Rc::new)
            }
            Err(other) => Err(other),
        }
    }

    // -- expression evaluation (row scope) ------------------------------------

    fn eval(&self, scope: &Scope<'_>, e: &Expr) -> ExecResult<Value> {
        match e {
            Expr::Column(c) => scope.lookup(c),
            Expr::Literal(l) => Ok(literal_value(l)),
            Expr::Wildcard => Err(ExecError::MisplacedWildcard),
            Expr::Unary { op, expr } => {
                let v = self.eval(scope, expr)?;
                Ok(match op {
                    UnaryOp::Neg => match v {
                        Value::Null => Value::Null,
                        Value::Int(n) => Value::Int(-n),
                        Value::Float(x) => Value::Float(-x),
                        _ => Value::Null,
                    },
                    UnaryOp::Not => match to_bool(&v) {
                        Some(b) => Value::Bool(!b),
                        None => Value::Null,
                    },
                })
            }
            Expr::Binary { left, op, right } => self.eval_binary(scope, left, *op, right),
            Expr::Call {
                func,
                distinct,
                args,
            } => {
                if func.is_aggregate() {
                    return Err(ExecError::TypeError {
                        message: format!("aggregate {func} not allowed in row context"),
                    });
                }
                let _ = distinct;
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(scope, a)?);
                }
                scalar_function(*func, &vals)
            }
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                let op_val = match operand {
                    Some(op) => Some(self.eval(scope, op)?),
                    None => None,
                };
                for (when, then) in branches {
                    let hit = match &op_val {
                        Some(v) => {
                            let w = self.eval(scope, when)?;
                            v.sql_eq(&w) == Some(true)
                        }
                        None => truthy(&self.eval(scope, when)?),
                    };
                    if hit {
                        return self.eval(scope, then);
                    }
                }
                match else_branch {
                    Some(e) => self.eval(scope, e),
                    None => Ok(Value::Null),
                }
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = self.eval(scope, expr)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let w = self.eval(scope, item)?;
                    match v.sql_eq(&w) {
                        Some(true) => {
                            return Ok(Value::Bool(!negated));
                        }
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            Expr::InSubquery {
                expr,
                subquery,
                negated,
            } => {
                let v = self.eval(scope, expr)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let rs = self.subquery(subquery, scope)?;
                if rs.columns.len() != 1 {
                    return Err(ExecError::SubqueryArity {
                        columns: rs.columns.len(),
                    });
                }
                let mut saw_null = false;
                for row in &rs.rows {
                    match v.sql_eq(&row[0]) {
                        Some(true) => return Ok(Value::Bool(!negated)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = self.eval(scope, expr)?;
                let lo = self.eval(scope, low)?;
                let hi = self.eval(scope, high)?;
                let ge = cmp3(&v, &lo).map(|o| o != Ordering::Less);
                let le = cmp3(&v, &hi).map(|o| o != Ordering::Greater);
                Ok(match and3(ge, le) {
                    Some(b) => Value::Bool(b != *negated),
                    None => Value::Null,
                })
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = self.eval(scope, expr)?;
                let p = self.eval(scope, pattern)?;
                match (&v, &p) {
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    (Value::Text(s), Value::Text(pat)) => {
                        Ok(Value::Bool(like_match(s, pat) != *negated))
                    }
                    _ => Ok(Value::Bool(*negated)),
                }
            }
            Expr::IsNull { expr, negated } => {
                let v = self.eval(scope, expr)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::Exists { subquery, negated } => {
                let rs = self.subquery(subquery, scope)?;
                Ok(Value::Bool(rs.rows.is_empty() == *negated))
            }
            Expr::Subquery(q) => {
                let rs = self.subquery(q, scope)?;
                if rs.columns.len() != 1 {
                    return Err(ExecError::SubqueryArity {
                        columns: rs.columns.len(),
                    });
                }
                Ok(rs.rows.first().map(|r| r[0].clone()).unwrap_or(Value::Null))
            }
        }
    }

    fn eval_binary(
        &self,
        scope: &Scope<'_>,
        left: &Expr,
        op: BinOp,
        right: &Expr,
    ) -> ExecResult<Value> {
        match op {
            BinOp::And => {
                let l = to_bool(&self.eval(scope, left)?);
                if l == Some(false) {
                    return Ok(Value::Bool(false));
                }
                let r = to_bool(&self.eval(scope, right)?);
                Ok(match and3(l, r) {
                    Some(b) => Value::Bool(b),
                    None => Value::Null,
                })
            }
            BinOp::Or => {
                let l = to_bool(&self.eval(scope, left)?);
                if l == Some(true) {
                    return Ok(Value::Bool(true));
                }
                let r = to_bool(&self.eval(scope, right)?);
                Ok(match or3(l, r) {
                    Some(b) => Value::Bool(b),
                    None => Value::Null,
                })
            }
            _ => {
                let l = self.eval(scope, left)?;
                let r = self.eval(scope, right)?;
                if op.is_comparison() {
                    return Ok(match cmp3(&l, &r) {
                        None => Value::Null,
                        Some(ord) => Value::Bool(match op {
                            BinOp::Eq => ord == Ordering::Equal,
                            BinOp::NotEq => ord != Ordering::Equal,
                            BinOp::Lt => ord == Ordering::Less,
                            BinOp::LtEq => ord != Ordering::Greater,
                            BinOp::Gt => ord == Ordering::Greater,
                            BinOp::GtEq => ord != Ordering::Less,
                            _ => unreachable!("comparison op"),
                        }),
                    });
                }
                Ok(arith(l, op, r))
            }
        }
    }

    // -- expression evaluation (group scope) ----------------------------------

    fn eval_group(&self, g: &GroupScope<'_>, e: &Expr) -> ExecResult<Value> {
        match e {
            Expr::Call {
                func,
                distinct,
                args,
            } if func.is_aggregate() => self.eval_aggregate(g, *func, *distinct, args),
            Expr::Column(_) => self.eval_on_first_row(g, e),
            Expr::Literal(l) => Ok(literal_value(l)),
            Expr::Unary { op, expr } => {
                let v = self.eval_group(g, expr)?;
                match op {
                    UnaryOp::Neg => Ok(match v {
                        Value::Null => Value::Null,
                        Value::Int(n) => Value::Int(-n),
                        Value::Float(x) => Value::Float(-x),
                        _ => Value::Null,
                    }),
                    UnaryOp::Not => Ok(match to_bool(&v) {
                        Some(b) => Value::Bool(!b),
                        None => Value::Null,
                    }),
                }
            }
            Expr::Binary { left, op, right } => match op {
                BinOp::And | BinOp::Or => {
                    let l = to_bool(&self.eval_group(g, left)?);
                    let r = to_bool(&self.eval_group(g, right)?);
                    let out = if *op == BinOp::And {
                        and3(l, r)
                    } else {
                        or3(l, r)
                    };
                    Ok(match out {
                        Some(b) => Value::Bool(b),
                        None => Value::Null,
                    })
                }
                _ => {
                    let l = self.eval_group(g, left)?;
                    let r = self.eval_group(g, right)?;
                    if op.is_comparison() {
                        return Ok(match cmp3(&l, &r) {
                            None => Value::Null,
                            Some(ord) => Value::Bool(match op {
                                BinOp::Eq => ord == Ordering::Equal,
                                BinOp::NotEq => ord != Ordering::Equal,
                                BinOp::Lt => ord == Ordering::Less,
                                BinOp::LtEq => ord != Ordering::Greater,
                                BinOp::Gt => ord == Ordering::Greater,
                                BinOp::GtEq => ord != Ordering::Less,
                                _ => unreachable!("comparison op"),
                            }),
                        });
                    }
                    Ok(arith(l, *op, r))
                }
            },
            Expr::Call { func, args, .. } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval_group(g, a)?);
                }
                scalar_function(*func, &vals)
            }
            // Everything else (CASE, IN, LIKE, subqueries, ...) evaluates
            // on the group's representative row, SQLite-style.
            _ => self.eval_on_first_row(g, e),
        }
    }

    fn eval_on_first_row(&self, g: &GroupScope<'_>, e: &Expr) -> ExecResult<Value> {
        match g.rows.first() {
            Some(row) => {
                let scope = Scope {
                    rel: g.rel,
                    row,
                    outer: g.outer,
                };
                self.eval(&scope, e)
            }
            None => {
                // Empty group (global aggregate over zero rows): bare
                // columns are NULL.
                match e {
                    Expr::Literal(l) => Ok(literal_value(l)),
                    _ => Ok(Value::Null),
                }
            }
        }
    }

    fn eval_aggregate(
        &self,
        g: &GroupScope<'_>,
        func: Func,
        distinct: bool,
        args: &[Expr],
    ) -> ExecResult<Value> {
        // Reject nested aggregates inside the argument.
        if args.iter().any(|a| a.contains_aggregate()) {
            return Err(ExecError::NestedAggregate);
        }
        // COUNT(*) special case.
        if func == Func::Count && matches!(args.first(), Some(Expr::Wildcard)) {
            return Ok(Value::Int(g.rows.len() as i64));
        }
        let arg = args.first().ok_or(ExecError::FunctionArity {
            func: func.as_str(),
            given: 0,
        })?;
        if matches!(arg, Expr::Wildcard) && func != Func::Count {
            return Err(ExecError::MisplacedWildcard);
        }
        let mut vals: Vec<Value> = Vec::with_capacity(g.rows.len());
        for row in g.rows {
            let scope = Scope {
                rel: g.rel,
                row,
                outer: g.outer,
            };
            let v = self.eval(&scope, arg)?;
            if !v.is_null() {
                vals.push(v);
            }
        }
        if distinct {
            let mut seen: HashSet<String> = HashSet::with_capacity(vals.len());
            vals.retain(|v| seen.insert(row_key(std::slice::from_ref(v))));
        }
        Ok(match func {
            Func::Count => Value::Int(vals.len() as i64),
            Func::Sum => {
                if vals.is_empty() {
                    Value::Null
                } else if vals.iter().all(|v| matches!(v, Value::Int(_))) {
                    Value::Int(vals.iter().filter_map(|v| v.as_f64()).sum::<f64>() as i64)
                } else {
                    Value::Float(vals.iter().filter_map(|v| v.as_f64()).sum())
                }
            }
            Func::Avg => {
                let nums: Vec<f64> = vals.iter().filter_map(|v| v.as_f64()).collect();
                if nums.is_empty() {
                    Value::Null
                } else {
                    Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
                }
            }
            Func::Min => vals
                .iter()
                .min_by(|a, b| a.total_cmp(b))
                .cloned()
                .unwrap_or(Value::Null),
            Func::Max => vals
                .iter()
                .max_by(|a, b| a.total_cmp(b))
                .cloned()
                .unwrap_or(Value::Null),
            _ => unreachable!("non-aggregate filtered above"),
        })
    }
}

// ---------------------------------------------------------------------------
// Projection plan
// ---------------------------------------------------------------------------

enum Output {
    /// Direct column copy (wildcard expansion).
    Column(usize),
    /// Computed expression.
    Expr(Expr),
}

struct ProjectionPlan {
    names: Vec<String>,
    outputs: Vec<Output>,
    /// Source expression per output, for ORDER BY matching.
    exprs: Vec<Option<Expr>>,
    /// Alias per original select item (pre-expansion); used only for
    /// alias-reference resolution.
    aliases: Vec<Option<String>>,
}

impl ProjectionPlan {
    /// Resolves an ORDER BY expression against the projection: by alias,
    /// by output name, or by structural identity with a projected
    /// expression.
    fn output_position(&self, e: &Expr) -> Option<usize> {
        if let Expr::Column(ColumnRef {
            table: None,
            column,
        }) = e
        {
            // Alias match takes priority.
            if let Some(i) = self
                .aliases
                .iter()
                .position(|a| a.as_deref().is_some_and(|a| a.eq_ignore_ascii_case(column)))
            {
                // Aliases map 1:1 to outputs only when no wildcard
                // expansion happened; guard by bounds.
                if i < self.outputs.len() && self.names[i].eq_ignore_ascii_case(column) {
                    return Some(i);
                }
            }
        }
        // Structural identity with a projected expression.
        self.exprs.iter().position(|pe| pe.as_ref() == Some(e))
    }
}

fn default_name(e: &Expr) -> String {
    match e {
        Expr::Column(c) => c.column.clone(),
        other => print_expr(other),
    }
}

// ---------------------------------------------------------------------------
// Set operations / output ordering
// ---------------------------------------------------------------------------

fn combine(left: ResultSet, right: ResultSet, op: SetOp) -> ExecResult<ResultSet> {
    if left.columns.len() != right.columns.len() {
        return Err(ExecError::SetOpArity {
            left: left.columns.len(),
            right: right.columns.len(),
        });
    }
    let columns = left.columns.clone();
    let rows = match op {
        SetOp::UnionAll => {
            let mut rows = left.rows;
            rows.extend(right.rows);
            rows
        }
        SetOp::Union => {
            let mut seen: HashSet<String> = HashSet::new();
            let mut rows = Vec::new();
            for r in left.rows.into_iter().chain(right.rows) {
                if seen.insert(row_key(&r)) {
                    rows.push(r);
                }
            }
            rows
        }
        SetOp::Intersect => {
            let right_keys: HashSet<String> = right.rows.iter().map(|r| row_key(r)).collect();
            let mut seen: HashSet<String> = HashSet::new();
            left.rows
                .into_iter()
                .filter(|r| {
                    let k = row_key(r);
                    right_keys.contains(&k) && seen.insert(k)
                })
                .collect()
        }
        SetOp::Except => {
            let right_keys: HashSet<String> = right.rows.iter().map(|r| row_key(r)).collect();
            let mut seen: HashSet<String> = HashSet::new();
            left.rows
                .into_iter()
                .filter(|r| {
                    let k = row_key(r);
                    !right_keys.contains(&k) && seen.insert(k)
                })
                .collect()
        }
    };
    Ok(ResultSet {
        columns,
        rows,
        ordered: false,
    })
}

/// ORDER BY after a set operation: keys must reference output columns by
/// name or position.
fn apply_output_order(rs: &mut ResultSet, order_by: &[OrderItem]) -> ExecResult<()> {
    let mut key_indices = Vec::with_capacity(order_by.len());
    for item in order_by {
        let idx = match &item.expr {
            Expr::Literal(Literal::Number(n)) if *n >= 1 && (*n as usize) <= rs.columns.len() => {
                (*n as usize) - 1
            }
            Expr::Column(ColumnRef {
                table: None,
                column,
            }) => rs
                .columns
                .iter()
                .position(|c| c.eq_ignore_ascii_case(column))
                .ok_or_else(|| ExecError::UnknownColumn {
                    name: column.clone(),
                })?,
            other => {
                return Err(ExecError::TypeError {
                    message: format!(
                        "ORDER BY after a set operation must reference output columns, got {}",
                        print_expr(other)
                    ),
                })
            }
        };
        key_indices.push((idx, item.desc));
    }
    rs.rows.sort_by(|a, b| {
        for (idx, desc) in &key_indices {
            let ord = a[*idx].total_cmp(&b[*idx]);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    Ok(())
}

fn apply_limit(rs: &mut ResultSet, limit: Option<LimitClause>) {
    if let Some(l) = limit {
        let offset = l.offset.unwrap_or(0) as usize;
        if offset >= rs.rows.len() {
            rs.rows.clear();
        } else {
            rs.rows.drain(..offset);
            rs.rows.truncate(l.count as usize);
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar helpers
// ---------------------------------------------------------------------------

fn literal_value(l: &Literal) -> Value {
    match l {
        Literal::Number(n) => Value::Int(*n),
        Literal::Float(x) => Value::Float(*x),
        Literal::String(s) => Value::Text(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Null => Value::Null,
    }
}

/// SQL truthiness: NULL and false are not truthy; nonzero numbers are.
fn truthy(v: &Value) -> bool {
    to_bool(v) == Some(true)
}

fn to_bool(v: &Value) -> Option<bool> {
    match v {
        Value::Null => None,
        Value::Bool(b) => Some(*b),
        Value::Int(n) => Some(*n != 0),
        Value::Float(x) => Some(*x != 0.0),
        Value::Text(_) => Some(false),
    }
}

fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

/// Three-valued comparison: NULL operands → None; otherwise total order
/// (SQLite type ordering across classes).
fn cmp3(a: &Value, b: &Value) -> Option<Ordering> {
    if a.is_null() || b.is_null() {
        return None;
    }
    Some(a.total_cmp(b))
}

fn arith(l: Value, op: BinOp, r: Value) -> Value {
    if l.is_null() || r.is_null() {
        return Value::Null;
    }
    // Integer fast path (with SQLite truncating division).
    if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
        return match op {
            BinOp::Add => Value::Int(a.wrapping_add(*b)),
            BinOp::Sub => Value::Int(a.wrapping_sub(*b)),
            BinOp::Mul => Value::Int(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a.wrapping_div(*b))
                }
            }
            BinOp::Mod => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a.wrapping_rem(*b))
                }
            }
            _ => Value::Null,
        };
    }
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => match op {
            BinOp::Add => Value::Float(a + b),
            BinOp::Sub => Value::Float(a - b),
            BinOp::Mul => Value::Float(a * b),
            BinOp::Div => {
                if b == 0.0 {
                    Value::Null
                } else {
                    Value::Float(a / b)
                }
            }
            BinOp::Mod => {
                if b == 0.0 {
                    Value::Null
                } else {
                    Value::Float(a % b)
                }
            }
            _ => Value::Null,
        },
        _ => Value::Null,
    }
}

fn scalar_function(func: Func, args: &[Value]) -> ExecResult<Value> {
    let arity_err = |n: usize| ExecError::FunctionArity {
        func: func.as_str(),
        given: n,
    };
    match func {
        Func::Abs => {
            let v = args.first().ok_or_else(|| arity_err(0))?;
            Ok(match v {
                Value::Null => Value::Null,
                Value::Int(n) => Value::Int(n.wrapping_abs()),
                Value::Float(x) => Value::Float(x.abs()),
                _ => Value::Null,
            })
        }
        Func::Lower | Func::Upper => {
            let v = args.first().ok_or_else(|| arity_err(0))?;
            Ok(match v {
                Value::Text(s) => Value::Text(if func == Func::Lower {
                    s.to_lowercase()
                } else {
                    s.to_uppercase()
                }),
                Value::Null => Value::Null,
                other => other.clone(),
            })
        }
        Func::Length => {
            let v = args.first().ok_or_else(|| arity_err(0))?;
            Ok(match v {
                Value::Text(s) => Value::Int(s.chars().count() as i64),
                Value::Null => Value::Null,
                other => Value::Int(other.render().len() as i64),
            })
        }
        Func::Round => {
            let v = args.first().ok_or_else(|| arity_err(0))?;
            let digits = match args.get(1) {
                Some(Value::Int(d)) => *d,
                Some(Value::Null) | None => 0,
                Some(_) => 0,
            };
            Ok(match v.as_f64() {
                Some(x) => {
                    let scale = 10f64.powi(digits as i32);
                    Value::Float((x * scale).round() / scale)
                }
                None => Value::Null,
            })
        }
        Func::Coalesce => {
            for v in args {
                if !v.is_null() {
                    return Ok(v.clone());
                }
            }
            Ok(Value::Null)
        }
        Func::Substr => {
            if args.len() < 2 {
                return Err(arity_err(args.len()));
            }
            let (s, start) = (&args[0], &args[1]);
            let (Value::Text(s), Value::Int(start)) = (s, start) else {
                return Ok(Value::Null);
            };
            let chars: Vec<char> = s.chars().collect();
            // SQL SUBSTR is 1-based; negative start counts from the end.
            let begin = match (*start).cmp(&0) {
                std::cmp::Ordering::Greater => (*start as usize).saturating_sub(1),
                std::cmp::Ordering::Less => {
                    chars.len().saturating_sub(start.unsigned_abs() as usize)
                }
                std::cmp::Ordering::Equal => 0,
            };
            let len = match args.get(2) {
                Some(Value::Int(n)) if *n >= 0 => *n as usize,
                Some(Value::Int(_)) => 0,
                _ => chars.len(),
            };
            Ok(Value::Text(
                chars.iter().skip(begin).take(len).collect::<String>(),
            ))
        }
        // Aggregates are handled in group scope.
        Func::Count | Func::Sum | Func::Avg | Func::Min | Func::Max => Err(ExecError::TypeError {
            message: format!("aggregate {func} not allowed in row context"),
        }),
    }
}

/// SQL LIKE with `%` and `_`, ASCII case-insensitive (SQLite default).
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[u8], p: &[u8]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some(b'%') => {
                // Collapse consecutive %.
                let p = &p[1..];
                if p.is_empty() {
                    return true;
                }
                (0..=s.len()).any(|i| rec(&s[i..], p))
            }
            Some(b'_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(&c) => !s.is_empty() && s[0].eq_ignore_ascii_case(&c) && rec(&s[1..], &p[1..]),
        }
    }
    rec(s.as_bytes(), pattern.as_bytes())
}

/// Detects `ON left.col = right.col` style constraints and returns the two
/// column offsets (left-relative, right-relative).
fn equi_join_columns(on: &Expr, left: &Relation, right: &Relation) -> Option<(usize, usize)> {
    let Expr::Binary {
        left: a,
        op: BinOp::Eq,
        right: b,
    } = on
    else {
        return None;
    };
    let (Expr::Column(ca), Expr::Column(cb)) = (a.as_ref(), b.as_ref()) else {
        return None;
    };
    let la = left.resolve(ca).ok().flatten();
    let rb = right.resolve(cb).ok().flatten();
    if let (Some(li), Some(ri)) = (la, rb) {
        return Some((li, ri));
    }
    let lb = left.resolve(cb).ok().flatten();
    let ra = right.resolve(ca).ok().flatten();
    if let (Some(li), Some(ri)) = (lb, ra) {
        return Some((li, ri));
    }
    None
}
