//! Runtime values and SQL three-valued-logic primitives.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Column data types supported by the engine.
///
/// Dates are stored as ISO-8601 `Text` (`YYYY-MM-DD`); lexicographic
/// comparison coincides with chronological order, which is exactly how the
/// AEP-style `createdTime >= '2024-01-01'` predicates in the paper's
/// figures behave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Bool,
    /// ISO-8601 date stored as text.
    Date,
}

impl DataType {
    /// Whether values of this type are numeric.
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// Whether the type is represented as text at runtime.
    pub fn is_textual(&self) -> bool {
        matches!(self, DataType::Text | DataType::Date)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
            DataType::Date => "DATE",
        })
    }
}

/// A runtime value.
///
/// The derived `PartialEq` is exact (bitwise for floats) and is meant for
/// tests and storage bookkeeping; SQL comparisons go through
/// [`Value::sql_cmp`]/[`Value::sql_eq`] and result-set comparison through
/// [`Value::group_eq`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Text (also carries dates).
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Whether the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (Int and Float only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// SQL comparison: returns `None` when either side is NULL (unknown),
    /// or when the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// SQL equality under three-valued logic: `None` = unknown.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Total order used by ORDER BY and GROUP BY: NULLs sort first, then
    /// by type class (bool < numeric < text), then by value. NaN sorts
    /// after every other float.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn class(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Text(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (a, b) if class(a) == class(b) && class(a) == 2 => {
                let x = a.as_f64().expect("numeric");
                let y = b.as_f64().expect("numeric");
                x.partial_cmp(&y).unwrap_or_else(|| {
                    // NaN ordering: NaN > everything, NaN == NaN.
                    match (x.is_nan(), y.is_nan()) {
                        (true, true) => Ordering::Equal,
                        (true, false) => Ordering::Greater,
                        (false, true) => Ordering::Less,
                        (false, false) => unreachable!("partial_cmp failed on non-NaN"),
                    }
                })
            }
            (a, b) => class(a).cmp(&class(b)),
        }
    }

    /// Grouping/result-set equality: NULL equals NULL, floats compared
    /// with a small relative tolerance (Spider's evaluator does the same
    /// to absorb float formatting differences).
    pub fn group_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Null, _) | (_, Value::Null) => false,
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => float_eq(a, b),
                _ => false,
            },
        }
    }

    /// Renders the value the way a result grid would.
    pub fn render(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(n) => n.to_string(),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    format!("{x:.1}")
                } else {
                    format!("{x}")
                }
            }
            Value::Text(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
        }
    }
}

/// Relative-tolerance float equality used for result-set comparison.
pub fn float_eq(a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-9 * scale
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn incomparable_types_are_unknown() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Text("1".into())), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn date_strings_order_chronologically() {
        let a = Value::Text("2023-01-15".into());
        let b = Value::Text("2024-01-01".into());
        assert_eq!(a.sql_cmp(&b), Some(Ordering::Less));
    }

    #[test]
    fn total_order_puts_nulls_first() {
        let mut vals = [Value::Int(2), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert!(vals[1].group_eq(&Value::Int(1)));
    }

    #[test]
    fn total_order_handles_nan() {
        let mut vals = [
            Value::Float(f64::NAN),
            Value::Float(1.0),
            Value::Float(f64::NAN),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].as_f64().unwrap() == 1.0);
    }

    #[test]
    fn group_eq_treats_null_equal() {
        assert!(Value::Null.group_eq(&Value::Null));
        assert!(!Value::Null.group_eq(&Value::Int(0)));
    }

    #[test]
    fn group_eq_float_tolerance() {
        assert!(Value::Float(0.1 + 0.2).group_eq(&Value::Float(0.3)));
        assert!(Value::Int(3).group_eq(&Value::Float(3.0)));
        assert!(!Value::Float(3.0).group_eq(&Value::Float(3.1)));
    }

    #[test]
    fn render_formats() {
        assert_eq!(Value::Null.render(), "NULL");
        assert_eq!(Value::Float(2.0).render(), "2.0");
        assert_eq!(Value::Float(2.5).render(), "2.5");
        assert_eq!(Value::Int(7).render(), "7");
    }
}
