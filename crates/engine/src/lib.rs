//! # fisql-engine
//!
//! An in-memory relational engine used as the execution substrate of the
//! FISQL reproduction. The paper measures **execution accuracy** — a
//! prediction is correct iff running it yields the same result as running
//! the gold SQL — so the reproduction needs a real executor, not a string
//! comparison.
//!
//! The engine deliberately mirrors SQLite's behaviour in the corners that
//! matter to the SPIDER benchmark (see [`exec`] module docs).
//!
//! ```
//! use fisql_engine::{Database, Table, Column, DataType, Value, execute_sql};
//!
//! let mut db = Database::new("demo");
//! let mut t = Table::new("singer", vec![
//!     Column::new("name", DataType::Text),
//!     Column::new("age", DataType::Int),
//! ]);
//! t.push_row(vec!["Joe".into(), Value::Int(52)]);
//! t.push_row(vec!["Ann".into(), Value::Int(33)]);
//! db.add_table(t);
//!
//! let rs = execute_sql(&db, "SELECT name FROM singer WHERE age < 40").unwrap();
//! assert_eq!(rs.rows, vec![vec![Value::Text("Ann".into())]]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ddl;
pub mod error;
pub mod exec;
pub mod explain;
pub mod introspect;
pub mod result;
pub mod schema;
pub mod value;

pub use ddl::{load_script, DdlError};
pub use error::{ExecError, ExecResult};
pub use exec::{execute, execute_sql, execute_with_limits, like_match, set_exec_pulse, ExecLimits};
pub use explain::explain;
pub use introspect::{col_type, schema_info};
pub use result::{results_match, row_key, ResultSet};
pub use schema::{Column, Database, ForeignKey, Table};
pub use value::{float_eq, DataType, Value};
