//! Schema objects: columns, tables, foreign keys, and databases.

use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name (unique within its table, case-insensitively).
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
}

impl Column {
    /// Creates a column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
        }
    }
}

/// A foreign-key edge from one column of this table to a column of another
/// table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    /// Index of the referencing column in the owning table.
    pub column: usize,
    /// Name of the referenced table.
    pub ref_table: String,
    /// Index of the referenced column in the referenced table.
    pub ref_column: usize,
}

/// A table: schema plus row storage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table name (unique within its database, case-insensitively).
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<Column>,
    /// Index of the primary-key column, if any.
    pub primary_key: Option<usize>,
    /// Outgoing foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
    /// Row storage; every row has exactly `columns.len()` values.
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        Table {
            name: name.into(),
            columns,
            primary_key: None,
            foreign_keys: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Finds a column index by name, case-insensitively.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Appends a row after checking arity.
    ///
    /// # Panics
    /// Panics if the row arity does not match the column count — rows are
    /// only produced by the generator, so a mismatch is a programming
    /// error, not a data error.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity {} != column count {} for table {}",
            row.len(),
            self.columns.len(),
            self.name
        );
        self.rows.push(row);
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

/// A database: a named collection of tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Database {
    /// Database identifier.
    pub name: String,
    /// Tables in creation order.
    pub tables: Vec<Table>,
}

impl Database {
    /// Creates an empty database.
    pub fn new(name: impl Into<String>) -> Self {
        Database {
            name: name.into(),
            tables: Vec::new(),
        }
    }

    /// Looks up a table by name, case-insensitively.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// Mutable lookup.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables
            .iter_mut()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// Adds a table; replaces any previous table with the same name.
    pub fn add_table(&mut self, table: Table) {
        if let Some(existing) = self.table_mut(&table.name) {
            *existing = table;
        } else {
            self.tables.push(table);
        }
    }

    /// Renders the schema as a `CREATE TABLE`-style text block. This is
    /// the "full schema definitions" fed into the zero-shot prompt of the
    /// paper's Figure 1.
    pub fn schema_text(&self) -> String {
        let mut out = String::new();
        for t in &self.tables {
            out.push_str("CREATE TABLE ");
            out.push_str(&t.name);
            out.push_str(" (\n");
            for (i, c) in t.columns.iter().enumerate() {
                out.push_str("  ");
                out.push_str(&c.name);
                out.push(' ');
                out.push_str(&c.dtype.to_string());
                if t.primary_key == Some(i) {
                    out.push_str(" PRIMARY KEY");
                }
                if let Some(fk) = t.foreign_keys.iter().find(|fk| fk.column == i) {
                    let ref_col = self
                        .table(&fk.ref_table)
                        .and_then(|rt| rt.columns.get(fk.ref_column))
                        .map(|c| c.name.clone())
                        .unwrap_or_else(|| format!("col{}", fk.ref_column));
                    out.push_str(&format!(" REFERENCES {}({})", fk.ref_table, ref_col));
                }
                if i + 1 < t.columns.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(");\n");
        }
        out
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.rows.len()).sum()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "database `{}` ({} tables, {} rows)",
            self.name,
            self.tables.len(),
            self.total_rows()
        )
    }
}

// The parallel evaluation runner shares `&Database` across worker
// threads; this fails to compile if a future field (Rc, RefCell, raw
// pointer, …) silently removes that capability.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new("concert_singer");
        let mut singer = Table::new(
            "singer",
            vec![
                Column::new("singer_id", DataType::Int),
                Column::new("name", DataType::Text),
                Column::new("age", DataType::Int),
            ],
        );
        singer.primary_key = Some(0);
        singer.push_row(vec![Value::Int(1), "Joe".into(), Value::Int(52)]);
        db.add_table(singer);
        let mut concert = Table::new(
            "concert",
            vec![
                Column::new("concert_id", DataType::Int),
                Column::new("singer_id", DataType::Int),
            ],
        );
        concert.primary_key = Some(0);
        concert.foreign_keys.push(ForeignKey {
            column: 1,
            ref_table: "singer".into(),
            ref_column: 0,
        });
        db.add_table(concert);
        db
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let db = sample_db();
        assert!(db.table("SINGER").is_some());
        assert_eq!(db.table("singer").unwrap().column_index("NAME"), Some(1));
        assert!(db.table("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("t", vec![Column::new("a", DataType::Int)]);
        t.push_row(vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn schema_text_mentions_keys() {
        let db = sample_db();
        let text = db.schema_text();
        assert!(text.contains("CREATE TABLE singer"));
        assert!(text.contains("singer_id INT PRIMARY KEY"));
        assert!(text.contains("REFERENCES singer(singer_id)"));
    }

    #[test]
    fn add_table_replaces_same_name() {
        let mut db = sample_db();
        let replacement = Table::new("singer", vec![Column::new("x", DataType::Int)]);
        db.add_table(replacement);
        assert_eq!(db.tables.len(), 2);
        assert_eq!(db.table("singer").unwrap().columns.len(), 1);
    }

    #[test]
    fn total_rows_counts_all_tables() {
        let db = sample_db();
        assert_eq!(db.total_rows(), 1);
    }
}
