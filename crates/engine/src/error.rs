//! Execution errors.

use std::fmt;

/// An error raised while executing a query.
///
/// Execution errors matter to the reproduction: the paper's Assistant
/// reports "We found nothing for your query" style failures, and a
/// predicted SQL that errors (unknown column, type mismatch) counts as an
/// incorrect prediction in the execution-match metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Referenced table does not exist.
    UnknownTable {
        /// Offending name.
        name: String,
    },
    /// Referenced column cannot be resolved.
    UnknownColumn {
        /// Offending name (possibly qualified).
        name: String,
    },
    /// Column name resolves to more than one binding.
    AmbiguousColumn {
        /// Offending name.
        name: String,
    },
    /// A duplicate binding name in FROM.
    DuplicateBinding {
        /// Offending binding name.
        name: String,
    },
    /// An operation received a value of the wrong type.
    TypeError {
        /// Explanation.
        message: String,
    },
    /// A subquery used where a single column was required returned a
    /// different arity.
    SubqueryArity {
        /// Number of columns the subquery produced.
        columns: usize,
    },
    /// Set-operation arms produced different column counts.
    SetOpArity {
        /// Left arm column count.
        left: usize,
        /// Right arm column count.
        right: usize,
    },
    /// `*` used outside a valid position.
    MisplacedWildcard,
    /// Aggregate call nested inside another aggregate.
    NestedAggregate,
    /// A bare column appeared in an aggregate query without being grouped.
    UngroupedColumn {
        /// Offending column.
        name: String,
    },
    /// Wrong number of arguments to a function.
    FunctionArity {
        /// Function name.
        func: &'static str,
        /// Arguments given.
        given: usize,
    },
    /// The statement ran past a resource budget (row-count or wall-clock
    /// deadline) set via `ExecLimits` — a guard rail, not a semantic
    /// error: the query might be valid, it is just too expensive to let
    /// finish inside an interactive correction loop.
    BudgetExceeded {
        /// Which budget tripped: `"rows"`, `"time"`, or `"watchdog"`
        /// (an external cancellation via `exec::set_exec_pulse`).
        resource: &'static str,
        /// The configured limit (rows, or milliseconds; `0` for a
        /// watchdog cancellation, whose deadline lives outside the
        /// statement).
        limit: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownTable { name } => write!(f, "unknown table `{name}`"),
            ExecError::UnknownColumn { name } => write!(f, "unknown column `{name}`"),
            ExecError::AmbiguousColumn { name } => write!(f, "ambiguous column `{name}`"),
            ExecError::DuplicateBinding { name } => {
                write!(f, "duplicate table binding `{name}` in FROM")
            }
            ExecError::TypeError { message } => write!(f, "type error: {message}"),
            ExecError::SubqueryArity { columns } => {
                write!(f, "subquery must return one column, returned {columns}")
            }
            ExecError::SetOpArity { left, right } => {
                write!(f, "set operation arms differ in arity: {left} vs {right}")
            }
            ExecError::MisplacedWildcard => write!(f, "`*` is not valid here"),
            ExecError::NestedAggregate => write!(f, "aggregate calls cannot be nested"),
            ExecError::UngroupedColumn { name } => {
                write!(f, "column `{name}` must appear in GROUP BY")
            }
            ExecError::FunctionArity { func, given } => {
                write!(f, "wrong number of arguments to {func} ({given} given)")
            }
            ExecError::BudgetExceeded {
                resource: "watchdog",
                ..
            } => write!(f, "statement cancelled by the stall watchdog"),
            ExecError::BudgetExceeded { resource, limit } => {
                let unit = if *resource == "rows" { " rows" } else { " ms" };
                write!(
                    f,
                    "statement exceeded its {resource} budget ({limit}{unit})"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Result alias for engine APIs.
pub type ExecResult<T> = Result<T, ExecError>;
