//! Schema introspection: bridges [`Database`] to the static analyzer's
//! [`SchemaInfo`] description.
//!
//! `fisql-sqlkit` deliberately has no engine dependency (every layer
//! shares its AST), so the analyzer defines its own schema types and this
//! module converts the engine's index-based schema (foreign keys by
//! column *index*) into the analyzer's name-based one.

use crate::schema::{Database, Table};
use crate::value::DataType;
use fisql_sqlkit::check::{ColType, ColumnInfo, FkInfo, SchemaInfo, TableInfo};

/// Maps an engine column type to the analyzer's type lattice.
pub fn col_type(dtype: DataType) -> ColType {
    match dtype {
        DataType::Int => ColType::Int,
        DataType::Float => ColType::Float,
        DataType::Text => ColType::Text,
        DataType::Bool => ColType::Bool,
        DataType::Date => ColType::Date,
    }
}

fn table_info(db: &Database, t: &Table) -> TableInfo {
    TableInfo {
        name: t.name.clone(),
        columns: t
            .columns
            .iter()
            .map(|c| ColumnInfo {
                name: c.name.clone(),
                ctype: col_type(c.dtype),
            })
            .collect(),
        primary_key: t
            .primary_key
            .and_then(|i| t.columns.get(i))
            .map(|c| c.name.clone()),
        foreign_keys: t
            .foreign_keys
            .iter()
            .filter_map(|fk| {
                let column = t.columns.get(fk.column)?.name.clone();
                let ref_column = db
                    .table(&fk.ref_table)?
                    .columns
                    .get(fk.ref_column)?
                    .name
                    .clone();
                Some(FkInfo {
                    column,
                    ref_table: fk.ref_table.clone(),
                    ref_column,
                })
            })
            .collect(),
    }
}

/// Builds the analyzer's schema description for a database. Foreign keys
/// with out-of-range column indices or dangling table references are
/// dropped (they could never produce a usable join hint).
pub fn schema_info(db: &Database) -> SchemaInfo {
    SchemaInfo {
        tables: db.tables.iter().map(|t| table_info(db, t)).collect(),
    }
}

impl Database {
    /// Analyzer-facing schema description ([`schema_info`]).
    pub fn schema_info(&self) -> SchemaInfo {
        schema_info(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ForeignKey};
    use fisql_sqlkit::check::check_query;
    use fisql_sqlkit::parse_query;

    fn sample_db() -> Database {
        let mut db = Database::new("concert_singer");
        let mut singer = Table::new(
            "singer",
            vec![
                Column::new("singer_id", DataType::Int),
                Column::new("name", DataType::Text),
                Column::new("age", DataType::Int),
            ],
        );
        singer.primary_key = Some(0);
        db.add_table(singer);
        let mut concert = Table::new(
            "concert",
            vec![
                Column::new("concert_id", DataType::Int),
                Column::new("singer_id", DataType::Int),
                Column::new("concert_date", DataType::Date),
            ],
        );
        concert.primary_key = Some(0);
        concert.foreign_keys.push(ForeignKey {
            column: 1,
            ref_table: "singer".into(),
            ref_column: 0,
        });
        db.add_table(concert);
        db
    }

    #[test]
    fn schema_info_resolves_fk_names() {
        let info = sample_db().schema_info();
        let concert = info.table("concert").unwrap();
        assert_eq!(concert.primary_key.as_deref(), Some("concert_id"));
        assert_eq!(concert.foreign_keys.len(), 1);
        let fk = &concert.foreign_keys[0];
        assert_eq!(fk.column, "singer_id");
        assert_eq!(fk.ref_table, "singer");
        assert_eq!(fk.ref_column, "singer_id");
        assert_eq!(
            info.table("singer").unwrap().column("age").unwrap().ctype,
            ColType::Int
        );
    }

    #[test]
    fn dangling_fk_is_dropped() {
        let mut db = sample_db();
        db.table_mut("concert")
            .unwrap()
            .foreign_keys
            .push(ForeignKey {
                column: 99,
                ref_table: "singer".into(),
                ref_column: 0,
            });
        let info = db.schema_info();
        assert_eq!(info.table("concert").unwrap().foreign_keys.len(), 1);
    }

    #[test]
    fn analyzer_runs_against_introspected_schema() {
        let db = sample_db();
        let info = db.schema_info();
        let q = parse_query("SELECT name FROM singer WHERE age > 30").unwrap();
        assert!(check_query(&q, &info).is_empty());
        let bad = parse_query("SELECT nam FROM singer").unwrap();
        let diags = check_query(&bad, &info);
        assert!(diags.iter().any(|d| d.is_error()));
    }
}
