//! Query results and the execution-match comparison.
//!
//! The paper's correctness metric is **execution accuracy**: a predicted
//! SQL is correct iff its execution result matches the gold SQL's
//! execution result. Following the SPIDER evaluator's convention, rows are
//! compared as a multiset unless the gold query has an ORDER BY, in which
//! case row order matters.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The result of executing a query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultSet {
    /// Output column labels.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
    /// Whether the producing query imposed an ordering (had ORDER BY).
    pub ordered: bool,
}

impl ResultSet {
    /// An empty result with the given columns.
    pub fn empty(columns: Vec<String>) -> Self {
        ResultSet {
            columns,
            rows: Vec::new(),
            ordered: false,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// A single scalar convenience accessor: the value at (0, 0), if the
    /// result has exactly one row and one column.
    pub fn scalar(&self) -> Option<&Value> {
        if self.rows.len() == 1 && self.columns.len() == 1 {
            self.rows[0].first()
        } else {
            None
        }
    }

    /// Renders the first `max_rows` rows as an aligned text grid — what
    /// the paper's Assistant shows users as "Evaluation" (Figure 7).
    pub fn render_grid(&self, max_rows: usize) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let shown = self.rows.iter().take(max_rows);
        let rendered: Vec<Vec<String>> = shown
            .map(|r| r.iter().map(Value::render).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push_str(" | ");
            }
            out.push_str(&format!("{:w$}", c, w = widths[i]));
        }
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                out.push_str(&format!(
                    "{:w$}",
                    cell,
                    w = widths.get(i).copied().unwrap_or(0)
                ));
            }
            out.push('\n');
        }
        if self.rows.len() > max_rows {
            out.push_str(&format!("... ({} more rows)\n", self.rows.len() - max_rows));
        }
        out
    }
}

impl fmt::Display for ResultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render_grid(20))
    }
}

/// Canonical string key for a row, used for multiset comparison and
/// DISTINCT/set-op deduplication. Floats are keyed at reduced precision so
/// values that compare `group_eq` share a key.
pub fn row_key(row: &[Value]) -> String {
    let mut key = String::with_capacity(row.len() * 8);
    for v in row {
        match v {
            Value::Null => key.push_str("\u{1}N"),
            Value::Int(n) => {
                // Integers and integral floats share a key.
                key.push_str("\u{1}F");
                key.push_str(&format!("{:.9e}", *n as f64));
            }
            Value::Float(x) => {
                key.push_str("\u{1}F");
                if x.is_nan() {
                    key.push_str("NaN");
                } else {
                    key.push_str(&format!("{x:.9e}"));
                }
            }
            Value::Text(s) => {
                key.push_str("\u{1}T");
                key.push_str(s);
            }
            Value::Bool(b) => {
                key.push_str(if *b { "\u{1}Bt" } else { "\u{1}Bf" });
            }
        }
    }
    key
}

/// Execution-match: does `predicted` produce the same result as `gold`?
///
/// - Column *labels* are ignored (aliases do not affect correctness) but
///   column count must match.
/// - If `gold.ordered`, rows must match pairwise in order.
/// - Otherwise rows are compared as multisets.
pub fn results_match(predicted: &ResultSet, gold: &ResultSet) -> bool {
    if predicted.columns.len() != gold.columns.len() {
        return false;
    }
    if predicted.rows.len() != gold.rows.len() {
        return false;
    }
    if gold.ordered {
        predicted
            .rows
            .iter()
            .zip(&gold.rows)
            .all(|(p, g)| rows_eq(p, g))
    } else {
        let mut counts: HashMap<String, i64> = HashMap::with_capacity(gold.rows.len());
        for r in &gold.rows {
            *counts.entry(row_key(r)).or_insert(0) += 1;
        }
        for r in &predicted.rows {
            match counts.get_mut(&row_key(r)) {
                Some(c) if *c > 0 => *c -= 1,
                _ => return false,
            }
        }
        true
    }
}

fn rows_eq(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.group_eq(y))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(rows: Vec<Vec<Value>>, ordered: bool) -> ResultSet {
        let cols = (0..rows.first().map(|r| r.len()).unwrap_or(1))
            .map(|i| format!("c{i}"))
            .collect();
        ResultSet {
            columns: cols,
            rows,
            ordered,
        }
    }

    #[test]
    fn unordered_match_ignores_row_order() {
        let a = rs(vec![vec![Value::Int(1)], vec![Value::Int(2)]], false);
        let b = rs(vec![vec![Value::Int(2)], vec![Value::Int(1)]], false);
        assert!(results_match(&a, &b));
    }

    #[test]
    fn ordered_match_requires_order() {
        let a = rs(vec![vec![Value::Int(1)], vec![Value::Int(2)]], false);
        let mut b = rs(vec![vec![Value::Int(2)], vec![Value::Int(1)]], false);
        b.ordered = true;
        assert!(!results_match(&a, &b));
    }

    #[test]
    fn multiset_counts_matter() {
        let a = rs(
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(1)],
                vec![Value::Int(2)],
            ],
            false,
        );
        let b = rs(
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(2)],
            ],
            false,
        );
        assert!(!results_match(&a, &b));
    }

    #[test]
    fn arity_mismatch_fails() {
        let a = rs(vec![vec![Value::Int(1), Value::Int(2)]], false);
        let b = rs(vec![vec![Value::Int(1)]], false);
        assert!(!results_match(&a, &b));
    }

    #[test]
    fn column_labels_ignored() {
        let mut a = rs(vec![vec![Value::Int(1)]], false);
        let b = rs(vec![vec![Value::Int(1)]], false);
        a.columns = vec!["anything".into()];
        assert!(results_match(&a, &b));
    }

    #[test]
    fn float_and_int_keys_coincide() {
        let a = rs(vec![vec![Value::Int(3)]], false);
        let b = rs(vec![vec![Value::Float(3.0)]], false);
        assert!(results_match(&a, &b));
    }

    #[test]
    fn nulls_match_nulls_only() {
        let a = rs(vec![vec![Value::Null]], false);
        let b = rs(vec![vec![Value::Null]], false);
        assert!(results_match(&a, &b));
        let c = rs(vec![vec![Value::Int(0)]], false);
        assert!(!results_match(&a, &c));
    }

    #[test]
    fn render_grid_truncates() {
        let a = rs(
            (0..30).map(|i| vec![Value::Int(i)]).collect::<Vec<_>>(),
            false,
        );
        let grid = a.render_grid(5);
        assert!(grid.contains("25 more rows"));
    }

    #[test]
    fn scalar_accessor() {
        let a = rs(vec![vec![Value::Int(7)]], false);
        assert_eq!(a.scalar().unwrap().as_f64(), Some(7.0));
        let b = rs(vec![vec![Value::Int(7)], vec![Value::Int(8)]], false);
        assert!(b.scalar().is_none());
    }
}
