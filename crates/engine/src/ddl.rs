//! DDL/DML loading: build a [`Database`] from SQL text.
//!
//! Supports the subset needed to ship schemas and fixture data as plain
//! `.sql` files — `CREATE TABLE` with column types, `PRIMARY KEY` and
//! `REFERENCES` column constraints, and multi-row `INSERT INTO`:
//!
//! ```sql
//! CREATE TABLE singer (
//!   singer_id INT PRIMARY KEY,
//!   name TEXT,
//!   age INT
//! );
//! INSERT INTO singer VALUES (1, 'Joe Sharp', 52), (2, 'Ann', 33);
//! ```
//!
//! This is also the inverse of [`Database::schema_text`], so generated
//! schemas round-trip through their textual form.

use crate::error::ExecError;
use crate::schema::{Column, Database, ForeignKey, Table};
use crate::value::{DataType, Value};
use fisql_sqlkit::lexer::lex;
use fisql_sqlkit::token::{Keyword, Token, TokenKind};

/// An error raised while loading DDL/DML text.
#[derive(Debug, Clone, PartialEq)]
pub struct DdlError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for DdlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DDL error: {}", self.message)
    }
}

impl std::error::Error for DdlError {}

impl From<fisql_sqlkit::ParseError> for DdlError {
    fn from(e: fisql_sqlkit::ParseError) -> Self {
        DdlError {
            message: e.to_string(),
        }
    }
}

impl From<ExecError> for DdlError {
    fn from(e: ExecError) -> Self {
        DdlError {
            message: e.to_string(),
        }
    }
}

/// Parses a script of `CREATE TABLE` / `INSERT INTO` statements into a
/// database named `name`.
pub fn load_script(name: &str, sql: &str) -> Result<Database, DdlError> {
    let tokens = lex(sql)?;
    let mut p = DdlParser { tokens, pos: 0 };
    let mut db = Database::new(name);
    loop {
        p.skip_semicolons();
        if p.at_eof() {
            break;
        }
        if p.eat_ident_ci("CREATE") {
            p.expect_ident_ci("TABLE")?;
            let table = p.create_table(&db)?;
            db.add_table(table);
            continue;
        }
        if p.eat_ident_ci("INSERT") {
            p.expect_ident_ci("INTO")?;
            p.insert_into(&mut db)?;
            continue;
        }
        return Err(DdlError {
            message: format!(
                "expected CREATE TABLE or INSERT INTO, found {}",
                p.peek().kind.describe()
            ),
        });
    }
    Ok(db)
}

struct DdlParser {
    tokens: Vec<Token>,
    pos: usize,
}

impl DdlParser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    fn skip_semicolons(&mut self) {
        while matches!(self.peek().kind, TokenKind::Semicolon) {
            self.advance();
        }
    }

    /// Matches an identifier (or keyword spelled like one)
    /// case-insensitively.
    fn eat_ident_ci(&mut self, word: &str) -> bool {
        let matches = match &self.peek().kind {
            TokenKind::Ident(s) => s.eq_ignore_ascii_case(word),
            TokenKind::Keyword(k) => k.as_str().eq_ignore_ascii_case(word),
            _ => false,
        };
        if matches {
            self.advance();
        }
        matches
    }

    fn expect_ident_ci(&mut self, word: &str) -> Result<(), DdlError> {
        if self.eat_ident_ci(word) {
            Ok(())
        } else {
            Err(DdlError {
                message: format!("expected `{word}`, found {}", self.peek().kind.describe()),
            })
        }
    }

    fn ident(&mut self) -> Result<String, DdlError> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                let t = self.advance();
                match t.kind {
                    TokenKind::Ident(s) => Ok(s),
                    _ => unreachable!(),
                }
            }
            other => Err(DdlError {
                message: format!("expected identifier, found {}", other.describe()),
            }),
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), DdlError> {
        if self.peek().kind == kind {
            self.advance();
            Ok(())
        } else {
            Err(DdlError {
                message: format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek().kind.describe()
                ),
            })
        }
    }

    fn create_table(&mut self, db: &Database) -> Result<Table, DdlError> {
        let name = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key = None;
        let mut foreign_keys = Vec::new();
        loop {
            let col_name = self.ident()?;
            let dtype = self.data_type()?;
            let idx = columns.len();
            columns.push(Column::new(col_name, dtype));
            // Column constraints, in any order.
            loop {
                if self.eat_ident_ci("PRIMARY") {
                    self.expect_ident_ci("KEY")?;
                    primary_key = Some(idx);
                } else if self.eat_ident_ci("REFERENCES") {
                    let ref_table = self.ident()?;
                    let ref_column = if self.peek().kind == TokenKind::LParen {
                        self.advance();
                        let ref_col_name = self.ident()?;
                        self.expect(TokenKind::RParen)?;
                        db.table(&ref_table)
                            .and_then(|t| t.column_index(&ref_col_name))
                            .unwrap_or(0)
                    } else {
                        0
                    };
                    foreign_keys.push(ForeignKey {
                        column: idx,
                        ref_table,
                        ref_column,
                    });
                } else if self.eat_ident_ci("NOT") {
                    // NOT NULL: accepted and ignored (the engine does not
                    // enforce nullability).
                    if !self.eat_ident_ci("NULL") {
                        return Err(DdlError {
                            message: "expected NULL after NOT".into(),
                        });
                    }
                } else if self.eat_ident_ci("UNIQUE") {
                    // Accepted and ignored.
                } else {
                    break;
                }
            }
            if self.peek().kind == TokenKind::Comma {
                self.advance();
                continue;
            }
            self.expect(TokenKind::RParen)?;
            break;
        }
        let mut table = Table::new(name, columns);
        table.primary_key = primary_key;
        table.foreign_keys = foreign_keys;
        Ok(table)
    }

    fn data_type(&mut self) -> Result<DataType, DdlError> {
        let raw = self.ident()?;
        let dtype = match raw.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => DataType::Int,
            "FLOAT" | "REAL" | "DOUBLE" | "NUMERIC" | "DECIMAL" => DataType::Float,
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" | "CLOB" => DataType::Text,
            "BOOL" | "BOOLEAN" => DataType::Bool,
            "DATE" | "DATETIME" | "TIMESTAMP" => DataType::Date,
            other => {
                return Err(DdlError {
                    message: format!("unknown data type `{other}`"),
                })
            }
        };
        // Optional length suffix: VARCHAR(255).
        if self.peek().kind == TokenKind::LParen {
            self.advance();
            while self.peek().kind != TokenKind::RParen && !self.at_eof() {
                self.advance();
            }
            self.expect(TokenKind::RParen)?;
        }
        Ok(dtype)
    }

    fn insert_into(&mut self, db: &mut Database) -> Result<(), DdlError> {
        let table_name = self.ident()?;
        // Optional explicit column list.
        let explicit_cols: Option<Vec<String>> = if self.peek().kind == TokenKind::LParen {
            self.advance();
            let mut cols = vec![self.ident()?];
            while self.peek().kind == TokenKind::Comma {
                self.advance();
                cols.push(self.ident()?);
            }
            self.expect(TokenKind::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_ident_ci("VALUES")?;
        // Snapshot the column mapping before mutably borrowing rows.
        let (arity, mapping) = {
            let table = db.table(&table_name).ok_or_else(|| DdlError {
                message: format!("INSERT into unknown table `{table_name}`"),
            })?;
            let mapping: Option<Vec<usize>> = match &explicit_cols {
                Some(cols) => {
                    let mut m = Vec::with_capacity(cols.len());
                    for c in cols {
                        m.push(table.column_index(c).ok_or_else(|| DdlError {
                            message: format!("unknown column `{c}` in INSERT"),
                        })?);
                    }
                    Some(m)
                }
                None => None,
            };
            (table.columns.len(), mapping)
        };

        loop {
            self.expect(TokenKind::LParen)?;
            let mut values = vec![self.value()?];
            while self.peek().kind == TokenKind::Comma {
                self.advance();
                values.push(self.value()?);
            }
            self.expect(TokenKind::RParen)?;

            let row = match &mapping {
                Some(m) => {
                    if values.len() != m.len() {
                        return Err(DdlError {
                            message: format!(
                                "INSERT arity {} != column list {}",
                                values.len(),
                                m.len()
                            ),
                        });
                    }
                    let mut row = vec![Value::Null; arity];
                    for (slot, v) in m.iter().zip(values) {
                        row[*slot] = v;
                    }
                    row
                }
                None => {
                    if values.len() != arity {
                        return Err(DdlError {
                            message: format!(
                                "INSERT arity {} != table arity {arity}",
                                values.len()
                            ),
                        });
                    }
                    values
                }
            };
            db.table_mut(&table_name)
                .expect("checked above")
                .push_row(row);

            if self.peek().kind == TokenKind::Comma {
                self.advance();
                continue;
            }
            break;
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Value, DdlError> {
        // Optional unary minus.
        let negative = if self.peek().kind == TokenKind::Minus {
            self.advance();
            true
        } else {
            false
        };
        let t = self.advance();
        let v = match t.kind {
            TokenKind::Number(n) => Value::Int(if negative { -n } else { n }),
            TokenKind::Float(x) => Value::Float(if negative { -x } else { x }),
            TokenKind::String(s) if !negative => Value::Text(s),
            TokenKind::Keyword(Keyword::Null) if !negative => Value::Null,
            TokenKind::Keyword(Keyword::True) if !negative => Value::Bool(true),
            TokenKind::Keyword(Keyword::False) if !negative => Value::Bool(false),
            other => {
                return Err(DdlError {
                    message: format!("expected a literal value, found {}", other.describe()),
                })
            }
        };
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_sql;

    const SCRIPT: &str = r"
        CREATE TABLE singer (
          singer_id INT PRIMARY KEY,
          name TEXT NOT NULL,
          age INTEGER,
          rating REAL
        );
        CREATE TABLE concert (
          concert_id INT PRIMARY KEY,
          singer_id INT REFERENCES singer(singer_id),
          title VARCHAR(80),
          held_on DATE
        );
        INSERT INTO singer VALUES
          (1, 'Joe Sharp', 52, 4.5),
          (2, 'Ann O''Hara', 33, NULL),
          (3, 'Tribal King', 25, 3.0);
        INSERT INTO concert (concert_id, singer_id, title) VALUES (1, 2, 'Opening Night');
    ";

    #[test]
    fn loads_schema_and_rows() {
        let db = load_script("demo", SCRIPT).unwrap();
        assert_eq!(db.tables.len(), 2);
        let singer = db.table("singer").unwrap();
        assert_eq!(singer.primary_key, Some(0));
        assert_eq!(singer.rows.len(), 3);
        assert_eq!(singer.rows[1][1], Value::Text("Ann O'Hara".into()));
        assert!(singer.rows[1][3].is_null());
        let concert = db.table("concert").unwrap();
        assert_eq!(concert.foreign_keys.len(), 1);
        assert_eq!(concert.foreign_keys[0].ref_table, "singer");
        // Column-list insert leaves unmentioned columns NULL.
        assert!(concert.rows[0][3].is_null());
    }

    #[test]
    fn loaded_database_is_queryable() {
        let db = load_script("demo", SCRIPT).unwrap();
        let rs = execute_sql(
            &db,
            "SELECT s.name FROM singer s JOIN concert c ON s.singer_id = c.singer_id",
        )
        .unwrap();
        assert_eq!(rs.rows[0][0], Value::Text("Ann O'Hara".into()));
    }

    #[test]
    fn schema_text_round_trips() {
        let db = load_script("demo", SCRIPT).unwrap();
        let text = db.schema_text();
        let reloaded = load_script("demo", &text).unwrap();
        assert_eq!(db.tables.len(), reloaded.tables.len());
        for (a, b) in db.tables.iter().zip(&reloaded.tables) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.columns, b.columns);
            assert_eq!(a.primary_key, b.primary_key);
            assert_eq!(a.foreign_keys, b.foreign_keys);
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(load_script("d", "CREATE singer (x INT)").is_err());
        assert!(load_script("d", "CREATE TABLE t (x FANCYTYPE)").is_err());
        assert!(load_script("d", "INSERT INTO missing VALUES (1)").is_err());
        assert!(
            load_script("d", "CREATE TABLE t (x INT); INSERT INTO t VALUES (1, 2)").is_err(),
            "arity mismatch must error"
        );
        assert!(
            load_script("d", "DROP TABLE t").is_err(),
            "unsupported statement"
        );
    }

    #[test]
    fn negative_and_boolean_literals() {
        let db = load_script(
            "d",
            "CREATE TABLE t (a INT, b FLOAT, c BOOL); INSERT INTO t VALUES (-5, -2.5, TRUE);",
        )
        .unwrap();
        let t = db.table("t").unwrap();
        assert_eq!(t.rows[0][0], Value::Int(-5));
        assert_eq!(t.rows[0][1], Value::Float(-2.5));
        assert_eq!(t.rows[0][2], Value::Bool(true));
    }

    #[test]
    fn empty_script_yields_empty_database() {
        let db = load_script("d", "  ;; ").unwrap();
        assert!(db.tables.is_empty());
    }
}
