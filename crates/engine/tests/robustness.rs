//! Failure-injection and adversarial-input tests: whatever a broken
//! NL2SQL generation throws at the engine, it must return a structured
//! error or a well-formed result — never panic, never hang.

use fisql_engine::{execute_sql, load_script, Column, DataType, Database, Table, Value};

fn db() -> Database {
    load_script(
        "r",
        "CREATE TABLE t (t_id INT PRIMARY KEY, name TEXT, age INT, score FLOAT, d DATE);
         INSERT INTO t VALUES
           (1, 'a', 10, 1.5, '2024-01-01'),
           (2, 'b', NULL, -0.0, '2023-06-15'),
           (3, NULL, 30, 2.5, NULL);
         CREATE TABLE empty_t (e_id INT PRIMARY KEY, x TEXT);",
    )
    .unwrap()
}

#[test]
fn adversarial_queries_error_cleanly() {
    let db = db();
    for sql in [
        "SELECT * FROM nope",
        "SELECT nope FROM t",
        "SELECT t.nope FROM t",
        "SELECT nope.name FROM t",
        "SELECT * FROM t JOIN t ON 1 = 1",
        "SELECT name FROM t WHERE COUNT(*) > 1",
        "SELECT MAX(MIN(age)) FROM t",
        "SELECT name FROM t UNION SELECT name, age FROM t",
        "SELECT * FROM t WHERE age IN (SELECT name, age FROM t)",
        "SELECT (SELECT name, age FROM t) FROM t",
        "SELECT * FROM t ORDER BY 99 UNION SELECT * FROM t",
        "SELECT SUM() FROM t",
    ] {
        let r = execute_sql(&db, sql);
        assert!(r.is_err(), "expected error for: {sql}");
    }
}

#[test]
fn lenient_cases_return_results_not_errors() {
    let db = db();
    for sql in [
        // Cross-type comparisons follow type ordering instead of raising.
        "SELECT * FROM t WHERE name > age",
        "SELECT * FROM t WHERE age = 'ten'",
        // Arithmetic on text yields NULL, not an error.
        "SELECT name + 1 FROM t",
        // Division by zero is NULL.
        "SELECT age / 0 FROM t",
        "SELECT age % 0 FROM t",
        // LIKE on a non-text value is simply false.
        "SELECT * FROM t WHERE age LIKE 'x%'",
        // Scalar subquery with zero rows is NULL.
        "SELECT (SELECT x FROM empty_t) FROM t",
        // Aggregates over the empty table.
        "SELECT COUNT(*), MAX(e_id), AVG(e_id) FROM empty_t",
        // ORDER BY positional out of range falls back to evaluation.
        "SELECT name FROM t ORDER BY name ASC",
    ] {
        execute_sql(&db, sql).unwrap_or_else(|e| panic!("unexpected error for {sql}: {e}"));
    }
}

#[test]
fn pathological_nesting_terminates() {
    let db = db();
    // 12 levels of scalar-subquery nesting.
    let mut sql = "SELECT MAX(age) FROM t".to_string();
    for _ in 0..12 {
        sql = format!("SELECT (SELECT ({sql})) FROM t LIMIT 1");
    }
    let rs = execute_sql(&db, &sql).unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(30));
}

#[test]
fn huge_limit_and_offset_are_safe() {
    let db = db();
    let rs = execute_sql(&db, "SELECT * FROM t LIMIT 9223372036854775807").unwrap();
    assert_eq!(rs.len(), 3);
    let rs = execute_sql(&db, "SELECT * FROM t LIMIT 10 OFFSET 9999999").unwrap();
    assert!(rs.is_empty());
}

#[test]
fn wide_cross_joins_complete() {
    // 3 tables × 40 rows = 64k combinations; must finish promptly.
    let mut db = Database::new("w");
    for name in ["a", "b", "c"] {
        let mut t = Table::new(name, vec![Column::new(format!("{name}_id"), DataType::Int)]);
        for i in 0..40 {
            t.push_row(vec![Value::Int(i)]);
        }
        db.add_table(t);
    }
    let rs = execute_sql(&db, "SELECT COUNT(*) FROM a, b, c").unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(64000));
}

#[test]
fn negative_zero_and_float_edge_values() {
    let db = db();
    // -0.0 equals 0.0 in SQL comparisons.
    let rs = execute_sql(&db, "SELECT COUNT(*) FROM t WHERE score = 0").unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(1));
    // Integer overflow wraps rather than panicking (debug builds would
    // panic on plain arithmetic).
    let rs = execute_sql(&db, "SELECT 9223372036854775807 + 1").unwrap();
    assert!(matches!(rs.scalar().unwrap(), Value::Int(_)));
}

#[test]
fn empty_table_edge_cases() {
    let db = db();
    let rs = execute_sql(&db, "SELECT * FROM empty_t").unwrap();
    assert!(rs.is_empty());
    let rs = execute_sql(
        &db,
        "SELECT x, COUNT(*) FROM empty_t GROUP BY x HAVING COUNT(*) > 0",
    )
    .unwrap();
    assert!(rs.is_empty());
    let rs = execute_sql(
        &db,
        "SELECT name FROM t WHERE t_id IN (SELECT e_id FROM empty_t)",
    )
    .unwrap();
    assert!(rs.is_empty());
    // NOT IN over an empty set is true for everything.
    let rs = execute_sql(
        &db,
        "SELECT name FROM t WHERE t_id NOT IN (SELECT e_id FROM empty_t)",
    )
    .unwrap();
    assert_eq!(rs.len(), 3);
    // EXISTS over empty is false, NOT EXISTS true.
    let rs = execute_sql(
        &db,
        "SELECT name FROM t WHERE EXISTS (SELECT 1 FROM empty_t)",
    )
    .unwrap();
    assert!(rs.is_empty());
}

#[test]
fn null_heavy_aggregation() {
    let mut db = Database::new("n");
    let mut t = Table::new(
        "nulls",
        vec![
            Column::new("id", DataType::Int),
            Column::new("v", DataType::Int),
        ],
    );
    for i in 0..10 {
        t.push_row(vec![Value::Int(i), Value::Null]);
    }
    db.add_table(t);
    let rs = execute_sql(
        &db,
        "SELECT COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) FROM nulls",
    )
    .unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(0));
    for i in 1..5 {
        assert!(
            rs.rows[0][i].is_null(),
            "aggregate {i} over all-NULL column"
        );
    }
    // Grouping by an all-NULL key makes one group.
    let rs = execute_sql(&db, "SELECT v, COUNT(*) FROM nulls GROUP BY v").unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.rows[0][1], Value::Int(10));
}

#[test]
fn like_patterns_with_pathological_wildcards() {
    let db = db();
    for (pattern, expect_rows) in [
        ("%%%%%%", 2), // matches any non-NULL name
        ("%_%", 0),    // names are single chars: _%_ needs >= 1 char... `%_%` needs >= 1
        ("_", 2),
        ("", 0),
    ] {
        let rs = execute_sql(
            &db,
            &format!("SELECT name FROM t WHERE name LIKE '{pattern}'"),
        )
        .unwrap();
        // `%_%` matches strings of length >= 1, so expectation differs:
        let expected = if pattern == "%_%" { 2 } else { expect_rows };
        assert_eq!(rs.len(), expected, "pattern `{pattern}`");
    }
}

#[test]
fn deeply_chained_set_operations() {
    let db = db();
    let mut sql = "SELECT name FROM t".to_string();
    for _ in 0..20 {
        sql.push_str(" UNION SELECT name FROM t");
    }
    let rs = execute_sql(&db, &sql).unwrap();
    assert_eq!(rs.len(), 3); // 'a', 'b', NULL
}

#[test]
fn case_expression_edge_cases() {
    let db = db();
    // No matching WHEN and no ELSE yields NULL.
    let rs = execute_sql(&db, "SELECT CASE WHEN 1 = 2 THEN 'x' END FROM t LIMIT 1").unwrap();
    assert!(rs.rows[0][0].is_null());
    // CASE operand compared against NULL never matches.
    let rs = execute_sql(
        &db,
        "SELECT CASE name WHEN NULL THEN 'null!' ELSE 'other' END FROM t WHERE t_id = 3",
    )
    .unwrap();
    assert_eq!(rs.rows[0][0], Value::Text("other".into()));
}

// -- resource budgets (`ExecLimits`) ----------------------------------------

#[test]
fn row_budget_stops_runaway_cross_join() {
    use fisql_engine::{execute_with_limits, ExecError, ExecLimits};
    let mut db = Database::new("big");
    let mut t = Table::new("n", vec![Column::new("v", DataType::Int)]);
    for i in 0..200 {
        t.push_row(vec![Value::Int(i)]);
    }
    db.add_table(t);
    // 200 x 200 cross join: 40k join rows + 400 scan rows.
    let q = fisql_sqlkit::parse_query("SELECT COUNT(*) FROM n AS a JOIN n AS b").unwrap();
    let err = execute_with_limits(
        &db,
        &q,
        ExecLimits {
            max_rows: Some(10_000),
            deadline_ms: None,
        },
    )
    .unwrap_err();
    assert_eq!(
        err,
        ExecError::BudgetExceeded {
            resource: "rows",
            limit: 10_000
        }
    );
    assert!(err.to_string().contains("rows budget"), "{err}");
    // The same statement under a generous budget succeeds.
    let rs = execute_with_limits(
        &db,
        &q,
        ExecLimits {
            max_rows: Some(100_000),
            deadline_ms: None,
        },
    )
    .unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(40_000));
}

#[test]
fn zero_deadline_trips_the_time_budget() {
    use fisql_engine::{execute_with_limits, ExecError, ExecLimits};
    let mut db = Database::new("big");
    let mut t = Table::new("n", vec![Column::new("v", DataType::Int)]);
    for i in 0..600 {
        t.push_row(vec![Value::Int(i)]);
    }
    db.add_table(t);
    // A non-equi nested-loop join keeps the executor busy long enough
    // that the per-outer-row deadline check fires with a 0 ms budget.
    let q =
        fisql_sqlkit::parse_query("SELECT COUNT(*) FROM n AS a JOIN n AS b ON a.v < b.v").unwrap();
    let err = execute_with_limits(
        &db,
        &q,
        ExecLimits {
            max_rows: None,
            deadline_ms: Some(0),
        },
    )
    .unwrap_err();
    assert_eq!(
        err,
        ExecError::BudgetExceeded {
            resource: "time",
            limit: 0
        }
    );
}

#[test]
fn unlimited_limits_match_plain_execute() {
    use fisql_engine::{execute, execute_with_limits, ExecLimits};
    let db = db();
    let q = fisql_sqlkit::parse_query("SELECT name, age FROM t ORDER BY t_id").unwrap();
    let plain = execute(&db, &q).unwrap();
    let limited = execute_with_limits(&db, &q, ExecLimits::UNLIMITED).unwrap();
    let guarded = execute_with_limits(&db, &q, ExecLimits::interactive()).unwrap();
    assert_eq!(plain.rows, limited.rows);
    assert_eq!(plain.rows, guarded.rows);
}
