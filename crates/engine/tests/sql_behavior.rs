//! Behavioural tests for the engine executor, organised as one fixture
//! database exercised by many queries. The fixture mimics a small SPIDER
//! database (`concert_singer`-like) plus an AEP-style analytics table.

use fisql_engine::{
    execute_sql, results_match, Column, DataType, Database, ForeignKey, Table, Value,
};

fn fixture() -> Database {
    let mut db = Database::new("concert_singer");

    let mut singer = Table::new(
        "singer",
        vec![
            Column::new("singer_id", DataType::Int),
            Column::new("name", DataType::Text),
            Column::new("song_name", DataType::Text),
            Column::new("song_release_year", DataType::Int),
            Column::new("age", DataType::Int),
            Column::new("country", DataType::Text),
        ],
    );
    singer.primary_key = Some(0);
    for (id, name, song, year, age, country) in [
        (1, "Joe Sharp", "You", 1992, 52, "Netherlands"),
        (2, "Timbaland", "Dangerous", 2008, 32, "United States"),
        (3, "Justin Brown", "Hey Oh", 2013, 29, "France"),
        (4, "Rose White", "Sun", 2003, 41, "France"),
        (5, "John Nizinik", "Gentleman", 2014, 43, "France"),
        (6, "Tribal King", "Love", 2016, 25, "France"),
    ] {
        singer.push_row(vec![
            Value::Int(id),
            name.into(),
            song.into(),
            Value::Int(year),
            Value::Int(age),
            country.into(),
        ]);
    }
    db.add_table(singer);

    let mut concert = Table::new(
        "concert",
        vec![
            Column::new("concert_id", DataType::Int),
            Column::new("concert_name", DataType::Text),
            Column::new("stadium_id", DataType::Int),
            Column::new("year", DataType::Int),
        ],
    );
    concert.primary_key = Some(0);
    for (id, name, sid, year) in [
        (1, "Auditions", 1, 2014),
        (2, "Super bootcamp", 2, 2014),
        (3, "Home Visits", 2, 2015),
        (4, "Week 1", 10, 2014),
        (5, "Week 2", 1, 2015),
        (6, "Final", 9, 2015),
    ] {
        concert.push_row(vec![
            Value::Int(id),
            name.into(),
            Value::Int(sid),
            Value::Int(year),
        ]);
    }
    db.add_table(concert);

    let mut sic = Table::new(
        "singer_in_concert",
        vec![
            Column::new("concert_id", DataType::Int),
            Column::new("singer_id", DataType::Int),
        ],
    );
    sic.foreign_keys.push(ForeignKey {
        column: 0,
        ref_table: "concert".into(),
        ref_column: 0,
    });
    sic.foreign_keys.push(ForeignKey {
        column: 1,
        ref_table: "singer".into(),
        ref_column: 0,
    });
    for (cid, sid) in [
        (1, 2),
        (1, 3),
        (2, 3),
        (2, 4),
        (3, 5),
        (4, 6),
        (5, 3),
        (6, 2),
    ] {
        sic.push_row(vec![Value::Int(cid), Value::Int(sid)]);
    }
    db.add_table(sic);

    // AEP-style table with dates-as-text and NULLs.
    let mut seg = Table::new(
        "hkg_dim_segment",
        vec![
            Column::new("segment_id", DataType::Int),
            Column::new("segment_name", DataType::Text),
            Column::new("createdTime", DataType::Date),
            Column::new("status", DataType::Text),
            Column::new("profile_count", DataType::Int),
        ],
    );
    seg.primary_key = Some(0);
    type SegRow = (
        i64,
        &'static str,
        &'static str,
        Option<&'static str>,
        Option<i64>,
    );
    let rows: Vec<SegRow> = vec![
        (1, "ABC", "2024-01-05", Some("active"), Some(1200)),
        (2, "Loyalty", "2024-01-20", Some("active"), Some(300)),
        (3, "Churned", "2023-01-11", Some("inactive"), None),
        (4, "VIP", "2024-02-02", None, Some(55)),
        (5, "Trial", "2023-06-30", Some("active"), Some(89)),
    ];
    for (id, name, created, status, count) in rows {
        seg.push_row(vec![
            Value::Int(id),
            name.into(),
            created.into(),
            status.map(Value::from).unwrap_or(Value::Null),
            count.map(Value::Int).unwrap_or(Value::Null),
        ]);
    }
    db.add_table(seg);

    db
}

fn rows(db: &Database, sql: &str) -> Vec<Vec<Value>> {
    execute_sql(db, sql)
        .unwrap_or_else(|e| panic!("query failed: {sql}\n{e}"))
        .rows
}

fn scalar_i64(db: &Database, sql: &str) -> i64 {
    let rs = execute_sql(db, sql).unwrap_or_else(|e| panic!("query failed: {sql}\n{e}"));
    match rs.scalar() {
        Some(Value::Int(n)) => *n,
        other => panic!("expected scalar int from {sql}, got {other:?}"),
    }
}

#[test]
fn simple_projection_and_filter() {
    let db = fixture();
    let r = rows(&db, "SELECT name FROM singer WHERE age > 40");
    assert_eq!(r.len(), 3);
}

#[test]
fn count_star() {
    let db = fixture();
    assert_eq!(scalar_i64(&db, "SELECT COUNT(*) FROM singer"), 6);
}

#[test]
fn count_with_filter_on_dates() {
    let db = fixture();
    // Paper Figure 4: segments created in January 2024.
    assert_eq!(
        scalar_i64(
            &db,
            "SELECT COUNT(*) FROM hkg_dim_segment \
             WHERE createdTime >= '2024-01-01' AND createdTime < '2024-02-01'"
        ),
        2
    );
    // The misunderstood 2023 variant returns a different count.
    assert_eq!(
        scalar_i64(
            &db,
            "SELECT COUNT(*) FROM hkg_dim_segment \
             WHERE createdTime >= '2023-01-01' AND createdTime < '2023-02-01'"
        ),
        1
    );
}

#[test]
fn aggregates() {
    let db = fixture();
    assert_eq!(scalar_i64(&db, "SELECT MAX(age) FROM singer"), 52);
    assert_eq!(scalar_i64(&db, "SELECT MIN(age) FROM singer"), 25);
    assert_eq!(scalar_i64(&db, "SELECT SUM(age) FROM singer"), 222);
    let rs = execute_sql(&db, "SELECT AVG(age) FROM singer").unwrap();
    assert!(matches!(rs.scalar(), Some(Value::Float(x)) if (*x - 37.0).abs() < 1e-9));
}

#[test]
fn aggregate_over_empty_set() {
    let db = fixture();
    assert_eq!(
        scalar_i64(&db, "SELECT COUNT(*) FROM singer WHERE age > 99"),
        0
    );
    let rs = execute_sql(&db, "SELECT MAX(age) FROM singer WHERE age > 99").unwrap();
    assert!(rs.scalar().unwrap().is_null());
}

#[test]
fn count_ignores_nulls_count_star_does_not() {
    let db = fixture();
    assert_eq!(scalar_i64(&db, "SELECT COUNT(*) FROM hkg_dim_segment"), 5);
    assert_eq!(
        scalar_i64(&db, "SELECT COUNT(status) FROM hkg_dim_segment"),
        4
    );
    assert_eq!(
        scalar_i64(&db, "SELECT COUNT(DISTINCT status) FROM hkg_dim_segment"),
        2
    );
}

#[test]
fn group_by_and_having() {
    let db = fixture();
    let r = rows(
        &db,
        "SELECT country, COUNT(*) FROM singer GROUP BY country HAVING COUNT(*) > 1",
    );
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][0], Value::Text("France".into()));
    assert_eq!(r[0][1].as_f64(), Some(4.0));
}

#[test]
fn group_by_orders_with_aggregate_key() {
    let db = fixture();
    let r = rows(
        &db,
        "SELECT country, COUNT(*) FROM singer GROUP BY country ORDER BY COUNT(*) DESC LIMIT 1",
    );
    assert_eq!(r[0][0], Value::Text("France".into()));
}

#[test]
fn order_by_non_projected_column() {
    let db = fixture();
    let r = rows(&db, "SELECT name FROM singer ORDER BY age ASC LIMIT 1");
    assert_eq!(r[0][0], Value::Text("Tribal King".into()));
}

#[test]
fn order_by_positional() {
    let db = fixture();
    let r = rows(&db, "SELECT name, age FROM singer ORDER BY 2 DESC LIMIT 1");
    assert_eq!(r[0][0], Value::Text("Joe Sharp".into()));
}

#[test]
fn order_by_alias() {
    let db = fixture();
    let r = rows(
        &db,
        "SELECT name, age AS years FROM singer ORDER BY years DESC LIMIT 1",
    );
    assert_eq!(r[0][0], Value::Text("Joe Sharp".into()));
}

#[test]
fn limit_offset() {
    let db = fixture();
    let r = rows(
        &db,
        "SELECT name FROM singer ORDER BY age ASC LIMIT 2 OFFSET 1",
    );
    assert_eq!(r.len(), 2);
    assert_eq!(r[0][0], Value::Text("Justin Brown".into()));
}

#[test]
fn offset_past_end_is_empty() {
    let db = fixture();
    let r = rows(&db, "SELECT name FROM singer LIMIT 5 OFFSET 100");
    assert!(r.is_empty());
}

#[test]
fn distinct() {
    let db = fixture();
    let r = rows(&db, "SELECT DISTINCT country FROM singer");
    assert_eq!(r.len(), 3);
}

#[test]
fn inner_join() {
    let db = fixture();
    let r = rows(
        &db,
        "SELECT s.name FROM singer s JOIN singer_in_concert sic ON s.singer_id = sic.singer_id \
         JOIN concert c ON sic.concert_id = c.concert_id WHERE c.year = 2015",
    );
    assert_eq!(r.len(), 3);
}

#[test]
fn left_join_keeps_unmatched() {
    let db = fixture();
    // Singer 1 (Joe Sharp) performs in no concert.
    let r = rows(
        &db,
        "SELECT s.name, sic.concert_id FROM singer s \
         LEFT JOIN singer_in_concert sic ON s.singer_id = sic.singer_id \
         WHERE sic.concert_id IS NULL",
    );
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][0], Value::Text("Joe Sharp".into()));
}

#[test]
fn right_join_mirrors_left() {
    let db = fixture();
    let r = rows(
        &db,
        "SELECT s.name FROM singer_in_concert sic \
         RIGHT JOIN singer s ON s.singer_id = sic.singer_id \
         WHERE sic.concert_id IS NULL",
    );
    assert_eq!(r.len(), 1);
}

#[test]
fn cross_join_counts() {
    let db = fixture();
    assert_eq!(
        scalar_i64(&db, "SELECT COUNT(*) FROM singer CROSS JOIN concert"),
        36
    );
    assert_eq!(scalar_i64(&db, "SELECT COUNT(*) FROM singer, concert"), 36);
}

#[test]
fn join_with_non_equi_constraint_uses_nested_loop() {
    let db = fixture();
    let r = rows(
        &db,
        "SELECT COUNT(*) FROM singer s JOIN concert c ON s.age > c.year - 1990",
    );
    assert_eq!(r[0][0].as_f64().unwrap() as i64, 33);
}

#[test]
fn scalar_subquery() {
    let db = fixture();
    let r = rows(
        &db,
        "SELECT name, song_release_year FROM singer WHERE age = (SELECT MIN(age) FROM singer)",
    );
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][0], Value::Text("Tribal King".into()));
    assert_eq!(r[0][1], Value::Int(2016));
}

#[test]
fn in_subquery() {
    let db = fixture();
    let r = rows(
        &db,
        "SELECT name FROM singer WHERE singer_id IN (SELECT singer_id FROM singer_in_concert)",
    );
    assert_eq!(r.len(), 5);
}

#[test]
fn not_in_subquery() {
    let db = fixture();
    let r = rows(
        &db,
        "SELECT name FROM singer WHERE singer_id NOT IN (SELECT singer_id FROM singer_in_concert)",
    );
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][0], Value::Text("Joe Sharp".into()));
}

#[test]
fn correlated_exists() {
    let db = fixture();
    let r = rows(
        &db,
        "SELECT name FROM singer s WHERE EXISTS \
         (SELECT 1 FROM singer_in_concert sic WHERE sic.singer_id = s.singer_id)",
    );
    assert_eq!(r.len(), 5);
}

#[test]
fn correlated_scalar_subquery() {
    let db = fixture();
    let r = rows(
        &db,
        "SELECT name, (SELECT COUNT(*) FROM singer_in_concert sic \
         WHERE sic.singer_id = s.singer_id) AS appearances \
         FROM singer s ORDER BY appearances DESC, name ASC LIMIT 1",
    );
    assert_eq!(r[0][0], Value::Text("Justin Brown".into()));
    assert_eq!(r[0][1], Value::Int(3));
}

#[test]
fn union_dedupes() {
    let db = fixture();
    let r = rows(
        &db,
        "SELECT country FROM singer UNION SELECT country FROM singer",
    );
    assert_eq!(r.len(), 3);
}

#[test]
fn union_all_keeps_duplicates() {
    let db = fixture();
    let r = rows(
        &db,
        "SELECT country FROM singer UNION ALL SELECT country FROM singer",
    );
    assert_eq!(r.len(), 12);
}

#[test]
fn intersect_and_except() {
    let db = fixture();
    let r = rows(
        &db,
        "SELECT year FROM concert INTERSECT SELECT song_release_year FROM singer",
    );
    assert_eq!(r.len(), 1); // 2014 appears in both
    let r = rows(
        &db,
        "SELECT year FROM concert EXCEPT SELECT song_release_year FROM singer",
    );
    assert_eq!(r.len(), 1); // 2015 remains
}

#[test]
fn set_op_order_by_output_column() {
    let db = fixture();
    let r = rows(
        &db,
        "SELECT name FROM singer WHERE age > 45 UNION SELECT name FROM singer WHERE age < 28 \
         ORDER BY name ASC",
    );
    assert_eq!(r.len(), 2);
    assert_eq!(r[0][0], Value::Text("Joe Sharp".into()));
}

#[test]
fn set_op_arity_mismatch_errors() {
    let db = fixture();
    assert!(execute_sql(
        &db,
        "SELECT name, age FROM singer UNION SELECT name FROM singer"
    )
    .is_err());
}

#[test]
fn like_patterns() {
    let db = fixture();
    let r = rows(&db, "SELECT name FROM singer WHERE name LIKE 'J%'");
    assert_eq!(r.len(), 3);
    let r = rows(&db, "SELECT name FROM singer WHERE name LIKE '%ose%'");
    assert_eq!(r.len(), 1);
    let r = rows(&db, "SELECT name FROM singer WHERE name LIKE '_ose White'");
    assert_eq!(r.len(), 1);
    // SQLite LIKE is case-insensitive.
    let r = rows(&db, "SELECT name FROM singer WHERE name LIKE 'j%'");
    assert_eq!(r.len(), 3);
}

#[test]
fn between() {
    let db = fixture();
    let r = rows(&db, "SELECT name FROM singer WHERE age BETWEEN 29 AND 41");
    assert_eq!(r.len(), 3);
    let r = rows(
        &db,
        "SELECT name FROM singer WHERE age NOT BETWEEN 29 AND 41",
    );
    assert_eq!(r.len(), 3);
}

#[test]
fn null_semantics_in_where() {
    let db = fixture();
    // NULL status rows match neither = 'active' nor != 'active'.
    let active = rows(&db, "SELECT * FROM hkg_dim_segment WHERE status = 'active'").len();
    let inactive = rows(
        &db,
        "SELECT * FROM hkg_dim_segment WHERE status != 'active'",
    )
    .len();
    assert_eq!(active + inactive, 4);
    let nulls = rows(&db, "SELECT * FROM hkg_dim_segment WHERE status IS NULL").len();
    assert_eq!(nulls, 1);
}

#[test]
fn not_in_with_nulls_filters_everything() {
    let db = fixture();
    // profile_count contains a NULL → `x NOT IN (subquery)` is never true.
    let r = rows(
        &db,
        "SELECT segment_id FROM hkg_dim_segment \
         WHERE segment_id NOT IN (SELECT profile_count FROM hkg_dim_segment)",
    );
    assert!(r.is_empty());
}

#[test]
fn arithmetic_and_division() {
    let db = fixture();
    assert_eq!(scalar_i64(&db, "SELECT 7 / 2"), 3); // integer division
    let rs = execute_sql(&db, "SELECT 7.0 / 2").unwrap();
    assert!(matches!(rs.scalar(), Some(Value::Float(x)) if *x == 3.5));
    let rs = execute_sql(&db, "SELECT 1 / 0").unwrap();
    assert!(rs.scalar().unwrap().is_null());
    assert_eq!(scalar_i64(&db, "SELECT 7 % 3"), 1);
}

#[test]
fn scalar_functions() {
    let db = fixture();
    assert_eq!(scalar_i64(&db, "SELECT ABS(-5)"), 5);
    assert_eq!(scalar_i64(&db, "SELECT LENGTH('hello')"), 5);
    let rs = execute_sql(&db, "SELECT LOWER('AbC')").unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Text("abc".into()));
    let rs = execute_sql(&db, "SELECT UPPER('AbC')").unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Text("ABC".into()));
    let rs = execute_sql(&db, "SELECT ROUND(2.567, 1)").unwrap();
    assert!(matches!(rs.scalar(), Some(Value::Float(x)) if (*x - 2.6).abs() < 1e-9));
    let rs = execute_sql(&db, "SELECT COALESCE(NULL, NULL, 3)").unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(3));
    let rs = execute_sql(&db, "SELECT SUBSTR('hello', 2, 3)").unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Text("ell".into()));
    let rs = execute_sql(&db, "SELECT SUBSTR('hello', -3)").unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Text("llo".into()));
}

#[test]
fn case_expression() {
    let db = fixture();
    let r = rows(
        &db,
        "SELECT name, CASE WHEN age >= 40 THEN 'senior' ELSE 'junior' END FROM singer \
         WHERE name = 'Joe Sharp'",
    );
    assert_eq!(r[0][1], Value::Text("senior".into()));
}

#[test]
fn derived_table() {
    let db = fixture();
    let r = rows(
        &db,
        "SELECT d.c FROM (SELECT country AS c, COUNT(*) AS n FROM singer GROUP BY country) AS d \
         WHERE d.n > 1",
    );
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][0], Value::Text("France".into()));
}

#[test]
fn wildcard_expansion() {
    let db = fixture();
    let rs = execute_sql(&db, "SELECT * FROM singer").unwrap();
    assert_eq!(rs.columns.len(), 6);
    let rs = execute_sql(
        &db,
        "SELECT s.* FROM singer s JOIN concert c ON s.singer_id = c.stadium_id",
    )
    .unwrap();
    assert_eq!(rs.columns.len(), 6);
}

#[test]
fn unknown_identifiers_error() {
    let db = fixture();
    assert!(execute_sql(&db, "SELECT * FROM nope").is_err());
    assert!(execute_sql(&db, "SELECT nope FROM singer").is_err());
    assert!(execute_sql(&db, "SELECT nope.name FROM singer").is_err());
}

#[test]
fn ambiguous_column_errors() {
    let db = fixture();
    assert!(execute_sql(
        &db,
        "SELECT singer_id FROM singer JOIN singer_in_concert ON 1 = 1"
    )
    .is_err());
}

#[test]
fn duplicate_binding_errors() {
    let db = fixture();
    assert!(execute_sql(&db, "SELECT * FROM singer JOIN singer ON 1 = 1").is_err());
    // But distinct aliases over the same table are fine (self-join).
    assert!(execute_sql(
        &db,
        "SELECT a.name FROM singer a JOIN singer b ON a.age < b.age"
    )
    .is_ok());
}

#[test]
fn aggregate_in_where_errors() {
    let db = fixture();
    assert!(execute_sql(&db, "SELECT name FROM singer WHERE COUNT(*) > 1").is_err());
}

#[test]
fn nested_aggregate_errors() {
    let db = fixture();
    assert!(execute_sql(&db, "SELECT MAX(COUNT(*)) FROM singer").is_err());
}

#[test]
fn execution_match_semantics() {
    let db = fixture();
    let a = execute_sql(&db, "SELECT name FROM singer WHERE age > 40").unwrap();
    let b = execute_sql(
        &db,
        "SELECT name FROM singer WHERE age > 40 ORDER BY name ASC",
    )
    .unwrap();
    // Unordered gold: the ordered prediction still matches.
    assert!(results_match(&b, &a));
    // Aliases are ignored.
    let c = execute_sql(&db, "SELECT name AS x FROM singer WHERE age > 40").unwrap();
    assert!(results_match(&c, &a));
    // A different filter does not match.
    let d = execute_sql(&db, "SELECT name FROM singer WHERE age > 45").unwrap();
    assert!(!results_match(&d, &a));
}

#[test]
fn min_max_on_text() {
    let db = fixture();
    let rs = execute_sql(&db, "SELECT MIN(name), MAX(name) FROM singer").unwrap();
    assert_eq!(rs.rows[0][0], Value::Text("Joe Sharp".into()));
    assert_eq!(rs.rows[0][1], Value::Text("Tribal King".into()));
}

#[test]
fn group_by_null_keys_group_together() {
    let db = fixture();
    let r = rows(
        &db,
        "SELECT status, COUNT(*) FROM hkg_dim_segment GROUP BY status",
    );
    assert_eq!(r.len(), 3); // active, inactive, NULL
}

#[test]
fn select_literal_without_from() {
    let db = fixture();
    assert_eq!(scalar_i64(&db, "SELECT 42"), 42);
}

#[test]
fn deep_nesting_three_levels() {
    let db = fixture();
    let r = rows(
        &db,
        "SELECT name FROM singer WHERE singer_id IN (
            SELECT singer_id FROM singer_in_concert WHERE concert_id IN (
                SELECT concert_id FROM concert WHERE year = (SELECT MAX(year) FROM concert)))",
    );
    assert_eq!(r.len(), 3);
}

#[test]
fn empty_in_list_never_matches() {
    let db = fixture();
    let r = rows(&db, "SELECT name FROM singer WHERE singer_id IN (99, 98)");
    assert!(r.is_empty());
}
