//! Canonical normal form and semantic fingerprints for queries.
//!
//! [`canonicalize`] rewrites a [`Query`] to a canonical representative of
//! its semantic-equivalence class using a bounded rewrite-to-fixpoint
//! loop on top of [`normalize_query`]. Every rewrite is result-preserving
//! under the engine's three-valued, total-ordered evaluation semantics:
//!
//! - constant folding and boolean simplification (via [`flow::fold_expr`],
//!   already applied by normalize, re-applied after structural rewrites);
//! - `NOT` push-down: De Morgan over AND/OR, comparison complementation
//!   (`NOT (a < b)` → `a >= b`, sound because comparisons use a total
//!   value order and NULL operands yield NULL on both sides), flipping
//!   the `negated` field of IN/BETWEEN/LIKE/IS NULL/EXISTS, and
//!   double-negation elimination on boolean-shaped operands;
//! - flattening AND/OR chains into sorted operand sets (associative and
//!   commutative in Kleene logic; mirrors normalize's top-level conjunct
//!   sort);
//! - comparison orientation (literal on the right, otherwise smaller
//!   printed operand on the left via [`BinOp::flipped`]) and commutative
//!   operand ordering for `+`/`*` (wrapping integer and IEEE float
//!   addition/multiplication are commutative; the engine has no string
//!   concatenation, and operand evaluation is unconditional on both
//!   sides, so no error/short-circuit behaviour can differ);
//! - redundant-conjunct absorption: [`flow::analyze_conjunction`] reports
//!   `(redundant, implied_by)` pairs whose constraints share one key
//!   expression, so when the key is non-NULL implication holds and when
//!   it is NULL both conjuncts are NULL — dropping the redundant conjunct
//!   preserves the 3VL value of the conjunction row-by-row;
//! - guarded alias erasure: select-item aliases are dropped when no
//!   ORDER BY item resolves through them, and table aliases are renamed
//!   back to their table names when the query has no compound and no
//!   subqueries anywhere (so no derived scopes or correlation can observe
//!   the binding names) and the erased names stay pairwise distinct.
//!
//! [`canon_fingerprint`] hashes the canonical printed form with FNV-1a,
//! and [`canonically_equivalent`] subsumes both
//! [`structurally_equal`](crate::structurally_equal) and
//! [`provably_equivalent`](crate::provably_equivalent): canonical-form
//! equality extends structural equality (canonicalization starts from
//! normalize), and the prover is retained as a fallback for the
//! both-provably-empty case that no rewrite can witness.
//!
//! The oracle may miss equivalences; it must never invent them. The
//! soundness contract — equal fingerprints imply identical engine results
//! on any database — is fuzzed in `tests/property.rs`
//! (`canon_fingerprint_is_sound`).

use crate::ast::{BinOp, Expr, Query, SelectCore, SelectItem, TableFactor, UnaryOp};
use crate::flow;
use crate::normalize::normalize_query;
use crate::printer::{print_expr, print_query};
use std::collections::{HashMap, HashSet};

/// Upper bound on rewrite passes. Each pass strictly shrinks a measure
/// (NOT depth, unsorted chains, redundant conjuncts, live aliases) so
/// real inputs converge in 2–3 passes; the bound is a safety net that
/// keeps the function total on adversarial inputs.
const MAX_PASSES: usize = 8;

/// 64-bit FNV-1a, kept local so `sqlkit` stays dependency-free.
#[derive(Debug, Clone, Copy)]
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Hash arbitrary bytes with the same FNV-1a used for fingerprints.
///
/// Exposed so callers keying caches by exact printed SQL use one hash
/// family for both lanes.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Rewrite `query` to the canonical representative of its equivalence
/// class. Deterministic, total, and idempotent:
/// `canonicalize(&canonicalize(q)) == canonicalize(q)`.
pub fn canonicalize(query: &Query) -> Query {
    let mut q = normalize_query(query);
    for _ in 0..MAX_PASSES {
        let mut next = q.clone();
        canon_query(&mut next);
        erase_aliases(&mut next);
        // Re-normalize so folding opportunities exposed by the rewrites
        // (and the top-level conjunct sort) are reapplied before testing
        // for the fixpoint.
        next = normalize_query(&next);
        if next == q {
            break;
        }
        q = next;
    }
    q
}

/// Stable 64-bit semantic fingerprint: FNV-1a over the canonical printed
/// form. Equal fingerprints imply (modulo 64-bit collisions, which the
/// soundness proptest bounds empirically) identical engine results;
/// unequal fingerprints imply nothing.
pub fn canon_fingerprint(query: &Query) -> u64 {
    fnv64(print_query(&canonicalize(query)).as_bytes())
}

/// Semantic equivalence check subsuming `structurally_equal` and
/// `provably_equivalent`: canonical forms are compared first, and the
/// abstract-interpretation prover covers the both-provably-empty case
/// that rewriting cannot witness.
pub fn canonically_equivalent(a: &Query, b: &Query) -> bool {
    canonicalize(a) == canonicalize(b) || flow::provably_equivalent(a, b)
}

// ---------------------------------------------------------------------------
// Rewrite pass
// ---------------------------------------------------------------------------

fn canon_query(q: &mut Query) {
    for core in q.cores_mut() {
        canon_core(core);
    }
    for item in &mut q.order_by {
        canon_expr(&mut item.expr);
    }
}

fn canon_core(core: &mut SelectCore) {
    for item in &mut core.items {
        if let SelectItem::Expr { expr, .. } = item {
            canon_expr(expr);
        }
    }
    if let Some(from) = &mut core.from {
        canon_factor(&mut from.base);
        for join in &mut from.joins {
            canon_factor(&mut join.factor);
            if let Some(c) = &mut join.constraint {
                canon_expr(c);
            }
        }
    }
    if let Some(w) = &mut core.where_clause {
        canon_expr(w);
    }
    absorb_redundant(&mut core.where_clause);
    for g in &mut core.group_by {
        canon_expr(g);
    }
    if let Some(h) = &mut core.having {
        canon_expr(h);
    }
    absorb_redundant(&mut core.having);
}

fn canon_factor(factor: &mut TableFactor) {
    if let TableFactor::Derived { subquery, .. } = factor {
        canon_query(subquery);
    }
}

/// Canonicalize one expression tree bottom-up: children first (including
/// subquery bodies, which `Expr::walk_mut` deliberately skips), then a
/// local rewrite loop at this node. Structural rewrites (De Morgan)
/// produce children that need rewriting themselves, so the loop
/// re-descends after each hit; the NOT-measure strictly decreases, and a
/// node-count bound guards totality.
fn canon_expr(e: &mut Expr) {
    let mut fuel = 64usize;
    loop {
        canon_children(e);
        match rewrite_node(e) {
            Some(next) => *e = next,
            None => break,
        }
        fuel -= 1;
        if fuel == 0 {
            break;
        }
    }
}

fn canon_children(e: &mut Expr) {
    match e {
        Expr::Column(_) | Expr::Literal(_) | Expr::Wildcard => {}
        Expr::Unary { expr, .. } => canon_expr(expr),
        Expr::Binary { left, right, .. } => {
            canon_expr(left);
            canon_expr(right);
        }
        Expr::Call { args, .. } => {
            for a in args {
                canon_expr(a);
            }
        }
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            if let Some(op) = operand {
                canon_expr(op);
            }
            for (w, t) in branches {
                canon_expr(w);
                canon_expr(t);
            }
            if let Some(el) = else_branch {
                canon_expr(el);
            }
        }
        Expr::InList { expr, list, .. } => {
            canon_expr(expr);
            for v in list {
                canon_expr(v);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            canon_expr(expr);
            canon_query(subquery);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            canon_expr(expr);
            canon_expr(low);
            canon_expr(high);
        }
        Expr::Like { expr, pattern, .. } => {
            canon_expr(expr);
            canon_expr(pattern);
        }
        Expr::IsNull { expr, .. } => canon_expr(expr),
        Expr::Exists { subquery, .. } => canon_query(subquery),
        Expr::Subquery(subquery) => canon_query(subquery),
    }
}

/// One local rewrite step at `e`; `Some` means "changed, go again".
fn rewrite_node(e: &Expr) -> Option<Expr> {
    if let Some(folded) = flow::fold_expr(e) {
        return Some(folded);
    }
    match e {
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => rewrite_not(expr),
        Expr::Binary { left, op, right } => match op {
            // Flatten + sort associative-commutative boolean chains.
            // Sound in Kleene logic; matches normalize's top-level
            // conjunct sort, extended to nested chains and disjunctions.
            BinOp::And | BinOp::Or => sort_chain(e, *op),
            // Orient comparisons: normalize already moves literals to
            // the right; for two non-literal operands pick the smaller
            // printed form as the left operand. `a < b` and `b > a`
            // evaluate identically under the engine's total value order.
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                if !matches!(**left, Expr::Literal(_))
                    && !matches!(**right, Expr::Literal(_))
                    && print_expr(right) < print_expr(left)
                {
                    Some(Expr::Binary {
                        left: right.clone(),
                        op: op.flipped(),
                        right: left.clone(),
                    })
                } else {
                    None
                }
            }
            // `+` and `*` are commutative for wrapping integers, IEEE
            // floats, and the NULL-propagating mixed cases; both
            // operands are always evaluated, so swapping is observation-
            // free. No re-association (float `+` is not associative).
            BinOp::Add | BinOp::Mul => {
                if print_expr(right) < print_expr(left) {
                    Some(Expr::Binary {
                        left: right.clone(),
                        op: *op,
                        right: left.clone(),
                    })
                } else {
                    None
                }
            }
            _ => None,
        },
        _ => None,
    }
}

/// Push `NOT inner` downward. Every arm preserves the three-valued
/// result: the engine's `NOT` maps TRUE→FALSE, FALSE→TRUE, NULL→NULL,
/// and each rewritten form computes exactly that complement.
fn rewrite_not(inner: &Expr) -> Option<Expr> {
    match inner {
        // NOT NOT x → x, only when x itself evaluates to TRUE/FALSE/NULL
        // (`NOT NOT 5` is `TRUE` via to_bool, not `5`).
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } if flow::is_boolean_shaped(expr) => Some((**expr).clone()),
        Expr::Binary { left, op, right } => match op {
            // De Morgan; associativity/commutativity of Kleene AND/OR
            // and the engine's symmetric short-circuit evaluation keep
            // both value and evaluation pattern identical.
            BinOp::And => Some(Expr::Binary {
                left: Box::new(not(left)),
                op: BinOp::Or,
                right: Box::new(not(right)),
            }),
            BinOp::Or => Some(Expr::Binary {
                left: Box::new(not(left)),
                op: BinOp::And,
                right: Box::new(not(right)),
            }),
            _ => op.negated().map(|neg| Expr::Binary {
                left: left.clone(),
                op: neg,
                right: right.clone(),
            }),
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Some(Expr::InList {
            expr: expr.clone(),
            list: list.clone(),
            negated: !negated,
        }),
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => Some(Expr::InSubquery {
            expr: expr.clone(),
            subquery: subquery.clone(),
            negated: !negated,
        }),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Some(Expr::Between {
            expr: expr.clone(),
            low: low.clone(),
            high: high.clone(),
            negated: !negated,
        }),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Some(Expr::Like {
            expr: expr.clone(),
            pattern: pattern.clone(),
            negated: !negated,
        }),
        Expr::IsNull { expr, negated } => Some(Expr::IsNull {
            expr: expr.clone(),
            negated: !negated,
        }),
        Expr::Exists { subquery, negated } => Some(Expr::Exists {
            subquery: subquery.clone(),
            negated: !negated,
        }),
        _ => None,
    }
}

fn not(e: &Expr) -> Expr {
    Expr::Unary {
        op: UnaryOp::Not,
        expr: Box::new(e.clone()),
    }
}

/// Flatten the maximal same-operator chain rooted at `e`, sort the
/// operands by printed form, and rebuild left-associatively. Returns
/// `None` when already in sorted left-associative form (the fixpoint).
fn sort_chain(e: &Expr, op: BinOp) -> Option<Expr> {
    let mut operands = Vec::new();
    flatten_chain(e, op, &mut operands);
    let mut sorted: Vec<Expr> = operands.iter().map(|x| (*x).clone()).collect();
    sorted.sort_by_key(print_expr);
    let rebuilt = sorted
        .into_iter()
        .reduce(|acc, next| Expr::Binary {
            left: Box::new(acc),
            op,
            right: Box::new(next),
        })
        .expect("chain has at least two operands");
    if rebuilt == *e {
        None
    } else {
        Some(rebuilt)
    }
}

fn flatten_chain<'a>(e: &'a Expr, op: BinOp, out: &mut Vec<&'a Expr>) {
    match e {
        Expr::Binary {
            left,
            op: node_op,
            right,
        } if *node_op == op => {
            flatten_chain(left, op, out);
            flatten_chain(right, op, out);
        }
        other => out.push(other),
    }
}

// ---------------------------------------------------------------------------
// Redundant-conjunct absorption
// ---------------------------------------------------------------------------

/// Drop conjuncts that `flow::analyze_conjunction` proves implied by a
/// surviving sibling. A `(redundant, implied_by)` pair shares one key
/// expression, so for any row the key is either non-NULL (implication
/// makes the redundant conjunct's truth a consequence of the survivor's)
/// or NULL (both conjuncts are NULL); either way `AND`-ing the redundant
/// conjunct cannot change the conjunction's 3VL value while the
/// implying conjunct remains. A conjunct is dropped only when its
/// implier has not itself been dropped — and if the implier is dropped
/// later by a further pair, implication on a shared key is transitive,
/// so the final survivor still covers it.
fn absorb_redundant(clause: &mut Option<Expr>) {
    let Some(e) = clause else { return };
    let conjs: Vec<Expr> = e.conjuncts().into_iter().cloned().collect();
    if conjs.len() < 2 {
        return;
    }
    let refs: Vec<&Expr> = conjs.iter().collect();
    let facts = flow::analyze_conjunction(&refs);
    if facts.redundant.is_empty() {
        return;
    }
    let mut dropped: HashSet<usize> = HashSet::new();
    for (redundant, implied_by) in &facts.redundant {
        if redundant != implied_by && !dropped.contains(implied_by) {
            dropped.insert(*redundant);
        }
    }
    if dropped.is_empty() {
        return;
    }
    let kept: Vec<Expr> = conjs
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !dropped.contains(i))
        .map(|(_, c)| c)
        .collect();
    *clause = Expr::conjoin(kept);
}

// ---------------------------------------------------------------------------
// Alias erasure
// ---------------------------------------------------------------------------

/// Erase aliases that cannot be observed.
///
/// Select-item aliases only affect output labels — which no result
/// comparison reads — except when an ORDER BY item names the alias as a
/// bare column (the engine resolves select aliases there), so those are
/// kept. Table aliases are renamed back to their table names only when
/// the query is compound-free and subquery-free (no derived scope can
/// shadow and no correlated reference can escape) and the post-erasure
/// binding names stay pairwise distinct case-insensitively; qualified
/// column references are rewritten through the rename map in one
/// simultaneous pass.
fn erase_aliases(q: &mut Query) {
    if !q.compound.is_empty() {
        return;
    }
    erase_select_aliases(q);
    if query_has_subquery(q) {
        return;
    }
    erase_table_aliases(q);
}

fn erase_select_aliases(q: &mut Query) {
    let order_names: HashSet<String> = q
        .order_by
        .iter()
        .filter_map(|item| match &item.expr {
            Expr::Column(c) if c.table.is_none() => Some(c.column.clone()),
            _ => None,
        })
        .collect();
    for item in &mut q.core.items {
        if let SelectItem::Expr {
            alias: alias @ Some(_),
            ..
        } = item
        {
            let referenced = alias.as_deref().is_some_and(|a| order_names.contains(a));
            if !referenced {
                *alias = None;
            }
        }
    }
}

fn erase_table_aliases(q: &mut Query) {
    let Some(from) = &q.core.from else { return };
    // Build the simultaneous rename map alias → table name.
    let mut rename: HashMap<String, String> = HashMap::new();
    let mut final_names: Vec<String> = Vec::new();
    for factor in from.factors() {
        match factor {
            TableFactor::Table { name, alias } => {
                if let Some(a) = alias {
                    if a != name {
                        rename.insert(a.clone(), name.clone());
                    }
                }
                final_names.push(name.clone());
            }
            TableFactor::Derived { .. } => return,
        }
    }
    if rename.is_empty() {
        return;
    }
    // Post-erasure binding names must stay pairwise distinct (the engine
    // rejects duplicate bindings, and references would turn ambiguous).
    let mut seen: HashSet<String> = HashSet::new();
    for name in &final_names {
        if !seen.insert(name.to_lowercase()) {
            return;
        }
    }
    let rewrite = |e: &mut Expr| {
        e.walk_mut(&mut |node| {
            if let Expr::Column(c) = node {
                if let Some(t) = &c.table {
                    if let Some(real) = rename.get(t) {
                        c.table = Some(real.clone());
                    }
                }
            }
        });
    };
    let core = &mut q.core;
    for item in &mut core.items {
        if let SelectItem::Expr { expr, .. } = item {
            rewrite(expr);
        }
    }
    if let Some(from) = &mut core.from {
        strip_table_alias(&mut from.base);
        for join in &mut from.joins {
            strip_table_alias(&mut join.factor);
            if let Some(c) = &mut join.constraint {
                rewrite(c);
            }
        }
    }
    if let Some(w) = &mut core.where_clause {
        rewrite(w);
    }
    for g in &mut core.group_by {
        rewrite(g);
    }
    if let Some(h) = &mut core.having {
        rewrite(h);
    }
    for item in &mut q.order_by {
        rewrite(&mut item.expr);
    }
    // Qualified wildcards (`a.*`) also resolve through binding names.
    for item in &mut core.items {
        if let SelectItem::QualifiedWildcard(t) = item {
            if let Some(real) = rename.get(t) {
                *t = real.clone();
            }
        }
    }
}

fn strip_table_alias(factor: &mut TableFactor) {
    if let TableFactor::Table { alias, .. } = factor {
        *alias = None;
    }
}

fn query_has_subquery(q: &Query) -> bool {
    q.cores().any(core_has_subquery) || q.order_by.iter().any(|i| expr_has_subquery(&i.expr))
}

fn core_has_subquery(core: &SelectCore) -> bool {
    let in_items = core.items.iter().any(|item| match item {
        SelectItem::Expr { expr, .. } => expr_has_subquery(expr),
        _ => false,
    });
    let in_from = core.from.as_ref().is_some_and(|from| {
        from.factors()
            .any(|f| matches!(f, TableFactor::Derived { .. }))
            || from
                .joins
                .iter()
                .any(|j| j.constraint.as_ref().is_some_and(expr_has_subquery))
    });
    in_items
        || in_from
        || core.where_clause.as_ref().is_some_and(expr_has_subquery)
        || core.group_by.iter().any(expr_has_subquery)
        || core.having.as_ref().is_some_and(expr_has_subquery)
}

fn expr_has_subquery(e: &Expr) -> bool {
    let mut found = false;
    e.walk(&mut |node| {
        if matches!(
            node,
            Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::Subquery(_)
        ) {
            found = true;
        }
    });
    found
}

/// Erase a literal-only canonical detail: `TRUE`/`FALSE` spelled as
/// `1 = 1` style tautologies are already folded by normalize, so no
/// extra handling is needed here. (Kept as a documentation anchor.)
#[allow(dead_code)]
fn _canonical_form_notes() {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn canon_sql(sql: &str) -> String {
        print_query(&canonicalize(&parse_query(sql).unwrap()))
    }

    fn equivalent(a: &str, b: &str) -> bool {
        canonically_equivalent(&parse_query(a).unwrap(), &parse_query(b).unwrap())
    }

    #[test]
    fn de_morgan_and_comparison_negation() {
        assert!(equivalent(
            "SELECT a FROM t WHERE NOT (a < 1 AND b = 2)",
            "SELECT a FROM t WHERE a >= 1 OR b != 2",
        ));
        assert!(equivalent(
            "SELECT a FROM t WHERE NOT (a = 1 OR b > 2)",
            "SELECT a FROM t WHERE a != 1 AND b <= 2",
        ));
    }

    #[test]
    fn double_negation_needs_boolean_shape() {
        assert!(equivalent(
            "SELECT a FROM t WHERE NOT NOT (a = 1)",
            "SELECT a FROM t WHERE a = 1",
        ));
        // NOT NOT a is to_bool(a), not a — must NOT collapse to `a`.
        let q = parse_query("SELECT a FROM t WHERE NOT NOT a").unwrap();
        let c = canonicalize(&q);
        assert!(print_query(&c).contains("NOT"), "kept: {}", print_query(&c));
    }

    #[test]
    fn negated_field_flips() {
        assert!(equivalent(
            "SELECT a FROM t WHERE NOT (a IN (1, 2))",
            "SELECT a FROM t WHERE a NOT IN (2, 1)",
        ));
        assert!(equivalent(
            "SELECT a FROM t WHERE NOT (a IS NULL)",
            "SELECT a FROM t WHERE a IS NOT NULL",
        ));
        assert!(equivalent(
            "SELECT a FROM t WHERE NOT (a BETWEEN 1 AND 3)",
            "SELECT a FROM t WHERE a NOT BETWEEN 1 AND 3",
        ));
    }

    #[test]
    fn disjunct_and_operand_ordering() {
        assert!(equivalent(
            "SELECT a FROM t WHERE b = 2 OR a = 1",
            "SELECT a FROM t WHERE a = 1 OR b = 2",
        ));
        assert!(equivalent("SELECT b + a FROM t", "SELECT a + b FROM t",));
        assert!(equivalent("SELECT b * a FROM t", "SELECT a * b FROM t",));
        // Subtraction is not commutative.
        assert!(!equivalent("SELECT b - a FROM t", "SELECT a - b FROM t"));
    }

    #[test]
    fn comparison_orientation_between_columns() {
        assert!(equivalent(
            "SELECT a FROM t WHERE b > a",
            "SELECT a FROM t WHERE a < b",
        ));
        assert!(equivalent(
            "SELECT a FROM t WHERE b >= a",
            "SELECT a FROM t WHERE a <= b",
        ));
    }

    #[test]
    fn redundant_conjunct_absorption() {
        assert!(equivalent(
            "SELECT a FROM t WHERE a > 1 AND a > 0",
            "SELECT a FROM t WHERE a > 1",
        ));
        assert!(equivalent(
            "SELECT a FROM t WHERE a = 5 AND a > 0 AND a < 10",
            "SELECT a FROM t WHERE a = 5",
        ));
        // Non-redundant conjuncts survive.
        assert!(!equivalent(
            "SELECT a FROM t WHERE a > 1 AND b > 0",
            "SELECT a FROM t WHERE a > 1",
        ));
    }

    #[test]
    fn alias_erasure() {
        assert!(equivalent(
            "SELECT x.a FROM t AS x WHERE x.b = 1",
            "SELECT t.a FROM t WHERE t.b = 1",
        ));
        assert!(equivalent("SELECT a AS z FROM t", "SELECT a FROM t",));
        // Alias referenced by ORDER BY must survive.
        let c = canon_sql("SELECT a AS z FROM t ORDER BY z");
        assert!(c.contains("AS z"), "kept alias: {c}");
        // Self-join aliases: renaming would collide, so both stay.
        let c = canon_sql("SELECT x.a FROM t AS x JOIN t AS y ON x.a = y.a");
        assert!(c.contains("AS"), "kept aliases: {c}");
    }

    #[test]
    fn alias_erasure_skips_subqueries() {
        // Correlated scopes could be captured by renames; guarded out.
        let sql = "SELECT x.a FROM t AS x WHERE EXISTS (SELECT 1 FROM s WHERE s.b = x.a)";
        let c = canon_sql(sql);
        assert!(c.contains("AS x"), "kept alias: {c}");
    }

    #[test]
    fn swapped_alias_pair_renames_simultaneously() {
        // FROM a AS b JOIN b AS c: the map {b→a, c→b} must apply in one
        // pass so the original `b.x` (alias of table a) does not get
        // re-renamed through the second entry.
        assert!(equivalent(
            "SELECT b.x, c.y FROM a AS b JOIN c ON b.x = c.y",
            "SELECT a.x, c.y FROM a JOIN c ON a.x = c.y",
        ));
    }

    #[test]
    fn fingerprint_matches_equivalence() {
        let a = parse_query("SELECT a FROM t WHERE NOT (a < 1 AND b = 2)").unwrap();
        let b = parse_query("SELECT a FROM t WHERE b != 2 OR a >= 1").unwrap();
        assert_eq!(canon_fingerprint(&a), canon_fingerprint(&b));
        let c = parse_query("SELECT a FROM t WHERE b != 2 OR a > 1").unwrap();
        assert_ne!(canon_fingerprint(&a), canon_fingerprint(&c));
    }

    #[test]
    fn canonicalize_is_idempotent_on_samples() {
        for sql in [
            "SELECT a FROM t WHERE NOT (a < 1 AND NOT (b = 2 OR c IS NULL))",
            "SELECT x.a AS q FROM t AS x WHERE x.b > 1 AND x.b > 0 ORDER BY q",
            "SELECT COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1 AND COUNT(*) > 0",
            "SELECT a FROM t WHERE a IN (3, 1, 2) OR NOT (b >= 4)",
        ] {
            let q = parse_query(sql).unwrap();
            let once = canonicalize(&q);
            let twice = canonicalize(&once);
            assert_eq!(once, twice, "not idempotent for {sql}");
        }
    }

    #[test]
    fn subsumes_structural_and_provable_equivalence() {
        let pairs = [
            ("SELECT a FROM t WHERE a = 1", "SELECT a FROM t WHERE 1 = a"),
            (
                "SELECT a FROM t WHERE a > 1 AND a < 0",
                "SELECT a FROM t WHERE FALSE",
            ),
        ];
        for (x, y) in pairs {
            let qx = parse_query(x).unwrap();
            let qy = parse_query(y).unwrap();
            if crate::normalize::structurally_equal(&qx, &qy) || flow::provably_equivalent(&qx, &qy)
            {
                assert!(canonically_equivalent(&qx, &qy), "{x} vs {y}");
            }
        }
    }
}
