//! Static semantic analysis of SQL queries against a database schema.
//!
//! FISQL's correction loop (§3.3) regenerates SQL from feedback and — in
//! the seed pipeline — only discovers a bad query at execution time. This
//! module moves that discovery *before* execution: [`check_query`]
//! resolves every table/column reference, type-checks expressions, and
//! lints semantic misuse, returning span-anchored [`Diagnostic`]s with
//! repair hints. [`repair_query`] additionally attempts a minimal
//! structure-preserving repair (nearest-name substitution over the
//! schema), so a candidate with a *typo-level* hallucinated name can be
//! fixed without burning an engine execution.
//!
//! ## Severity calibration
//!
//! Severities mirror the engine's behaviour, which is deliberately
//! SQLite-lenient in many corners:
//!
//! - [`Severity::Error`] — the engine would (or could, once rows exist)
//!   refuse to execute the query: unknown/ambiguous names, duplicate
//!   bindings, aggregates in WHERE, arity violations, misplaced `*`,
//!   set-operation/subquery arity mismatches, unresolvable ORDER BY
//!   targets after a set operation.
//! - [`Severity::Warning`] — the query executes but is suspicious:
//!   cross-class comparisons (the engine total-orders values), arithmetic
//!   on text, non-grouped columns under GROUP BY (the engine takes the
//!   group's first row), HAVING without aggregation (silently ignored in
//!   row mode), join conditions that don't connect the joined relation,
//!   `LIMIT 0`, extra function arguments (ignored).
//!
//! The analyzer may be *stricter* than the lazily-erroring engine (an
//! unknown column in a query over an empty table executes fine but is
//! still an [`DiagCode::UnknownColumn`] error here); it must never be
//! *laxer* on queries the corpus generators produce — `tests/property.rs`
//! holds it to that: analyzer-clean generated queries never fail engine
//! execution.
//!
//! ## Spans
//!
//! Diagnostics anchor to byte spans of the *canonically printed* SQL
//! ([`crate::printer::print_query_spanned`]), via the printer's atom-span
//! records. When the same atom text occurs several times, spans are
//! matched by occurrence order (best effort — an off-by-one between two
//! identical atoms still points at the same text).

use crate::ast::*;
use crate::flow;
use crate::printer::{print_expr, print_query_spanned, SpannedSql};
use crate::span::Span;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

// ---------------------------------------------------------------------------
// Schema description
// ---------------------------------------------------------------------------

/// Column type as the analyzer sees it (mirrors `engine::DataType`
/// without depending on the engine crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ColType {
    Int,
    Float,
    Text,
    Bool,
    Date,
}

impl ColType {
    /// Whether values of this type are numbers.
    pub fn is_numeric(&self) -> bool {
        matches!(self, ColType::Int | ColType::Float)
    }

    /// Whether values of this type are stored as text (dates are ISO
    /// strings in the engine, so they compare against string literals).
    pub fn is_textual(&self) -> bool {
        matches!(self, ColType::Text | ColType::Date)
    }

    /// Whether two types live in the same comparison class (the engine
    /// total-orders across classes, but a cross-class comparison is
    /// almost certainly a mistake).
    pub fn comparable_with(&self, other: ColType) -> bool {
        self.is_numeric() == other.is_numeric() && self.is_textual() == other.is_textual()
            || *self == other
    }

    /// Lower-case display name.
    pub fn name(&self) -> &'static str {
        match self {
            ColType::Int => "int",
            ColType::Float => "float",
            ColType::Text => "text",
            ColType::Bool => "bool",
            ColType::Date => "date",
        }
    }
}

impl fmt::Display for ColType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One column of a schema table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnInfo {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ctype: ColType,
}

/// A foreign-key edge, by column *names* (the engine stores indices; the
/// introspection layer resolves them).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FkInfo {
    /// Referencing column on the owning table.
    pub column: String,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced column on that table.
    pub ref_column: String,
}

/// One table of the schema under analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableInfo {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnInfo>,
    /// Primary-key column name, if any.
    pub primary_key: Option<String>,
    /// Outgoing foreign keys.
    pub foreign_keys: Vec<FkInfo>,
}

impl TableInfo {
    /// Builds a table description from `(name, type)` pairs.
    pub fn new(name: impl Into<String>, columns: Vec<(&str, ColType)>) -> Self {
        TableInfo {
            name: name.into(),
            columns: columns
                .into_iter()
                .map(|(n, t)| ColumnInfo {
                    name: n.to_string(),
                    ctype: t,
                })
                .collect(),
            primary_key: None,
            foreign_keys: Vec::new(),
        }
    }

    /// Case-insensitive column lookup.
    pub fn column(&self, name: &str) -> Option<&ColumnInfo> {
        self.columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Adds a foreign-key edge (builder style).
    pub fn with_fk(mut self, column: &str, ref_table: &str, ref_column: &str) -> Self {
        self.foreign_keys.push(FkInfo {
            column: column.to_string(),
            ref_table: ref_table.to_string(),
            ref_column: ref_column.to_string(),
        });
        self
    }
}

/// The full schema a query is analyzed against.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemaInfo {
    /// Tables of the database.
    pub tables: Vec<TableInfo>,
}

impl SchemaInfo {
    /// Builds a schema from tables.
    pub fn new(tables: Vec<TableInfo>) -> Self {
        SchemaInfo { tables }
    }

    /// Case-insensitive table lookup.
    pub fn table(&self, name: &str) -> Option<&TableInfo> {
        self.tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// All table names.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.iter().map(|t| t.name.as_str()).collect()
    }
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// Diagnostic severity. `Error` means the engine would (or could, once
/// rows exist) refuse the query; `Warning` means it executes but is
/// suspicious.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Executes, but probably not what was meant.
    Warning,
    /// Would fail (or silently misbehave in a way execution can't mask).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Typed diagnostic codes emitted by [`check_query`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiagCode {
    /// FROM references a table the schema does not have.
    UnknownTable,
    /// A column reference resolves to no in-scope table.
    UnknownColumn,
    /// An unqualified column name matches more than one in-scope table.
    AmbiguousColumn,
    /// Two FROM factors bind the same name.
    DuplicateAlias,
    /// An aggregate call inside WHERE (the engine rejects this eagerly).
    AggregateInWhere,
    /// An aggregate call nested inside another aggregate's argument.
    NestedAggregate,
    /// `*` outside `COUNT(*)` / the SELECT list, or `SELECT *` without FROM.
    MisplacedWildcard,
    /// Too few arguments for a function.
    BadArity,
    /// More arguments than the function consumes (the engine ignores them).
    ExtraArgument,
    /// A function argument of the wrong type class.
    BadArgType,
    /// A comparison or arithmetic across incompatible type classes.
    TypeMismatch,
    /// A selected column neither grouped nor aggregated under GROUP BY.
    UngroupedColumn,
    /// HAVING without GROUP BY or aggregation (ignored in row mode).
    HavingWithoutAggregate,
    /// A join condition that does not connect the joined relation.
    DisconnectedJoin,
    /// Set-operation arms with different output arities.
    SetOpArity,
    /// A scalar / IN subquery producing more than one column.
    SubqueryArity,
    /// An ORDER BY target the query cannot resolve (after a set
    /// operation: neither an in-range ordinal nor an output column; in a
    /// simple query: an out-of-range ordinal, which sorts by a constant).
    OrderByTarget,
    /// `LIMIT 0` — the query can never return rows.
    LimitZero,
    /// A predicate (or pair of predicates on one key) no row can satisfy,
    /// proved by the flow pass's constant/interval domain.
    ContradictoryPredicate,
    /// A predicate every row satisfies — it filters nothing.
    TautologicalPredicate,
    /// A predicate implied by another conjunct on the same key.
    RedundantPredicate,
    /// A join whose ON condition can never be satisfied.
    ImpossibleJoin,
}

impl DiagCode {
    /// Stable kebab-case code string (used in reports and tests).
    pub fn as_str(&self) -> &'static str {
        match self {
            DiagCode::UnknownTable => "unknown-table",
            DiagCode::UnknownColumn => "unknown-column",
            DiagCode::AmbiguousColumn => "ambiguous-column",
            DiagCode::DuplicateAlias => "duplicate-alias",
            DiagCode::AggregateInWhere => "aggregate-in-where",
            DiagCode::NestedAggregate => "nested-aggregate",
            DiagCode::MisplacedWildcard => "misplaced-wildcard",
            DiagCode::BadArity => "bad-arity",
            DiagCode::ExtraArgument => "extra-argument",
            DiagCode::BadArgType => "bad-arg-type",
            DiagCode::TypeMismatch => "type-mismatch",
            DiagCode::UngroupedColumn => "ungrouped-column",
            DiagCode::HavingWithoutAggregate => "having-without-aggregate",
            DiagCode::DisconnectedJoin => "disconnected-join",
            DiagCode::SetOpArity => "set-op-arity",
            DiagCode::SubqueryArity => "subquery-arity",
            DiagCode::OrderByTarget => "order-by-target",
            DiagCode::LimitZero => "limit-zero",
            DiagCode::ContradictoryPredicate => "contradictory-predicate",
            DiagCode::TautologicalPredicate => "tautological-predicate",
            DiagCode::RedundantPredicate => "redundant-predicate",
            DiagCode::ImpossibleJoin => "impossible-join",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One analyzer finding: a typed code, a severity, the byte span of the
/// offending atom in the canonically printed SQL, a human message, and an
/// optional repair hint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Typed code.
    pub code: DiagCode,
    /// Error (would fail execution) or warning (lint).
    pub severity: Severity,
    /// Byte span in `print_query(..)`'s output.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
    /// Suggested repair, when one exists.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// Whether this finding gates execution.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Renders the diagnostic against the printed SQL it anchors to.
    pub fn render(&self, sql: &str) -> String {
        let mut out = format!("{}[{}]: {}", self.severity, self.code, self.message);
        let snippet = self.span.slice(sql);
        if !snippet.is_empty() {
            out.push_str(&format!(" — at bytes {} `{}`", self.span, snippet));
        }
        if let Some(h) = &self.hint {
            out.push_str(&format!(" (hint: {h})"));
        }
        out
    }
}

/// Renders a full diagnostic report for the given printed SQL, one
/// finding per line (errors first). Empty string when there are none.
pub fn render_report(sql: &str, diags: &[Diagnostic]) -> String {
    let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
    sorted.sort_by_key(|d| (std::cmp::Reverse(d.severity), d.span.start));
    sorted.iter().fold(String::new(), |mut out, d| {
        out.push_str("- ");
        out.push_str(&d.render(sql));
        out.push('\n');
        out
    })
}

// ---------------------------------------------------------------------------
// Edit distance + nearest-name hints
// ---------------------------------------------------------------------------

/// Case-insensitive Levenshtein distance.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().flat_map(|c| c.to_lowercase()).collect();
    let b: Vec<char> = b.chars().flat_map(|c| c.to_lowercase()).collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The unique nearest candidate within `max_dist`, or `None` when there
/// is no candidate in range or the best distance is tied.
pub fn nearest_name<'a, I>(name: &str, candidates: I, max_dist: usize) -> Option<&'a str>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut best: Option<(&str, usize)> = None;
    let mut tied = false;
    for c in candidates {
        if c.eq_ignore_ascii_case(name) {
            continue;
        }
        let d = edit_distance(name, c);
        if d > max_dist {
            continue;
        }
        match best {
            Some((_, bd)) if d > bd => {}
            Some((_, bd)) if d == bd => tied = true,
            _ => {
                best = Some((c, d));
                tied = false;
            }
        }
    }
    match (best, tied) {
        (Some((c, _)), false) => Some(c),
        _ => None,
    }
}

/// Hint distance: liberal (suggestions are for the re-prompt).
const HINT_DIST: usize = 3;
/// Auto-repair distance: conservative (typo-level only), so the repair
/// never rewrites a semantically different name.
const REPAIR_DIST: usize = 2;

// ---------------------------------------------------------------------------
// Span source: atom spans by occurrence order
// ---------------------------------------------------------------------------

struct SpanSource {
    spanned: SpannedSql,
    by_atom: HashMap<String, Vec<Span>>,
    cursors: HashMap<String, usize>,
}

impl SpanSource {
    fn new(query: &Query) -> Self {
        let spanned = print_query_spanned(query);
        let mut by_atom: HashMap<String, Vec<Span>> = HashMap::new();
        for (a, s) in &spanned.atoms {
            by_atom.entry(a.clone()).or_default().push(*s);
        }
        SpanSource {
            spanned,
            by_atom,
            cursors: HashMap::new(),
        }
    }

    fn whole(&self) -> Span {
        Span::new(0, self.spanned.text.len())
    }

    /// The span of the next unconsumed occurrence of `atom` (falling back
    /// to the first occurrence, then the whole query).
    fn next(&mut self, atom: &str) -> Span {
        match self.by_atom.get(atom) {
            Some(spans) => {
                let cur = self.cursors.entry(atom.to_string()).or_insert(0);
                let span = spans.get(*cur).or_else(|| spans.first()).copied();
                *cur += 1;
                span.unwrap_or_else(|| Span::new(0, self.spanned.text.len()))
            }
            None => self.whole(),
        }
    }

    /// Clause span of the outermost query (fallback: whole query).
    fn clause(&self, path: &ClausePath) -> Span {
        self.spanned.span_of(path).unwrap_or_else(|| self.whole())
    }
}

// ---------------------------------------------------------------------------
// Scopes
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct BindingCol {
    name: String,
    ctype: Option<ColType>,
}

#[derive(Debug, Clone)]
struct ScopeBinding {
    /// The name this factor binds (alias, or table name).
    name: String,
    /// Underlying schema table name, when the factor is a known table.
    table: Option<String>,
    /// Known output columns; meaningless when `open`.
    columns: Vec<BindingCol>,
    /// True when the column set is unknowable (unknown table, or a
    /// derived table whose projection could not be expanded): resolution
    /// against an open binding succeeds silently.
    open: bool,
}

struct Scope<'a> {
    bindings: &'a [ScopeBinding],
    parent: Option<&'a Scope<'a>>,
}

enum Lookup {
    /// Resolved; type known or not.
    Found(Option<ColType>),
    /// Matches several bindings at one scope level.
    Ambiguous(Vec<String>),
    /// The qualifier names a known binding, but the column is not on it.
    NotInBinding(String),
    /// No binding resolves the reference anywhere in the scope chain.
    NotFound,
}

impl Scope<'_> {
    fn resolve(&self, cref: &ColumnRef) -> Lookup {
        if let Some(q) = &cref.table {
            let mut level: Option<&Scope<'_>> = Some(self);
            while let Some(s) = level {
                if let Some(b) = s
                    .bindings
                    .iter()
                    .find(|b| b.name.eq_ignore_ascii_case(q.as_str()))
                {
                    if b.open {
                        return Lookup::Found(None);
                    }
                    return match b
                        .columns
                        .iter()
                        .find(|c| c.name.eq_ignore_ascii_case(&cref.column))
                    {
                        Some(c) => Lookup::Found(c.ctype),
                        None => Lookup::NotInBinding(b.name.clone()),
                    };
                }
                level = s.parent;
            }
            return Lookup::NotFound;
        }
        // Unqualified: innermost scope level with a match wins; an open
        // binding at a level suppresses NotFound for that level.
        let mut level: Option<&Scope<'_>> = Some(self);
        while let Some(s) = level {
            let matches: Vec<&ScopeBinding> = s
                .bindings
                .iter()
                .filter(|b| {
                    !b.open
                        && b.columns
                            .iter()
                            .any(|c| c.name.eq_ignore_ascii_case(&cref.column))
                })
                .collect();
            match matches.len() {
                1 => {
                    let ty = matches[0]
                        .columns
                        .iter()
                        .find(|c| c.name.eq_ignore_ascii_case(&cref.column))
                        .and_then(|c| c.ctype);
                    return Lookup::Found(ty);
                }
                0 => {
                    if s.bindings.iter().any(|b| b.open) {
                        return Lookup::Found(None);
                    }
                }
                _ => return Lookup::Ambiguous(matches.iter().map(|b| b.name.clone()).collect()),
            }
            level = s.parent;
        }
        Lookup::NotFound
    }

    /// Every column name visible from this scope (for nearest-name hints).
    fn visible_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        let mut level: Option<&Scope<'_>> = Some(self);
        while let Some(s) = level {
            for b in s.bindings {
                out.extend(b.columns.iter().map(|c| c.name.as_str()));
            }
            level = s.parent;
        }
        out
    }
}

// ---------------------------------------------------------------------------
// The checker
// ---------------------------------------------------------------------------

/// Which clause an expression is being checked in (drives aggregate
/// legality and severity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Clause {
    Select,
    On,
    Where,
    GroupBy,
    Having,
    OrderBy,
}

#[derive(Clone, Copy)]
struct ExprCtx {
    clause: Clause,
    /// Inside an aggregate call's argument.
    in_agg: bool,
}

/// Result of checking one expression.
struct Typed {
    ty: Option<ColType>,
    /// Span of the expression's first column atom (anchor for
    /// expression-level diagnostics).
    anchor: Option<Span>,
}

impl Typed {
    fn unknown() -> Typed {
        Typed {
            ty: None,
            anchor: None,
        }
    }
}

/// One output column of a select core (for set-op arity, ORDER BY name
/// resolution, and derived-table binding construction).
#[derive(Debug, Clone)]
struct OutputCol {
    name: String,
    ctype: Option<ColType>,
}

struct Checker<'s> {
    schema: &'s SchemaInfo,
    spans: SpanSource,
    diags: Vec<Diagnostic>,
    /// Bare (non-aggregated) columns of the select item currently being
    /// checked, for the ungrouped-column lint.
    bare_cols: Vec<(ColumnRef, Span)>,
    collect_bare: bool,
}

/// Statically analyzes `query` against `schema`.
///
/// Diagnostics anchor to byte spans of [`crate::print_query`]'s output
/// for the same query. The analyzer never panics on any AST the parser or
/// the corpus generators produce.
pub fn check_query(query: &Query, schema: &SchemaInfo) -> Vec<Diagnostic> {
    let mut checker = Checker {
        schema,
        spans: SpanSource::new(query),
        diags: Vec::new(),
        bare_cols: Vec::new(),
        collect_bare: false,
    };
    checker.check_query_scoped(query, None);
    checker.check_flow(query);
    checker
        .diags
        .sort_by_key(|d| (std::cmp::Reverse(d.severity), d.span.start));
    // Dedupe findings with identical code + span at collection: scoped
    // checking and the flow pass can both anchor a finding to the same
    // atom (and span fallbacks can collapse distinct anchors onto one
    // range). Emitting the duplicate would double-weight the finding in
    // re-prompt folding and fault localization.
    let mut seen: std::collections::HashSet<(DiagCode, usize, usize)> =
        std::collections::HashSet::new();
    checker
        .diags
        .retain(|d| seen.insert((d.code, d.span.start, d.span.end)));
    checker.diags
}

impl Checker<'_> {
    fn push(
        &mut self,
        code: DiagCode,
        severity: Severity,
        span: Span,
        message: String,
        hint: Option<String>,
    ) {
        self.diags.push(Diagnostic {
            code,
            severity,
            span,
            message,
            hint,
        });
    }

    /// Checks a whole query (cores + set ops + trailing ORDER BY/LIMIT)
    /// in `parent` scope; returns the output columns when derivable.
    fn check_query_scoped(
        &mut self,
        q: &Query,
        parent: Option<&Scope<'_>>,
    ) -> Option<Vec<OutputCol>> {
        let first = self.check_core(&q.core, parent);
        let mut arities: Vec<Option<usize>> = vec![first.as_ref().map(|c| c.len())];
        for (_, core) in &q.compound {
            let shape = self.check_core(core, parent);
            arities.push(shape.map(|c| c.len()));
        }
        // Set-operation arity.
        if let Some(base_arity) = arities[0] {
            for (i, arity) in arities.iter().enumerate().skip(1) {
                if let Some(a) = arity {
                    if *a != base_arity {
                        let span = self.spans.clause(&ClausePath::Compound(i - 1));
                        self.push(
                            DiagCode::SetOpArity,
                            Severity::Error,
                            span,
                            format!("set operation combines {base_arity} column(s) with {a}"),
                            Some("make every arm select the same number of columns".into()),
                        );
                    }
                }
            }
        }
        self.check_order_by(q, first.as_deref(), parent);
        if let Some(limit) = &q.limit {
            if limit.count == 0 {
                let span = self.spans.clause(&ClausePath::Limit);
                self.push(
                    DiagCode::LimitZero,
                    Severity::Warning,
                    span,
                    "LIMIT 0 can never return rows".into(),
                    None,
                );
            }
        }
        first
    }

    fn check_order_by(
        &mut self,
        q: &Query,
        output: Option<&[OutputCol]>,
        parent: Option<&Scope<'_>>,
    ) {
        if q.order_by.is_empty() {
            return;
        }
        if q.is_simple() {
            // Simple query: ordinals and output names resolve against the
            // projection; anything else evaluates in the source scope.
            let bindings = self.core_bindings(&q.core, parent);
            let scope = Scope {
                bindings: &bindings,
                parent,
            };
            for item in &q.order_by {
                if let Expr::Literal(Literal::Number(n)) = &item.expr {
                    if let Some(out) = output {
                        if *n < 1 || *n as usize > out.len() {
                            let span = self.spans.clause(&ClausePath::OrderBy);
                            self.push(
                                DiagCode::OrderByTarget,
                                Severity::Warning,
                                span,
                                format!(
                                    "ORDER BY {n} is out of range for {} output column(s); \
                                     the sort key is a constant",
                                    out.len()
                                ),
                                None,
                            );
                        }
                    }
                    continue;
                }
                if let Expr::Column(c) = &item.expr {
                    let named = output.is_some_and(|out| {
                        c.table.is_none()
                            && out.iter().any(|o| o.name.eq_ignore_ascii_case(&c.column))
                    });
                    if named {
                        // Resolves by output name/alias; consume the atom
                        // span to keep later cursors aligned.
                        self.spans.next(&c.to_string());
                        continue;
                    }
                }
                let ctx = ExprCtx {
                    clause: Clause::OrderBy,
                    in_agg: false,
                };
                self.check_expr(&item.expr, &scope, ctx);
            }
        } else {
            // After a set operation the engine *eagerly* requires an
            // in-range ordinal or an unqualified output-column name.
            for item in &q.order_by {
                match &item.expr {
                    Expr::Literal(Literal::Number(n)) => {
                        if let Some(out) = output {
                            if *n < 1 || *n as usize > out.len() {
                                let span = self.spans.clause(&ClausePath::OrderBy);
                                self.push(
                                    DiagCode::OrderByTarget,
                                    Severity::Error,
                                    span,
                                    format!(
                                        "ORDER BY {n} is out of range for {} output column(s) \
                                         after a set operation",
                                        out.len()
                                    ),
                                    None,
                                );
                            }
                        }
                    }
                    Expr::Column(c) if c.table.is_none() => {
                        let span = self.spans.next(&c.to_string());
                        if let Some(out) = output {
                            if !out.iter().any(|o| o.name.eq_ignore_ascii_case(&c.column)) {
                                let hint = nearest_name(
                                    &c.column,
                                    out.iter().map(|o| o.name.as_str()),
                                    HINT_DIST,
                                )
                                .map(|n| format!("did you mean output column `{n}`?"));
                                self.push(
                                    DiagCode::OrderByTarget,
                                    Severity::Error,
                                    span,
                                    format!(
                                        "ORDER BY after a set operation must name an output \
                                         column; `{c}` is not one"
                                    ),
                                    hint,
                                );
                            }
                        }
                    }
                    other => {
                        let span = self.spans.clause(&ClausePath::OrderBy);
                        self.push(
                            DiagCode::OrderByTarget,
                            Severity::Error,
                            span,
                            format!(
                                "ORDER BY after a set operation must be an output column or \
                                 ordinal, got `{}`",
                                print_expr(other)
                            ),
                            None,
                        );
                    }
                }
            }
        }
    }

    // -- FROM / scope construction ------------------------------------------

    /// Builds the scope bindings for a core *without* emitting diagnostics
    /// (used when a clause needs the scope re-derived, e.g. ORDER BY).
    fn core_bindings(
        &mut self,
        core: &SelectCore,
        parent: Option<&Scope<'_>>,
    ) -> Vec<ScopeBinding> {
        let Some(from) = &core.from else {
            return Vec::new();
        };
        from.factors()
            .map(|f| self.binding_for(f, parent, false))
            .collect()
    }

    /// Builds one binding; `report` controls diagnostic emission (and atom
    /// span consumption) so the same factor is only reported once.
    fn binding_for(
        &mut self,
        factor: &TableFactor,
        parent: Option<&Scope<'_>>,
        report: bool,
    ) -> ScopeBinding {
        match factor {
            TableFactor::Table { name, alias } => {
                let span = if report {
                    self.spans.next(name)
                } else {
                    self.spans.whole()
                };
                match self.schema.table(name) {
                    Some(t) => ScopeBinding {
                        name: alias.clone().unwrap_or_else(|| name.clone()),
                        table: Some(t.name.clone()),
                        columns: t
                            .columns
                            .iter()
                            .map(|c| BindingCol {
                                name: c.name.clone(),
                                ctype: Some(c.ctype),
                            })
                            .collect(),
                        open: false,
                    },
                    None => {
                        if report {
                            let hint = nearest_name(name, self.schema.table_names(), HINT_DIST)
                                .map(|n| format!("did you mean table `{n}`?"));
                            self.push(
                                DiagCode::UnknownTable,
                                Severity::Error,
                                span,
                                format!("unknown table `{name}`"),
                                hint,
                            );
                        }
                        ScopeBinding {
                            name: alias.clone().unwrap_or_else(|| name.clone()),
                            table: None,
                            columns: Vec::new(),
                            open: true,
                        }
                    }
                }
            }
            TableFactor::Derived { subquery, alias } => {
                let shape = if report {
                    self.check_query_scoped(subquery, parent)
                } else {
                    self.output_shape_only(subquery, parent)
                };
                match shape {
                    Some(cols) => ScopeBinding {
                        name: alias.clone(),
                        table: None,
                        columns: cols
                            .into_iter()
                            .map(|o| BindingCol {
                                name: o.name,
                                ctype: o.ctype,
                            })
                            .collect(),
                        open: false,
                    },
                    None => ScopeBinding {
                        name: alias.clone(),
                        table: None,
                        columns: Vec::new(),
                        open: true,
                    },
                }
            }
        }
    }

    /// Output shape of a query without emitting diagnostics or consuming
    /// spans (a second pass over an already-reported subquery).
    fn output_shape_only(
        &mut self,
        q: &Query,
        parent: Option<&Scope<'_>>,
    ) -> Option<Vec<OutputCol>> {
        let bindings = self.core_bindings(&q.core, parent);
        let scope = Scope {
            bindings: &bindings,
            parent,
        };
        self.output_shape(&q.core, &scope, None)
    }

    /// Output columns of a core given its scope. `item_types` supplies the
    /// per-item types computed during checking, when available.
    fn output_shape(
        &mut self,
        core: &SelectCore,
        scope: &Scope<'_>,
        item_types: Option<&[Option<ColType>]>,
    ) -> Option<Vec<OutputCol>> {
        let mut out = Vec::new();
        for (i, item) in core.items.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    if scope.bindings.iter().any(|b| b.open) {
                        return None;
                    }
                    for b in scope.bindings {
                        for c in &b.columns {
                            out.push(OutputCol {
                                name: c.name.clone(),
                                ctype: c.ctype,
                            });
                        }
                    }
                }
                SelectItem::QualifiedWildcard(t) => {
                    let b = scope
                        .bindings
                        .iter()
                        .find(|b| b.name.eq_ignore_ascii_case(t))?;
                    if b.open {
                        return None;
                    }
                    for c in &b.columns {
                        out.push(OutputCol {
                            name: c.name.clone(),
                            ctype: c.ctype,
                        });
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let name = alias.clone().unwrap_or_else(|| match expr {
                        Expr::Column(c) => c.column.clone(),
                        other => print_expr(other),
                    });
                    out.push(OutputCol {
                        name,
                        ctype: item_types.and_then(|ts| ts.get(i).copied().flatten()),
                    });
                }
            }
        }
        Some(out)
    }

    // -- core ---------------------------------------------------------------

    fn check_core(
        &mut self,
        core: &SelectCore,
        parent: Option<&Scope<'_>>,
    ) -> Option<Vec<OutputCol>> {
        // FROM: build bindings, reporting unknown tables / duplicate
        // aliases, and check join constraints against the scope built so
        // far (matching the engine's incremental join evaluation).
        let mut bindings: Vec<ScopeBinding> = Vec::new();
        if let Some(from) = &core.from {
            let base = self.binding_for(&from.base, parent, true);
            bindings.push(base);
            for join in &from.joins {
                let b = self.binding_for(&join.factor, parent, true);
                if bindings
                    .iter()
                    .any(|x| x.name.eq_ignore_ascii_case(&b.name))
                {
                    let span = self.spans.whole();
                    self.push(
                        DiagCode::DuplicateAlias,
                        Severity::Error,
                        span,
                        format!("duplicate binding `{}` in FROM", b.name),
                        Some("alias one of the occurrences (`AS t2`)".into()),
                    );
                }
                bindings.push(b);
                self.check_join_constraint(join, &bindings, parent);
            }
        }

        let aggregate_mode = !core.group_by.is_empty()
            || core.items.iter().any(|i| match i {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                _ => false,
            })
            || core
                .having
                .as_ref()
                .is_some_and(|h| h.contains_aggregate() || !core.group_by.is_empty());

        // SELECT items.
        let mut item_types: Vec<Option<ColType>> = Vec::with_capacity(core.items.len());
        for item in &core.items {
            match item {
                SelectItem::Wildcard => {
                    let span = self.spans.next("*");
                    item_types.push(None);
                    if core.from.is_none() {
                        self.push(
                            DiagCode::MisplacedWildcard,
                            Severity::Error,
                            span,
                            "SELECT * without a FROM clause".into(),
                            None,
                        );
                    } else if aggregate_mode {
                        self.push(
                            DiagCode::UngroupedColumn,
                            Severity::Warning,
                            span,
                            "SELECT * under aggregation takes arbitrary rows for \
                             non-grouped columns"
                                .into(),
                            Some("select the grouped columns and aggregates explicitly".into()),
                        );
                    }
                }
                SelectItem::QualifiedWildcard(t) => {
                    let span = self.spans.next(&format!("{t}.*"));
                    item_types.push(None);
                    if !bindings.iter().any(|b| b.name.eq_ignore_ascii_case(t)) {
                        let hint =
                            nearest_name(t, bindings.iter().map(|b| b.name.as_str()), HINT_DIST)
                                .map(|n| format!("did you mean `{n}.*`?"));
                        self.push(
                            DiagCode::UnknownTable,
                            Severity::Error,
                            span,
                            format!("`{t}.*` does not name a table in FROM"),
                            hint,
                        );
                    }
                }
                SelectItem::Expr { expr, .. } => {
                    let scope = Scope {
                        bindings: &bindings,
                        parent,
                    };
                    self.bare_cols.clear();
                    self.collect_bare = true;
                    let ctx = ExprCtx {
                        clause: Clause::Select,
                        in_agg: false,
                    };
                    let t = self.check_expr(expr, &scope, ctx);
                    self.collect_bare = false;
                    item_types.push(t.ty);
                    if aggregate_mode {
                        let bare = std::mem::take(&mut self.bare_cols);
                        for (cref, span) in bare {
                            if !is_grouped(&cref, &core.group_by) {
                                self.push(
                                    DiagCode::UngroupedColumn,
                                    Severity::Warning,
                                    span,
                                    format!(
                                        "column `{cref}` is neither grouped nor aggregated; \
                                         an arbitrary row's value is returned"
                                    ),
                                    Some(format!(
                                        "add `{cref}` to GROUP BY or wrap it in an aggregate"
                                    )),
                                );
                            }
                        }
                    }
                }
            }
        }

        let scope = Scope {
            bindings: &bindings,
            parent,
        };

        // WHERE: aggregates are an eager engine error here.
        if let Some(w) = &core.where_clause {
            let ctx = ExprCtx {
                clause: Clause::Where,
                in_agg: false,
            };
            self.check_expr(w, &scope, ctx);
        }

        // GROUP BY keys evaluate in the row scope.
        for key in &core.group_by {
            let ctx = ExprCtx {
                clause: Clause::GroupBy,
                in_agg: false,
            };
            self.check_expr(key, &scope, ctx);
        }

        // HAVING: aggregates allowed; lint when it can't do anything.
        if let Some(h) = &core.having {
            let ctx = ExprCtx {
                clause: Clause::Having,
                in_agg: false,
            };
            self.check_expr(h, &scope, ctx);
            if !aggregate_mode {
                let span = self.spans.clause(&ClausePath::Having);
                self.push(
                    DiagCode::HavingWithoutAggregate,
                    Severity::Warning,
                    span,
                    "HAVING without GROUP BY or aggregation has no effect".into(),
                    Some("use WHERE for row filters".into()),
                );
            }
        }

        self.output_shape(core, &scope, Some(&item_types))
    }

    fn check_join_constraint(
        &mut self,
        join: &Join,
        bindings_so_far: &[ScopeBinding],
        parent: Option<&Scope<'_>>,
    ) {
        let Some(on) = &join.constraint else {
            if join.kind != JoinKind::Cross {
                let span = self.spans.clause(&ClausePath::From);
                self.push(
                    DiagCode::DisconnectedJoin,
                    Severity::Warning,
                    span,
                    format!("{} without an ON condition", join.kind.as_str()),
                    self.fk_join_hint(bindings_so_far),
                );
            }
            return;
        };
        let scope = Scope {
            bindings: bindings_so_far,
            parent,
        };
        let ctx = ExprCtx {
            clause: Clause::On,
            in_agg: false,
        };
        let anchor = self.check_expr(on, &scope, ctx).anchor;
        // Which side does each referenced column land on?
        let right_idx = bindings_so_far.len() - 1;
        let mut touches_right = false;
        let mut touches_left = false;
        let mut any_col = false;
        for cref in on.columns() {
            any_col = true;
            if let Some(idx) = binding_index(bindings_so_far, cref) {
                if idx == right_idx {
                    touches_right = true;
                } else {
                    touches_left = true;
                }
            }
        }
        if any_col && (!touches_right || !touches_left) {
            let side = if touches_right { "left" } else { "joined" };
            let span = anchor.unwrap_or_else(|| self.spans.clause(&ClausePath::From));
            self.push(
                DiagCode::DisconnectedJoin,
                Severity::Warning,
                span,
                format!(
                    "join condition `{}` does not reference the {side} relation",
                    print_expr(on)
                ),
                self.fk_join_hint(bindings_so_far),
            );
        }
    }

    // -------------------------------------------------------------------
    // Flow lints (the `crate::flow` abstract-interpretation pass)
    // -------------------------------------------------------------------

    /// Lints driven by the flow pass: predicates no row can satisfy,
    /// predicates that filter nothing, predicates implied by a sibling
    /// conjunct, and joins whose ON condition can never match. All are
    /// warnings — the engine executes these queries fine; they just
    /// cannot compute what was plausibly meant.
    fn check_flow(&mut self, q: &Query) {
        for (ci, core) in q.cores().enumerate() {
            // Per-predicate spans are recorded for the first core only;
            // compound arms anchor to their arm's clause span.
            let arm = (ci > 0).then(|| {
                self.spans
                    .clause(&ClausePath::Compound(ci.saturating_sub(1)))
            });
            if let Some(w) = &core.where_clause {
                let spans: Vec<Span> = (0..w.conjuncts().len())
                    .map(|i| {
                        arm.unwrap_or_else(|| self.spans.clause(&ClausePath::WherePredicate(i)))
                    })
                    .collect();
                self.filter_flow_lints(w, "WHERE", &spans);
            }
            if let Some(h) = &core.having {
                let span = arm.unwrap_or_else(|| self.spans.clause(&ClausePath::Having));
                let spans = vec![span; h.conjuncts().len()];
                self.filter_flow_lints(h, "HAVING", &spans);
            }
            if let Some(from) = &core.from {
                for (ji, join) in from.joins.iter().enumerate() {
                    let Some(on) = &join.constraint else { continue };
                    if flow::analyze_conjunction(&on.conjuncts()).unsatisfiable() {
                        let span = arm.unwrap_or_else(|| self.spans.clause(&ClausePath::Join(ji)));
                        self.push(
                            DiagCode::ImpossibleJoin,
                            Severity::Warning,
                            span,
                            format!("join condition `{}` can never be satisfied", print_expr(on)),
                            Some("no row pair can match; fix the ON condition".into()),
                        );
                    }
                }
            }
        }
    }

    /// Reports the flow pass's findings for one WHERE/HAVING conjunction;
    /// `spans[i]` anchors conjunct `i`.
    fn filter_flow_lints(&mut self, filter: &Expr, clause: &str, spans: &[Span]) {
        let conjuncts = filter.conjuncts();
        let facts = flow::analyze_conjunction(&conjuncts);
        for &i in &facts.never_true {
            self.push(
                DiagCode::ContradictoryPredicate,
                Severity::Warning,
                spans[i],
                format!(
                    "{clause} predicate `{}` can never be true",
                    print_expr(conjuncts[i])
                ),
                Some("the filter rejects every row; drop or fix the predicate".into()),
            );
        }
        for &i in &facts.tautological {
            self.push(
                DiagCode::TautologicalPredicate,
                Severity::Warning,
                spans[i],
                format!(
                    "{clause} predicate `{}` is always true and filters nothing",
                    print_expr(conjuncts[i])
                ),
                Some("drop the predicate or tighten it".into()),
            );
        }
        for &(i, j) in &facts.contradictions {
            self.push(
                DiagCode::ContradictoryPredicate,
                Severity::Warning,
                spans[j],
                format!(
                    "{clause} predicates `{}` and `{}` contradict each other; \
                     no row satisfies both",
                    print_expr(conjuncts[i]),
                    print_expr(conjuncts[j])
                ),
                Some("the conjunction is unsatisfiable; one side must change".into()),
            );
        }
        for &(red, by) in &facts.redundant {
            self.push(
                DiagCode::RedundantPredicate,
                Severity::Warning,
                spans[red],
                format!(
                    "{clause} predicate `{}` is implied by `{}`",
                    print_expr(conjuncts[red]),
                    print_expr(conjuncts[by])
                ),
                Some(format!("drop `{}`", print_expr(conjuncts[red]))),
            );
        }
    }

    /// Suggests a join condition along a schema foreign key between the
    /// last binding and any earlier one.
    fn fk_join_hint(&self, bindings: &[ScopeBinding]) -> Option<String> {
        let right = bindings.last()?;
        let rt = self.schema.table(right.table.as_deref()?)?;
        for left in &bindings[..bindings.len() - 1] {
            let Some(lt_name) = left.table.as_deref() else {
                continue;
            };
            let Some(lt) = self.schema.table(lt_name) else {
                continue;
            };
            for fk in &rt.foreign_keys {
                if fk.ref_table.eq_ignore_ascii_case(&lt.name) {
                    return Some(format!(
                        "try ON {}.{} = {}.{}",
                        left.name, fk.ref_column, right.name, fk.column
                    ));
                }
            }
            for fk in &lt.foreign_keys {
                if fk.ref_table.eq_ignore_ascii_case(&rt.name) {
                    return Some(format!(
                        "try ON {}.{} = {}.{}",
                        left.name, fk.column, right.name, fk.ref_column
                    ));
                }
            }
        }
        None
    }

    // -- expressions ---------------------------------------------------------

    fn check_expr(&mut self, e: &Expr, scope: &Scope<'_>, ctx: ExprCtx) -> Typed {
        match e {
            Expr::Column(cref) => self.check_column(cref, scope, ctx),
            Expr::Literal(l) => Typed {
                ty: literal_type(l),
                anchor: None,
            },
            Expr::Wildcard => {
                let span = self.spans.next("*");
                self.push(
                    DiagCode::MisplacedWildcard,
                    Severity::Error,
                    span,
                    "`*` is only valid as COUNT(*) or a SELECT item".into(),
                    None,
                );
                Typed {
                    ty: None,
                    anchor: Some(span),
                }
            }
            Expr::Unary { op, expr } => {
                let t = self.check_expr(expr, scope, ctx);
                match op {
                    UnaryOp::Neg => {
                        if t.ty.is_some_and(|ty| ty.is_textual()) {
                            let span = t.anchor.unwrap_or_else(|| self.spans.whole());
                            self.push(
                                DiagCode::TypeMismatch,
                                Severity::Warning,
                                span,
                                "negation of a text value yields NULL".into(),
                                None,
                            );
                        }
                        Typed {
                            ty: t.ty.filter(|ty| ty.is_numeric()),
                            anchor: t.anchor,
                        }
                    }
                    UnaryOp::Not => Typed {
                        ty: Some(ColType::Bool),
                        anchor: t.anchor,
                    },
                }
            }
            Expr::Binary { left, op, right } => self.check_binary(left, *op, right, scope, ctx),
            Expr::Call {
                func,
                distinct: _,
                args,
            } => self.check_call(*func, args, scope, ctx),
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                let mut anchor = None;
                if let Some(op) = operand {
                    anchor = anchor.or(self.check_expr(op, scope, ctx).anchor);
                }
                let mut ty = None;
                for (w, t) in branches {
                    anchor = anchor.or(self.check_expr(w, scope, ctx).anchor);
                    let then = self.check_expr(t, scope, ctx);
                    anchor = anchor.or(then.anchor);
                    ty = ty.or(then.ty);
                }
                if let Some(el) = else_branch {
                    let t = self.check_expr(el, scope, ctx);
                    anchor = anchor.or(t.anchor);
                    ty = ty.or(t.ty);
                }
                Typed { ty, anchor }
            }
            Expr::InList {
                expr,
                list,
                negated: _,
            } => {
                let t = self.check_expr(expr, scope, ctx);
                for item in list {
                    let it = self.check_expr(item, scope, ctx);
                    self.warn_incompatible(&t, &it, "IN list");
                }
                Typed {
                    ty: Some(ColType::Bool),
                    anchor: t.anchor,
                }
            }
            Expr::InSubquery {
                expr,
                subquery,
                negated: _,
            } => {
                let t = self.check_expr(expr, scope, ctx);
                let shape = self.check_query_scoped(subquery, Some(scope));
                if let Some(cols) = &shape {
                    if cols.len() == 1 {
                        let it = Typed {
                            ty: cols[0].ctype,
                            anchor: None,
                        };
                        self.warn_incompatible(&t, &it, "IN subquery");
                    } else {
                        let span = t.anchor.unwrap_or_else(|| self.spans.whole());
                        self.push(
                            DiagCode::SubqueryArity,
                            Severity::Error,
                            span,
                            format!("IN subquery must produce 1 column, got {}", cols.len()),
                            None,
                        );
                    }
                }
                Typed {
                    ty: Some(ColType::Bool),
                    anchor: t.anchor,
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                let t = self.check_expr(expr, scope, ctx);
                let lo = self.check_expr(low, scope, ctx);
                let hi = self.check_expr(high, scope, ctx);
                self.warn_incompatible(&t, &lo, "BETWEEN bound");
                self.warn_incompatible(&t, &hi, "BETWEEN bound");
                Typed {
                    ty: Some(ColType::Bool),
                    anchor: t.anchor,
                }
            }
            Expr::Like { expr, pattern, .. } => {
                let t = self.check_expr(expr, scope, ctx);
                let p = self.check_expr(pattern, scope, ctx);
                if t.ty.is_some_and(|ty| ty.is_numeric()) {
                    let span = t.anchor.unwrap_or_else(|| self.spans.whole());
                    self.push(
                        DiagCode::BadArgType,
                        Severity::Warning,
                        span,
                        "LIKE on a numeric value".into(),
                        None,
                    );
                }
                if p.ty.is_some_and(|ty| ty.is_numeric()) {
                    let span = p.anchor.or(t.anchor).unwrap_or_else(|| self.spans.whole());
                    self.push(
                        DiagCode::BadArgType,
                        Severity::Warning,
                        span,
                        "LIKE pattern is not text".into(),
                        None,
                    );
                }
                Typed {
                    ty: Some(ColType::Bool),
                    anchor: t.anchor,
                }
            }
            Expr::IsNull { expr, .. } => {
                let t = self.check_expr(expr, scope, ctx);
                Typed {
                    ty: Some(ColType::Bool),
                    anchor: t.anchor,
                }
            }
            Expr::Exists { subquery, .. } => {
                self.check_query_scoped(subquery, Some(scope));
                Typed {
                    ty: Some(ColType::Bool),
                    anchor: None,
                }
            }
            Expr::Subquery(q) => {
                let shape = self.check_query_scoped(q, Some(scope));
                match shape {
                    Some(cols) if cols.len() != 1 => {
                        let span = self.spans.whole();
                        self.push(
                            DiagCode::SubqueryArity,
                            Severity::Error,
                            span,
                            format!("scalar subquery must produce 1 column, got {}", cols.len()),
                            None,
                        );
                        Typed::unknown()
                    }
                    Some(cols) => Typed {
                        ty: cols.first().and_then(|c| c.ctype),
                        anchor: None,
                    },
                    None => Typed::unknown(),
                }
            }
        }
    }

    fn check_column(&mut self, cref: &ColumnRef, scope: &Scope<'_>, ctx: ExprCtx) -> Typed {
        let span = self.spans.next(&cref.to_string());
        if self.collect_bare && !ctx.in_agg && ctx.clause == Clause::Select {
            self.bare_cols.push((cref.clone(), span));
        }
        match scope.resolve(cref) {
            Lookup::Found(ty) => Typed {
                ty,
                anchor: Some(span),
            },
            Lookup::Ambiguous(bindings) => {
                let options = bindings
                    .iter()
                    .map(|b| format!("`{b}.{}`", cref.column))
                    .collect::<Vec<_>>()
                    .join(" or ");
                self.push(
                    DiagCode::AmbiguousColumn,
                    Severity::Error,
                    span,
                    format!("column `{}` is ambiguous", cref.column),
                    Some(format!("qualify it as {options}")),
                );
                Typed {
                    ty: None,
                    anchor: Some(span),
                }
            }
            Lookup::NotInBinding(binding) => {
                let hint = self
                    .nearest_in_binding(scope, &binding, &cref.column)
                    .map(|n| format!("did you mean `{binding}.{n}`?"))
                    .or_else(|| self.elsewhere_hint(&cref.column));
                self.push(
                    DiagCode::UnknownColumn,
                    Severity::Error,
                    span,
                    format!("table `{binding}` has no column `{}`", cref.column),
                    hint,
                );
                Typed {
                    ty: None,
                    anchor: Some(span),
                }
            }
            Lookup::NotFound => {
                let hint = match &cref.table {
                    Some(q) => Some(
                        self.elsewhere_hint(&cref.column)
                            .unwrap_or_else(|| format!("`{q}` is not bound in FROM")),
                    ),
                    None => nearest_name(&cref.column, scope.visible_columns(), HINT_DIST)
                        .map(|n| format!("did you mean `{n}`?"))
                        .or_else(|| self.elsewhere_hint(&cref.column)),
                };
                self.push(
                    DiagCode::UnknownColumn,
                    Severity::Error,
                    span,
                    format!("unknown column `{cref}`"),
                    hint,
                );
                Typed {
                    ty: None,
                    anchor: Some(span),
                }
            }
        }
    }

    fn nearest_in_binding(&self, scope: &Scope<'_>, binding: &str, column: &str) -> Option<String> {
        let mut level: Option<&Scope<'_>> = Some(scope);
        while let Some(s) = level {
            if let Some(b) = s
                .bindings
                .iter()
                .find(|b| b.name.eq_ignore_ascii_case(binding))
            {
                return nearest_name(column, b.columns.iter().map(|c| c.name.as_str()), HINT_DIST)
                    .map(|n| n.to_string());
            }
            level = s.parent;
        }
        None
    }

    /// "column X exists on table Y" hint when the exact name lives on a
    /// schema table that is not (or not correctly) joined in.
    fn elsewhere_hint(&self, column: &str) -> Option<String> {
        let owners: Vec<&str> = self
            .schema
            .tables
            .iter()
            .filter(|t| t.column(column).is_some())
            .map(|t| t.name.as_str())
            .collect();
        match owners.as_slice() {
            [] => None,
            [one] => Some(format!(
                "column `{column}` exists on table `{one}`; join it in"
            )),
            many => Some(format!(
                "column `{column}` exists on tables {}",
                many.iter()
                    .map(|t| format!("`{t}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )),
        }
    }

    fn check_binary(
        &mut self,
        left: &Expr,
        op: BinOp,
        right: &Expr,
        scope: &Scope<'_>,
        ctx: ExprCtx,
    ) -> Typed {
        let l = self.check_expr(left, scope, ctx);
        let r = self.check_expr(right, scope, ctx);
        let anchor = l.anchor.or(r.anchor);
        if op.is_comparison() {
            if let (Some(lt), Some(rt)) = (l.ty, r.ty) {
                if !lt.comparable_with(rt) {
                    let span = anchor.unwrap_or_else(|| self.spans.whole());
                    self.push(
                        DiagCode::TypeMismatch,
                        Severity::Warning,
                        span,
                        format!("comparison between {lt} and {rt} never matches on real data"),
                        None,
                    );
                }
            }
            return Typed {
                ty: Some(ColType::Bool),
                anchor,
            };
        }
        match op {
            BinOp::And | BinOp::Or => Typed {
                ty: Some(ColType::Bool),
                anchor,
            },
            _ => {
                // Arithmetic.
                for side in [&l, &r] {
                    if side.ty.is_some_and(|ty| ty.is_textual()) {
                        let span = side.anchor.or(anchor).unwrap_or_else(|| self.spans.whole());
                        self.push(
                            DiagCode::TypeMismatch,
                            Severity::Warning,
                            span,
                            format!("arithmetic `{}` on a text value yields NULL", op.as_str()),
                            None,
                        );
                    }
                }
                let ty = match (l.ty, r.ty) {
                    (Some(ColType::Float), _) | (_, Some(ColType::Float)) => Some(ColType::Float),
                    (Some(ColType::Int), Some(ColType::Int)) => Some(ColType::Int),
                    _ => None,
                };
                Typed { ty, anchor }
            }
        }
    }

    fn check_call(&mut self, func: Func, args: &[Expr], scope: &Scope<'_>, ctx: ExprCtx) -> Typed {
        let span = self.spans.next(func.as_str());
        if func.is_aggregate() {
            if ctx.in_agg {
                self.push(
                    DiagCode::NestedAggregate,
                    Severity::Error,
                    span,
                    format!(
                        "aggregate {} nested inside another aggregate",
                        func.as_str()
                    ),
                    Some("compute the inner aggregate in a subquery".into()),
                );
            }
            match ctx.clause {
                Clause::Where => {
                    self.push(
                        DiagCode::AggregateInWhere,
                        Severity::Error,
                        span,
                        format!("aggregate {} is not allowed in WHERE", func.as_str()),
                        Some("move the condition to HAVING".into()),
                    );
                }
                Clause::On | Clause::GroupBy => {
                    self.push(
                        DiagCode::AggregateInWhere,
                        Severity::Warning,
                        span,
                        format!(
                            "aggregate {} in a {} clause",
                            func.as_str(),
                            if ctx.clause == Clause::On {
                                "join ON"
                            } else {
                                "GROUP BY"
                            }
                        ),
                        None,
                    );
                }
                _ => {}
            }
        }
        // Arity.
        let (min, max) = func_arity(func);
        if args.len() < min {
            let severity = if func == Func::Coalesce {
                // The engine evaluates COALESCE() to NULL without erroring.
                Severity::Warning
            } else {
                Severity::Error
            };
            self.push(
                DiagCode::BadArity,
                severity,
                span,
                format!(
                    "{} takes at least {min} argument(s), got {}",
                    func.as_str(),
                    args.len()
                ),
                None,
            );
        } else if max.is_some_and(|m| args.len() > m) {
            self.push(
                DiagCode::ExtraArgument,
                Severity::Warning,
                span,
                format!(
                    "{} uses {} argument(s); the rest are ignored",
                    func.as_str(),
                    max.unwrap_or(0)
                ),
                None,
            );
        }
        // Arguments.
        let inner = ExprCtx {
            clause: ctx.clause,
            in_agg: ctx.in_agg || func.is_aggregate(),
        };
        let mut arg_types: Vec<Option<ColType>> = Vec::with_capacity(args.len());
        for arg in args {
            if matches!(arg, Expr::Wildcard) {
                let wspan = self.spans.next("*");
                if func != Func::Count {
                    self.push(
                        DiagCode::MisplacedWildcard,
                        Severity::Error,
                        wspan,
                        format!("`*` is not a valid argument to {}", func.as_str()),
                        Some("COUNT(*) is the only wildcard aggregate".into()),
                    );
                }
                arg_types.push(None);
                continue;
            }
            let t = self.check_expr(arg, scope, inner);
            arg_types.push(t.ty);
        }
        // Argument-type lints (engine coerces, so these are warnings).
        let first = arg_types.first().copied().flatten();
        match func {
            Func::Sum | Func::Avg | Func::Abs | Func::Round
                if first.is_some_and(|t| t.is_textual() || t == ColType::Bool) =>
            {
                self.push(
                    DiagCode::BadArgType,
                    Severity::Warning,
                    span,
                    format!("{} over a non-numeric column", func.as_str()),
                    None,
                );
            }
            Func::Lower | Func::Upper | Func::Substr if first.is_some_and(|t| t.is_numeric()) => {
                self.push(
                    DiagCode::BadArgType,
                    Severity::Warning,
                    span,
                    format!("{} over a numeric column", func.as_str()),
                    None,
                );
            }
            _ => {}
        }
        let ty = match func {
            Func::Count | Func::Length => Some(ColType::Int),
            Func::Avg => Some(ColType::Float),
            Func::Round => Some(ColType::Float),
            Func::Sum | Func::Min | Func::Max | Func::Abs => first,
            Func::Lower | Func::Upper | Func::Substr => Some(ColType::Text),
            Func::Coalesce => arg_types.iter().copied().flatten().next(),
        };
        Typed {
            ty,
            anchor: Some(span),
        }
    }

    fn warn_incompatible(&mut self, a: &Typed, b: &Typed, what: &str) {
        if let (Some(at), Some(bt)) = (a.ty, b.ty) {
            if !at.comparable_with(bt) {
                let span = a.anchor.or(b.anchor).unwrap_or_else(|| self.spans.whole());
                self.push(
                    DiagCode::TypeMismatch,
                    Severity::Warning,
                    span,
                    format!("{what} compares {at} with {bt}"),
                    None,
                );
            }
        }
    }
}

/// `(min, max)` argument counts per function; `None` max = variadic.
fn func_arity(func: Func) -> (usize, Option<usize>) {
    match func {
        Func::Count | Func::Sum | Func::Avg | Func::Min | Func::Max => (1, Some(1)),
        Func::Abs | Func::Lower | Func::Upper | Func::Length => (1, Some(1)),
        Func::Round => (1, Some(2)),
        Func::Coalesce => (1, None),
        Func::Substr => (2, Some(3)),
    }
}

fn literal_type(l: &Literal) -> Option<ColType> {
    match l {
        Literal::Number(_) => Some(ColType::Int),
        Literal::Float(_) => Some(ColType::Float),
        Literal::String(_) => Some(ColType::Text),
        Literal::Bool(_) => Some(ColType::Bool),
        Literal::Null => None,
    }
}

/// Whether `cref` matches one of the GROUP BY keys. Qualification is
/// matched loosely: `name` is grouped by `GROUP BY t.name` and vice
/// versa (the engine groups by *values*, so this mirrors its leniency).
fn is_grouped(cref: &ColumnRef, group_by: &[Expr]) -> bool {
    group_by.iter().any(|g| match g {
        Expr::Column(k) => {
            k.column.eq_ignore_ascii_case(&cref.column)
                && match (&k.table, &cref.table) {
                    (Some(a), Some(b)) => a.eq_ignore_ascii_case(b),
                    _ => true,
                }
        }
        other => print_expr(other) == print_expr(&Expr::Column(cref.clone())),
    })
}

fn binding_index(bindings: &[ScopeBinding], cref: &ColumnRef) -> Option<usize> {
    match &cref.table {
        Some(q) => bindings
            .iter()
            .position(|b| b.name.eq_ignore_ascii_case(q.as_str())),
        None => {
            let matches: Vec<usize> = bindings
                .iter()
                .enumerate()
                .filter(|(_, b)| {
                    b.columns
                        .iter()
                        .any(|c| c.name.eq_ignore_ascii_case(&cref.column))
                })
                .map(|(i, _)| i)
                .collect();
            match matches.as_slice() {
                [one] => Some(*one),
                _ => None,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Minimal structure-preserving repair
// ---------------------------------------------------------------------------

/// Attempts a minimal structure-preserving repair of `query`: unknown
/// table/column names are replaced by their *unique* nearest schema name
/// within edit distance 2. Only names that exist **nowhere** in the
/// schema are candidates — a "wrong" name that is a real column of some
/// other table signals a structural mistake (a missing join, a
/// mis-attributed column) that renaming would mask, so those are left for
/// the feedback loop. Returns the repaired query only when the result is
/// free of error-severity diagnostics; `None` when nothing needed fixing
/// or the repair failed.
pub fn repair_query(query: &Query, schema: &SchemaInfo) -> Option<Query> {
    if !check_query(query, schema).iter().any(Diagnostic::is_error) {
        return None;
    }
    let mut repaired = query.clone();
    repair_query_names(&mut repaired, schema, &[]);
    if repaired == *query {
        return None;
    }
    if check_query(&repaired, schema)
        .iter()
        .any(Diagnostic::is_error)
    {
        return None;
    }
    Some(repaired)
}

/// Rewrites unknown names in place. `outer_tables` are schema tables
/// visible from enclosing scopes (for correlated subqueries).
fn repair_query_names(q: &mut Query, schema: &SchemaInfo, outer_tables: &[String]) {
    // Collect this query's visible tables first (across all cores —
    // close enough for repair purposes) so expression repair can use them.
    let mut visible: Vec<String> = outer_tables.to_vec();
    for core in q.cores_mut() {
        if let Some(from) = &mut core.from {
            let fix_factor = |f: &mut TableFactor| {
                if let TableFactor::Table { name, .. } = f {
                    if schema.table(name).is_none() {
                        if let Some(fixed) = nearest_name(name, schema.table_names(), REPAIR_DIST) {
                            *name = fixed.to_string();
                        }
                    }
                }
            };
            fix_factor(&mut from.base);
            for j in &mut from.joins {
                fix_factor(&mut j.factor);
            }
        }
    }
    for core in q.cores() {
        if let Some(from) = &core.from {
            for f in from.factors() {
                if let TableFactor::Table { name, .. } = f {
                    if schema.table(name).is_some() {
                        visible.push(name.clone());
                    }
                }
            }
        }
    }

    let fix_col = |cref: &mut ColumnRef, visible: &[String]| {
        let known = |c: &ColumnRef| match &c.table {
            Some(t) => schema
                .table(t)
                .is_some_and(|ti| ti.column(&c.column).is_some()),
            None => visible
                .iter()
                .filter_map(|t| schema.table(t))
                .any(|ti| ti.column(&c.column).is_some()),
        };
        if known(cref) {
            return;
        }
        // A real column of *some* table is a structural error (missing
        // join), not a typo — never rename it.
        if schema
            .tables
            .iter()
            .any(|t| t.column(&cref.column).is_some())
        {
            return;
        }
        match &cref.table {
            Some(t) => {
                if let Some(ti) = schema.table(t) {
                    if let Some(fixed) = nearest_name(
                        &cref.column,
                        ti.columns.iter().map(|c| c.name.as_str()),
                        REPAIR_DIST,
                    ) {
                        cref.column = fixed.to_string();
                    }
                } else if let Some(fixed) = nearest_name(t, schema.table_names(), REPAIR_DIST) {
                    cref.table = Some(fixed.to_string());
                }
            }
            None => {
                let candidates: Vec<&str> = visible
                    .iter()
                    .filter_map(|t| schema.table(t))
                    .flat_map(|ti| ti.columns.iter().map(|c| c.name.as_str()))
                    .collect();
                if let Some(fixed) = nearest_name(&cref.column, candidates, REPAIR_DIST) {
                    cref.column = fixed.to_string();
                }
            }
        }
    };

    let fix_expr = |e: &mut Expr| {
        e.walk_mut(&mut |node| match node {
            Expr::Column(cref) => fix_col(cref, &visible),
            Expr::InSubquery { subquery, .. } => repair_query_names(subquery, schema, &visible),
            Expr::Exists { subquery, .. } => repair_query_names(subquery, schema, &visible),
            Expr::Subquery(sub) => repair_query_names(sub, schema, &visible),
            _ => {}
        });
    };

    for core in q.cores_mut() {
        for item in &mut core.items {
            if let SelectItem::Expr { expr, .. } = item {
                fix_expr(expr);
            }
        }
        if let Some(from) = &mut core.from {
            for j in &mut from.joins {
                if let Some(on) = &mut j.constraint {
                    fix_expr(on);
                }
                if let TableFactor::Derived { subquery, .. } = &mut j.factor {
                    repair_query_names(subquery, schema, &visible);
                }
            }
            if let TableFactor::Derived { subquery, .. } = &mut from.base {
                repair_query_names(subquery, schema, &visible);
            }
        }
        if let Some(w) = &mut core.where_clause {
            fix_expr(w);
        }
        for g in &mut core.group_by {
            fix_expr(g);
        }
        if let Some(h) = &mut core.having {
            fix_expr(h);
        }
    }
    for item in &mut q.order_by {
        fix_expr(&mut item.expr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::printer::print_query;

    fn schema() -> SchemaInfo {
        let mut singer = TableInfo::new(
            "singer",
            vec![
                ("singer_id", ColType::Int),
                ("name", ColType::Text),
                ("age", ColType::Int),
                ("country", ColType::Text),
            ],
        );
        singer.primary_key = Some("singer_id".into());
        let mut concert = TableInfo::new(
            "concert",
            vec![
                ("concert_id", ColType::Int),
                ("singer_id", ColType::Int),
                ("venue", ColType::Text),
                ("concert_date", ColType::Date),
            ],
        );
        concert.primary_key = Some("concert_id".into());
        concert.foreign_keys.push(FkInfo {
            column: "singer_id".into(),
            ref_table: "singer".into(),
            ref_column: "singer_id".into(),
        });
        SchemaInfo::new(vec![singer, concert])
    }

    fn check(sql: &str) -> Vec<Diagnostic> {
        check_query(&parse_query(sql).unwrap(), &schema())
    }

    /// Diagnostics of one code, as `(code, span text)` pairs against the
    /// canonical printing.
    fn find<'d>(diags: &'d [Diagnostic], code: DiagCode, sql: &str) -> Vec<&'d Diagnostic> {
        let printed = print_query(&parse_query(sql).unwrap());
        let hits: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == code).collect();
        for d in &hits {
            assert!(
                d.span.end <= printed.len(),
                "span out of bounds for {sql}: {d:?}"
            );
        }
        hits
    }

    #[test]
    fn contradictory_predicates_are_flagged() {
        let sql = "SELECT name FROM singer WHERE age > 40 AND age < 30";
        let diags = check(sql);
        let hits = find(&diags, DiagCode::ContradictoryPredicate, sql);
        assert_eq!(hits.len(), 1, "{diags:?}");
        assert_eq!(hits[0].severity, Severity::Warning);
        assert!(hits[0].message.contains("contradict"));
        // The span anchors to a WHERE conjunct, not the whole query.
        let printed = print_query(&parse_query(sql).unwrap());
        assert!(hits[0].span.end - hits[0].span.start < printed.len());

        // Single never-true conjunct.
        let sql = "SELECT name FROM singer WHERE age = NULL";
        let hits_own = check(sql);
        assert_eq!(
            find(&hits_own, DiagCode::ContradictoryPredicate, sql).len(),
            1
        );

        // HAVING over aggregates participates too (keys are rendered
        // expressions, so `COUNT(*)` works as a key).
        let sql = "SELECT country, COUNT(*) FROM singer GROUP BY country \
                   HAVING COUNT(*) > 5 AND COUNT(*) < 2";
        let diags = check(sql);
        assert_eq!(find(&diags, DiagCode::ContradictoryPredicate, sql).len(), 1);
    }

    #[test]
    fn tautological_and_redundant_predicates_are_flagged() {
        let sql = "SELECT name FROM singer WHERE age >= age";
        let diags = check(sql);
        assert_eq!(find(&diags, DiagCode::TautologicalPredicate, sql).len(), 1);

        let sql = "SELECT name FROM singer WHERE age > 30 AND age > 20";
        let diags = check(sql);
        let hits = find(&diags, DiagCode::RedundantPredicate, sql);
        assert_eq!(hits.len(), 1, "{diags:?}");
        assert!(hits[0].message.contains("implied by"));

        // Satisfiable, non-overlapping predicates stay clean.
        let sql = "SELECT name FROM singer WHERE age > 20 AND age < 30";
        let diags = check(sql);
        assert!(find(&diags, DiagCode::RedundantPredicate, sql).is_empty());
        assert!(find(&diags, DiagCode::ContradictoryPredicate, sql).is_empty());
    }

    #[test]
    fn impossible_join_is_flagged() {
        let sql = "SELECT name FROM singer JOIN concert \
                   ON singer.singer_id = concert.singer_id AND concert.concert_id = NULL";
        let diags = check(sql);
        let hits = find(&diags, DiagCode::ImpossibleJoin, sql);
        assert_eq!(hits.len(), 1, "{diags:?}");
        assert_eq!(hits[0].severity, Severity::Warning);

        // A normal equi-join stays clean.
        let sql = "SELECT name FROM singer JOIN concert \
                   ON singer.singer_id = concert.singer_id";
        let diags = check(sql);
        assert!(find(&diags, DiagCode::ImpossibleJoin, sql).is_empty());
    }

    #[test]
    fn flow_lints_cover_compound_arms() {
        let sql = "SELECT name FROM singer WHERE age > 1 \
                   UNION SELECT name FROM singer WHERE age > 5 AND age < 2";
        let diags = check(sql);
        let hits = find(&diags, DiagCode::ContradictoryPredicate, sql);
        assert_eq!(hits.len(), 1, "{diags:?}");
        // Anchored to the compound arm's span.
        let printed = print_query(&parse_query(sql).unwrap());
        assert!(printed[hits[0].span.start..hits[0].span.end].contains("UNION"));
    }

    #[test]
    fn clean_query_has_no_diagnostics() {
        for sql in [
            "SELECT name FROM singer WHERE age > 30",
            "SELECT singer.name, COUNT(*) FROM singer JOIN concert \
             ON singer.singer_id = concert.singer_id GROUP BY singer.name",
            "SELECT name FROM singer WHERE age = (SELECT MAX(age) FROM singer)",
            "SELECT name FROM singer ORDER BY age DESC LIMIT 3",
        ] {
            assert!(check(sql).is_empty(), "unexpected diagnostics for {sql}");
        }
    }

    #[test]
    fn nearest_name_requires_unique_best() {
        assert_eq!(nearest_name("nme", ["name", "age"], 2), Some("name"));
        assert_eq!(nearest_name("xyzzy", ["name", "age"], 2), None);
        // Tie: two candidates at distance 1.
        assert_eq!(nearest_name("ab", ["aa", "bb"], 2), None);
    }

    #[test]
    fn repair_fixes_typo_level_names_only() {
        let s = schema();
        let q = parse_query("SELECT nme FROM singer").unwrap();
        let fixed = repair_query(&q, &s).expect("typo is repairable");
        assert_eq!(print_query(&fixed), "SELECT name FROM singer");
        // A semantically different name is not touched.
        let q = parse_query("SELECT venue FROM singer").unwrap();
        assert!(repair_query(&q, &s).is_none());
        // A clean query is not "repaired".
        let q = parse_query("SELECT name FROM singer").unwrap();
        assert!(repair_query(&q, &s).is_none());
    }

    #[test]
    fn repair_fixes_table_typos() {
        let s = schema();
        let q = parse_query("SELECT name FROM singerr").unwrap();
        let fixed = repair_query(&q, &s).expect("table typo repairable");
        assert_eq!(print_query(&fixed), "SELECT name FROM singer");
    }

    #[test]
    fn report_renders_errors_first() {
        let diags = check("SELECT nope FROM singer WHERE age > 'x' AND age > 30");
        let sql = "SELECT nope FROM singer WHERE age > 'x' AND age > 30";
        let report = render_report(sql, &diags);
        assert!(report.contains("error[unknown-column]"));
        let first_error = report.find("error").unwrap();
        let first_warning = report.find("warning").unwrap_or(usize::MAX);
        assert!(first_error < first_warning, "{report}");
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("name", "name"), 0);
        assert_eq!(edit_distance("name", "nmae"), 2);
        assert_eq!(edit_distance("Name", "name"), 0);
        assert_eq!(edit_distance("", "abc"), 3);
    }
}
