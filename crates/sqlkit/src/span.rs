//! Byte-range spans used to tie tokens, AST nodes, and printed SQL text
//! together.
//!
//! Spans serve two purposes in FISQL:
//!
//! 1. Parse errors report the offending source range.
//! 2. The pretty-printer records, for every clause of a printed query, the
//!    byte range it occupies in the rendered text. User *highlights*
//!    (paper §4.2, Figure 9) are byte ranges over that same rendered text,
//!    so mapping a highlight back to a clause is a span-containment lookup.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open byte range `[start, end)` into some source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first byte covered by the span.
    pub start: usize,
    /// Byte offset one past the last byte covered by the span.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        debug_assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// The empty span at a single position.
    pub fn point(at: usize) -> Self {
        Span { start: at, end: at }
    }

    /// Number of bytes covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Smallest span covering both `self` and `other`.
    pub fn merge(&self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Whether `self` fully contains `other`.
    pub fn contains(&self, other: Span) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Whether the two spans share at least one byte.
    pub fn overlaps(&self, other: Span) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Extracts the covered text from `source`. Returns an empty string if
    /// the span is out of bounds (never panics; spans may come from user
    /// highlights over stale text).
    pub fn slice<'a>(&self, source: &'a str) -> &'a str {
        source.get(self.start..self.end).unwrap_or("")
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.merge(b), Span::new(2, 9));
        assert_eq!(b.merge(a), Span::new(2, 9));
    }

    #[test]
    fn containment_and_overlap() {
        let outer = Span::new(0, 10);
        let inner = Span::new(3, 7);
        assert!(outer.contains(inner));
        assert!(!inner.contains(outer));
        assert!(outer.overlaps(inner));
        assert!(!Span::new(0, 3).overlaps(Span::new(3, 6)));
        assert!(Span::new(0, 4).overlaps(Span::new(3, 6)));
    }

    #[test]
    fn slice_is_safe_on_out_of_bounds() {
        let s = "SELECT 1";
        assert_eq!(Span::new(0, 6).slice(s), "SELECT");
        assert_eq!(Span::new(100, 200).slice(s), "");
    }

    #[test]
    fn point_is_empty() {
        assert!(Span::point(4).is_empty());
        assert_eq!(Span::point(4).len(), 0);
    }
}
