//! Pretty-printer rendering an AST back to canonical SQL text, recording
//! the byte span every clause occupies.
//!
//! The span map is the substrate for FISQL's *highlighting* feature
//! (paper Figure 9, Table 3): a user highlight is a byte range over the
//! rendered SQL, and [`SpannedSql::clause_at`] resolves it to the most
//! specific [`ClausePath`] containing it.

use crate::ast::*;
use crate::span::Span;

/// Rendered SQL text plus a clause→span map over that text.
#[derive(Debug, Clone)]
pub struct SpannedSql {
    /// The rendered SQL.
    pub text: String,
    /// `(path, span)` pairs; more specific paths may nest inside broader
    /// ones (e.g. `WherePredicate(0)` inside `Where`).
    pub spans: Vec<(ClausePath, Span)>,
    /// `(atom text, span)` pairs for every schema-referencing atom —
    /// table names in FROM, column references, function names, and `*` —
    /// in print order, recorded at **every** nesting depth (unlike clause
    /// spans, which cover only the outermost query). This is the substrate
    /// for [`crate::check`]'s span-anchored diagnostics.
    pub atoms: Vec<(String, Span)>,
}

impl SpannedSql {
    /// Span of a specific clause, if it exists in the rendered query.
    pub fn span_of(&self, path: &ClausePath) -> Option<Span> {
        self.spans.iter().find(|(p, _)| p == path).map(|(_, s)| *s)
    }

    /// The most specific clause whose span contains (or, failing that,
    /// overlaps) the given highlight span. Ties go to the smaller span.
    pub fn clause_at(&self, highlight: Span) -> Option<&ClausePath> {
        let best_containing = self
            .spans
            .iter()
            .filter(|(_, s)| s.contains(highlight))
            .min_by_key(|(_, s)| s.len());
        if let Some((p, _)) = best_containing {
            return Some(p);
        }
        self.spans
            .iter()
            .filter(|(_, s)| s.overlaps(highlight))
            .min_by_key(|(_, s)| s.len())
            .map(|(p, _)| p)
    }
}

/// Renders `query` to canonical SQL text (single line, upper-case
/// keywords).
pub fn print_query(query: &Query) -> String {
    print_query_spanned(query).text
}

/// Renders `query` and records clause spans.
pub fn print_query_spanned(query: &Query) -> SpannedSql {
    let mut p = Printer::default();
    p.query(query, true);
    SpannedSql {
        text: p.out,
        spans: p.spans,
        atoms: p.atoms,
    }
}

/// Renders a single expression.
pub fn print_expr(expr: &Expr) -> String {
    let mut p = Printer::default();
    p.expr(expr, 0);
    p.out
}

#[derive(Default)]
struct Printer {
    out: String,
    spans: Vec<(ClausePath, Span)>,
    /// Schema-referencing atoms (tables, columns, functions, `*`),
    /// recorded at every depth.
    atoms: Vec<(String, Span)>,
    /// Clause-span recording is only enabled for the outermost query.
    depth: usize,
}

impl Printer {
    fn push(&mut self, s: &str) {
        self.out.push_str(s);
    }

    /// Pushes `s` and records it as an atom (with its exact byte span).
    fn push_atom(&mut self, s: &str) {
        let start = self.out.len();
        self.out.push_str(s);
        self.atoms
            .push((s.to_string(), Span::new(start, self.out.len())));
    }

    fn mark<R>(&mut self, path: ClausePath, f: impl FnOnce(&mut Self) -> R) -> R {
        let start = self.out.len();
        let r = f(self);
        if self.depth == 0 {
            self.spans.push((path, Span::new(start, self.out.len())));
        }
        r
    }

    fn query(&mut self, q: &Query, outer: bool) {
        if !outer {
            self.depth += 1;
        }
        self.select_core(&q.core);
        for (i, (op, core)) in q.compound.iter().enumerate() {
            let start = self.out.len();
            self.push(" ");
            self.push(op.as_str());
            self.push(" ");
            self.select_core(core);
            if self.depth == 0 {
                self.spans
                    .push((ClausePath::Compound(i), Span::new(start, self.out.len())));
            }
        }
        if !q.order_by.is_empty() {
            self.mark(ClausePath::OrderBy, |p| {
                p.push(" ORDER BY ");
                for (i, item) in q.order_by.iter().enumerate() {
                    if i > 0 {
                        p.push(", ");
                    }
                    p.expr(&item.expr, 0);
                    if item.desc {
                        p.push(" DESC");
                    } else {
                        p.push(" ASC");
                    }
                }
            });
        }
        if let Some(limit) = &q.limit {
            self.mark(ClausePath::Limit, |p| {
                p.push(&format!(" LIMIT {}", limit.count));
                if let Some(off) = limit.offset {
                    p.push(&format!(" OFFSET {off}"));
                }
            });
        }
        if !outer {
            self.depth -= 1;
        }
    }

    fn select_core(&mut self, core: &SelectCore) {
        self.push("SELECT ");
        if core.distinct {
            self.push("DISTINCT ");
        }
        let list_start = self.out.len();
        for (i, item) in core.items.iter().enumerate() {
            if i > 0 {
                self.push(", ");
            }
            let start = self.out.len();
            self.select_item(item);
            if self.depth == 0 {
                self.spans
                    .push((ClausePath::SelectItem(i), Span::new(start, self.out.len())));
            }
        }
        if self.depth == 0 {
            self.spans.push((
                ClausePath::SelectList,
                Span::new(list_start, self.out.len()),
            ));
        }
        if let Some(from) = &core.from {
            self.mark(ClausePath::From, |p| {
                p.push(" FROM ");
                p.table_factor(&from.base);
                for (i, join) in from.joins.iter().enumerate() {
                    let start = p.out.len();
                    p.push(" ");
                    p.push(join.kind.as_str());
                    p.push(" ");
                    p.table_factor(&join.factor);
                    if let Some(on) = &join.constraint {
                        p.push(" ON ");
                        p.expr(on, 0);
                    }
                    if p.depth == 0 {
                        p.spans
                            .push((ClausePath::Join(i), Span::new(start, p.out.len())));
                    }
                }
            });
        }
        if let Some(w) = &core.where_clause {
            self.mark(ClausePath::Where, |p| {
                p.push(" WHERE ");
                let conjuncts = w.conjuncts();
                if conjuncts.len() > 1 {
                    // Render each conjunct with its own span so highlights
                    // can target individual predicates.
                    for (i, c) in conjuncts.iter().enumerate() {
                        if i > 0 {
                            p.push(" AND ");
                        }
                        let start = p.out.len();
                        // AND has precedence 2; operands need > 2.
                        p.expr(c, 3);
                        if p.depth == 0 {
                            p.spans.push((
                                ClausePath::WherePredicate(i),
                                Span::new(start, p.out.len()),
                            ));
                        }
                    }
                } else {
                    let start = p.out.len();
                    p.expr(w, 0);
                    if p.depth == 0 {
                        p.spans
                            .push((ClausePath::WherePredicate(0), Span::new(start, p.out.len())));
                    }
                }
            });
        }
        if !core.group_by.is_empty() {
            self.mark(ClausePath::GroupBy, |p| {
                p.push(" GROUP BY ");
                for (i, e) in core.group_by.iter().enumerate() {
                    if i > 0 {
                        p.push(", ");
                    }
                    p.expr(e, 0);
                }
            });
        }
        if let Some(h) = &core.having {
            self.mark(ClausePath::Having, |p| {
                p.push(" HAVING ");
                p.expr(h, 0);
            });
        }
    }

    fn select_item(&mut self, item: &SelectItem) {
        match item {
            SelectItem::Wildcard => self.push_atom("*"),
            SelectItem::QualifiedWildcard(t) => {
                self.push_atom(&format!("{t}.*"));
            }
            SelectItem::Expr { expr, alias } => {
                self.expr(expr, 0);
                if let Some(a) = alias {
                    self.push(" AS ");
                    self.push(a);
                }
            }
        }
    }

    fn table_factor(&mut self, f: &TableFactor) {
        match f {
            TableFactor::Table { name, alias } => {
                self.push_atom(name);
                if let Some(a) = alias {
                    self.push(" AS ");
                    self.push(a);
                }
            }
            TableFactor::Derived { subquery, alias } => {
                self.push("(");
                self.query(subquery, false);
                self.push(") AS ");
                self.push(alias);
            }
        }
    }

    /// Prints `e`, parenthesising when its top-level binding power is below
    /// `min_prec` (the precedence context of the caller).
    fn expr(&mut self, e: &Expr, min_prec: u8) {
        match e {
            Expr::Column(c) => self.push_atom(&c.to_string()),
            Expr::Literal(l) => self.push(&l.to_string()),
            Expr::Wildcard => self.push_atom("*"),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => {
                    self.push("-");
                    self.expr(expr, 7);
                }
                UnaryOp::Not => {
                    let need = min_prec > 2;
                    if need {
                        self.push("(");
                    }
                    self.push("NOT ");
                    self.expr(expr, 3);
                    if need {
                        self.push(")");
                    }
                }
            },
            Expr::Binary { left, op, right } => {
                let prec = op.precedence();
                let need = prec < min_prec;
                if need {
                    self.push("(");
                }
                self.expr(left, prec);
                self.push(" ");
                self.push(op.as_str());
                self.push(" ");
                self.expr(right, prec + 1);
                if need {
                    self.push(")");
                }
            }
            Expr::Call {
                func,
                distinct,
                args,
            } => {
                self.push_atom(func.as_str());
                self.push("(");
                if *distinct {
                    self.push("DISTINCT ");
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    self.expr(a, 0);
                }
                self.push(")");
            }
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                self.push("CASE");
                if let Some(op) = operand {
                    self.push(" ");
                    self.expr(op, 0);
                }
                for (w, t) in branches {
                    self.push(" WHEN ");
                    self.expr(w, 0);
                    self.push(" THEN ");
                    self.expr(t, 0);
                }
                if let Some(el) = else_branch {
                    self.push(" ELSE ");
                    self.expr(el, 0);
                }
                self.push(" END");
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                self.predicate_open(min_prec);
                self.expr(expr, 4);
                self.push(if *negated { " NOT IN (" } else { " IN (" });
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    self.expr(e, 0);
                }
                self.push(")");
                self.predicate_close(min_prec);
            }
            Expr::InSubquery {
                expr,
                subquery,
                negated,
            } => {
                self.predicate_open(min_prec);
                self.expr(expr, 4);
                self.push(if *negated { " NOT IN (" } else { " IN (" });
                self.query(subquery, false);
                self.push(")");
                self.predicate_close(min_prec);
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                self.predicate_open(min_prec);
                self.expr(expr, 4);
                self.push(if *negated {
                    " NOT BETWEEN "
                } else {
                    " BETWEEN "
                });
                self.expr(low, 4);
                self.push(" AND ");
                self.expr(high, 4);
                self.predicate_close(min_prec);
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                self.predicate_open(min_prec);
                self.expr(expr, 4);
                self.push(if *negated { " NOT LIKE " } else { " LIKE " });
                self.expr(pattern, 4);
                self.predicate_close(min_prec);
            }
            Expr::IsNull { expr, negated } => {
                self.predicate_open(min_prec);
                self.expr(expr, 4);
                self.push(if *negated { " IS NOT NULL" } else { " IS NULL" });
                self.predicate_close(min_prec);
            }
            Expr::Exists { subquery, negated } => {
                if *negated {
                    self.push("NOT ");
                }
                self.push("EXISTS (");
                self.query(subquery, false);
                self.push(")");
            }
            Expr::Subquery(q) => {
                self.push("(");
                self.query(q, false);
                self.push(")");
            }
        }
    }

    /// Predicates (IN/BETWEEN/LIKE/IS NULL) sit at precedence 3.
    fn predicate_open(&mut self, min_prec: u8) {
        if min_prec > 3 {
            self.push("(");
        }
    }

    fn predicate_close(&mut self, min_prec: u8) {
        if min_prec > 3 {
            self.push(")");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn roundtrip(sql: &str) -> String {
        let q = parse_query(sql).unwrap_or_else(|e| panic!("{}", e.render(sql)));
        let printed = print_query(&q);
        let q2 =
            parse_query(&printed).unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        assert_eq!(q, q2, "printed form `{printed}` did not roundtrip");
        printed
    }

    #[test]
    fn roundtrips_basic_queries() {
        for sql in [
            "SELECT name FROM singer",
            "SELECT DISTINCT a, b AS x FROM t WHERE a > 1 AND b < 2",
            "SELECT COUNT(*) FROM t GROUP BY c HAVING COUNT(*) > 3",
            "SELECT a FROM t ORDER BY a DESC LIMIT 10 OFFSET 2",
            "SELECT * FROM a JOIN b ON a.id = b.aid LEFT JOIN c ON b.id = c.bid",
            "SELECT a FROM t UNION SELECT b FROM s",
            "SELECT a FROM t WHERE x IN (SELECT y FROM s)",
            "SELECT a FROM t WHERE x BETWEEN 1 AND 5",
            "SELECT a FROM t WHERE name LIKE 'A%'",
            "SELECT a FROM t WHERE x IS NOT NULL",
            "SELECT a FROM (SELECT b AS a FROM s) AS d",
            "SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t",
            "SELECT COUNT(DISTINCT a) FROM t",
            "SELECT a FROM t WHERE NOT (a = 1 OR b = 2)",
        ] {
            roundtrip(sql);
        }
    }

    #[test]
    fn parenthesization_preserves_structure() {
        let printed = roundtrip("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3");
        assert!(printed.contains('('), "printed: {printed}");
    }

    #[test]
    fn no_spurious_parens_in_plain_conjunction() {
        let printed = roundtrip("SELECT * FROM t WHERE a = 1 AND b = 2");
        assert!(!printed.contains('('), "printed: {printed}");
    }

    #[test]
    fn spans_cover_clauses() {
        let q = parse_query(
            "SELECT name, age FROM singer WHERE age > 30 AND name LIKE 'A%' \
             GROUP BY name HAVING COUNT(*) > 1 ORDER BY age DESC LIMIT 3",
        )
        .unwrap();
        let spanned = print_query_spanned(&q);
        let text = &spanned.text;
        let w = spanned.span_of(&ClausePath::Where).unwrap();
        assert!(w.slice(text).starts_with(" WHERE"));
        let ob = spanned.span_of(&ClausePath::OrderBy).unwrap();
        assert!(ob.slice(text).starts_with(" ORDER BY"));
        let lim = spanned.span_of(&ClausePath::Limit).unwrap();
        assert!(lim.slice(text).contains("LIMIT 3"));
        let p0 = spanned.span_of(&ClausePath::WherePredicate(0)).unwrap();
        assert_eq!(p0.slice(text), "age > 30");
        let p1 = spanned.span_of(&ClausePath::WherePredicate(1)).unwrap();
        assert_eq!(p1.slice(text), "name LIKE 'A%'");
    }

    #[test]
    fn clause_at_finds_most_specific() {
        let q = parse_query("SELECT name FROM singer WHERE age > 30 AND city = 'NYC'").unwrap();
        let spanned = print_query_spanned(&q);
        // Highlight the `30` literal.
        let pos = spanned.text.find("30").unwrap();
        let path = spanned.clause_at(Span::new(pos, pos + 2)).unwrap();
        assert_eq!(path, &ClausePath::WherePredicate(0));
        // Highlight the second predicate's column.
        let pos = spanned.text.find("city").unwrap();
        let path = spanned.clause_at(Span::new(pos, pos + 4)).unwrap();
        assert_eq!(path, &ClausePath::WherePredicate(1));
    }

    #[test]
    fn clause_at_handles_straddling_highlights() {
        let q = parse_query("SELECT name FROM singer ORDER BY name ASC").unwrap();
        let spanned = print_query_spanned(&q);
        // Highlight straddling FROM into ORDER BY resolves to an
        // overlapping clause rather than None.
        let from_pos = spanned.text.find("singer").unwrap();
        let hl = Span::new(from_pos, spanned.text.len());
        assert!(spanned.clause_at(hl).is_some());
    }

    #[test]
    fn subquery_spans_not_recorded() {
        let q = parse_query("SELECT a FROM t WHERE x IN (SELECT y FROM s WHERE z = 1)").unwrap();
        let spanned = print_query_spanned(&q);
        // Exactly one Where span: the outer one.
        let wheres: Vec<_> = spanned
            .spans
            .iter()
            .filter(|(p, _)| *p == ClausePath::Where)
            .collect();
        assert_eq!(wheres.len(), 1);
    }

    #[test]
    fn select_item_spans() {
        let q = parse_query("SELECT name, COUNT(*) AS n FROM t GROUP BY name").unwrap();
        let spanned = print_query_spanned(&q);
        assert_eq!(
            spanned
                .span_of(&ClausePath::SelectItem(0))
                .unwrap()
                .slice(&spanned.text),
            "name"
        );
        assert_eq!(
            spanned
                .span_of(&ClausePath::SelectItem(1))
                .unwrap()
                .slice(&spanned.text),
            "COUNT(*) AS n"
        );
    }

    #[test]
    fn compound_spans() {
        let q = parse_query("SELECT a FROM t UNION SELECT b FROM s").unwrap();
        let spanned = print_query_spanned(&q);
        let c = spanned.span_of(&ClausePath::Compound(0)).unwrap();
        assert!(c.slice(&spanned.text).starts_with(" UNION"));
    }

    #[test]
    fn atom_spans_cover_tables_columns_and_functions() {
        let q = parse_query(
            "SELECT name, COUNT(*) FROM singer JOIN concert ON singer.singer_id = concert.singer_id \
             WHERE age > 30",
        )
        .unwrap();
        let spanned = print_query_spanned(&q);
        for (atom, span) in &spanned.atoms {
            assert_eq!(
                span.slice(&spanned.text),
                atom,
                "atom span must slice to its text"
            );
        }
        let texts: Vec<&str> = spanned.atoms.iter().map(|(a, _)| a.as_str()).collect();
        for expected in [
            "name",
            "COUNT",
            "*",
            "singer",
            "concert",
            "singer.singer_id",
            "concert.singer_id",
            "age",
        ] {
            assert!(
                texts.contains(&expected),
                "missing atom {expected}: {texts:?}"
            );
        }
    }

    #[test]
    fn atoms_recorded_inside_subqueries() {
        let q = parse_query("SELECT a FROM t WHERE x IN (SELECT y FROM s)").unwrap();
        let spanned = print_query_spanned(&q);
        let texts: Vec<&str> = spanned.atoms.iter().map(|(a, _)| a.as_str()).collect();
        assert!(
            texts.contains(&"y"),
            "subquery column atom missing: {texts:?}"
        );
        assert!(
            texts.contains(&"s"),
            "subquery table atom missing: {texts:?}"
        );
    }

    #[test]
    fn between_in_comparison_context_parenthesised() {
        // (a BETWEEN 1 AND 2) = TRUE requires parens when printed back.
        let e = Expr::binary(
            Expr::Between {
                expr: Box::new(Expr::col("a")),
                low: Box::new(Expr::num(1)),
                high: Box::new(Expr::num(2)),
                negated: false,
            },
            BinOp::Eq,
            Expr::Literal(Literal::Bool(true)),
        );
        let printed = print_expr(&e);
        assert!(printed.starts_with('('), "printed: {printed}");
    }
}
