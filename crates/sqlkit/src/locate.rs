//! Static fault localization: rank the places a wrong query is most
//! likely wrong, without executing anything.
//!
//! The pass fuses three independent evidence streams into one ranked
//! list of [`FaultSite`]s:
//!
//! 1. **Analyzer diagnostics** ([`check_query`]) — unknown names, type
//!    mismatches, grouping violations — each already anchored to a byte
//!    span of the canonically printed SQL.
//! 2. **Abstract-interpretation facts** — the flow pass's contradiction /
//!    impossibility lints arrive through the same diagnostic channel but
//!    get their own confidence band, since they prove a *semantic* dead
//!    end rather than a name-resolution slip.
//! 3. **Feedback and highlight cues** ([`FeedbackCues`]) — schema
//!    entities, literals, aggregate words, and sort-direction words
//!    mentioned in the user's natural-language feedback, plus the byte
//!    range the user highlighted (paper §4.2), mapped to clauses of the
//!    printed query.
//!
//! Every site carries the *kind* of element it accuses (relation,
//! attribute, function, literal, operator), a span into
//! [`print_query_spanned`]'s text, the owning clause, and an integer
//! confidence in `[0, 100]`. Confidence is integral on purpose: ranking
//! must be bit-reproducible across platforms, and float comparison has
//! no business in a determinism-critical sort key.
//!
//! The ranked list feeds `sqlkit::repair`, which enumerates minimal
//! structure-preserving edits at each site.

use crate::ast::{ClausePath, Expr, Func, Literal, Query};
use crate::check::{check_query, DiagCode, SchemaInfo, Severity};
use crate::printer::{print_query_spanned, SpannedSql};
use crate::span::Span;

/// The kind of query element a fault site accuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// A table reference (wrong table, missing join partner).
    Relation,
    /// A column reference (wrong or missing column).
    Attribute,
    /// A function or aggregate call (wrong aggregate, bad arguments).
    Function,
    /// A literal value (wrong year, number, or string constant).
    Literal,
    /// A comparison / direction / quantifier operator (wrong comparison,
    /// wrong sort direction, missing DISTINCT or LIMIT).
    Operator,
}

impl FaultKind {
    /// Stable kebab-case name, used in reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::Relation => "relation",
            FaultKind::Attribute => "attribute",
            FaultKind::Function => "function",
            FaultKind::Literal => "literal",
            FaultKind::Operator => "operator",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One ranked fault site: where the query is suspected wrong and why.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSite {
    /// What kind of element is accused.
    pub kind: FaultKind,
    /// Byte span into the canonically printed SQL.
    pub span: Span,
    /// The clause that owns the span.
    pub clause: ClausePath,
    /// The accused text (table / column / literal / operator spelling).
    pub subject: String,
    /// Integer confidence in `[0, 100]`; higher ranks first.
    pub confidence: u32,
    /// Evidence streams that contributed (`"check"`, `"flow"`,
    /// `"feedback"`, `"highlight"`).
    pub sources: Vec<&'static str>,
}

/// Optional context for [`locate_faults`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LocateOptions<'a> {
    /// The user's natural-language feedback, if any.
    pub feedback: Option<&'a str>,
    /// The user's highlight over the printed previous query, if any.
    pub highlight: Option<Span>,
}

/// Cues mined from natural-language feedback against a schema: literal
/// values, schema entities, aggregate words, and direction words. Shared
/// by localization (site ranking) and repair (edit enumeration).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeedbackCues {
    /// Four-digit years mentioned (`1900..=2100`).
    pub years: Vec<i64>,
    /// Other integers mentioned.
    pub numbers: Vec<i64>,
    /// Decimal numbers mentioned.
    pub floats: Vec<f64>,
    /// Quoted strings mentioned, original casing preserved.
    pub strings: Vec<String>,
    /// Schema tables named in the feedback (canonical schema spelling).
    pub tables: Vec<String>,
    /// Schema columns named in the feedback (canonical schema spelling).
    pub columns: Vec<String>,
    /// Aggregate functions implied by feedback wording.
    pub aggregates: Vec<Func>,
    /// Feedback asks for ascending order.
    pub ascending: bool,
    /// Feedback asks for descending order.
    pub descending: bool,
    /// Feedback is phrased as a removal ("do not", "remove", "without").
    pub removal: bool,
    /// Feedback talks about row count ("top", "limit", "first N").
    pub limit_hint: bool,
}

impl FeedbackCues {
    /// Mines cues from `text`, entity-linking table and column mentions
    /// against `schema` (longest humanized name first, so `singer_id`
    /// wins over `singer` when the text says "singer id").
    pub fn extract(text: &str, schema: &SchemaInfo) -> FeedbackCues {
        let lower = text.to_lowercase();
        let mut cues = FeedbackCues::default();

        extract_numbers(&lower, &mut cues);
        cues.strings = extract_quoted(text);
        link_entities(&lower, schema, &mut cues);

        for (phrase, func) in [
            ("average", Func::Avg),
            ("mean ", Func::Avg),
            ("how many", Func::Count),
            ("number of", Func::Count),
            ("count", Func::Count),
            ("total", Func::Sum),
            ("sum", Func::Sum),
            ("minimum", Func::Min),
            ("lowest", Func::Min),
            ("smallest", Func::Min),
            ("earliest", Func::Min),
            ("maximum", Func::Max),
            ("highest", Func::Max),
            ("largest", Func::Max),
            ("latest", Func::Max),
        ] {
            if lower.contains(phrase) && !cues.aggregates.contains(&func) {
                cues.aggregates.push(func);
            }
        }

        cues.ascending = lower.contains("ascending") || lower.contains("increasing");
        cues.descending = lower.contains("descending")
            || lower.contains("decreasing")
            || lower.contains("reversed");
        cues.removal = ["do not", "don't", "no need", "remove", "without", "exclude"]
            .iter()
            .any(|w| lower.contains(w));
        cues.limit_hint =
            lower.contains("top ") || lower.contains("limit") || lower.contains("first ");
        cues
    }
}

fn extract_numbers(lower: &str, cues: &mut FeedbackCues) {
    let bytes = lower.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                i += 1;
            }
            let tok = &lower[start..i];
            if let Some(dot) = tok.find('.') {
                // "2.5" is a float cue; a trailing dot ("since 2020.") is not.
                if dot + 1 < tok.len() && tok[dot + 1..].bytes().all(|b| b.is_ascii_digit()) {
                    if let Ok(x) = tok.parse::<f64>() {
                        cues.floats.push(x);
                    }
                } else if let Ok(n) = tok[..dot].parse::<i64>() {
                    push_int(cues, n);
                }
            } else if let Ok(n) = tok.parse::<i64>() {
                push_int(cues, n);
            }
        } else {
            i += 1;
        }
    }
}

fn push_int(cues: &mut FeedbackCues, n: i64) {
    if (1900..=2100).contains(&n) {
        if !cues.years.contains(&n) {
            cues.years.push(n);
        }
    } else if !cues.numbers.contains(&n) {
        cues.numbers.push(n);
    }
}

fn extract_quoted(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for quote in ['\'', '"'] {
        let mut parts = text.split(quote);
        // Odd-indexed fragments are inside quotes.
        let _ = parts.next();
        while let (Some(inside), rest) = (parts.next(), parts.next()) {
            if !inside.is_empty() && !out.contains(&inside.to_string()) {
                out.push(inside.to_string());
            }
            if rest.is_none() {
                break;
            }
        }
    }
    out
}

/// Underscores to spaces, lowercased — the verbalizer's naming scheme.
fn humanize(name: &str) -> String {
    name.to_lowercase().replace('_', " ")
}

/// Finds `needle` in `hay` at a word boundary (optionally followed by a
/// plural `s`). Returns the byte range of the match.
fn find_word(hay: &str, needle: &str) -> Option<(usize, usize)> {
    let mut from = 0;
    while let Some(rel) = hay[from..].find(needle) {
        let start = from + rel;
        let mut end = start + needle.len();
        let before_ok = start == 0
            || !hay[..start]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric());
        if hay[end..].starts_with('s') {
            end += 1;
        }
        let after_ok = !hay[end..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric());
        if before_ok && after_ok {
            return Some((start, end));
        }
        from = start + needle.len().max(1);
    }
    None
}

fn link_entities(lower: &str, schema: &SchemaInfo, cues: &mut FeedbackCues) {
    // (humanized, canonical, is_table); longest humanized first so
    // compound names win over their prefixes. Ties break on name for
    // determinism; tables win over same-length columns.
    let mut entities: Vec<(String, String, bool)> = Vec::new();
    for t in &schema.tables {
        entities.push((humanize(&t.name), t.name.clone(), true));
        for c in &t.columns {
            let h = humanize(&c.name);
            if !entities.iter().any(|(eh, _, it)| !*it && *eh == h) {
                entities.push((h, c.name.clone(), false));
            }
        }
    }
    entities.sort_by(|a, b| {
        b.0.len()
            .cmp(&a.0.len())
            .then_with(|| b.2.cmp(&a.2))
            .then_with(|| a.0.cmp(&b.0))
    });

    let mut masked = lower.to_string();
    for (h, canonical, is_table) in entities {
        if h.len() < 3 {
            continue;
        }
        if let Some((start, end)) = find_word(&masked, &h) {
            masked.replace_range(start..end, &"\u{1}".repeat(end - start));
            if is_table {
                if !cues.tables.contains(&canonical) {
                    cues.tables.push(canonical);
                }
            } else if !cues.columns.contains(&canonical) {
                cues.columns.push(canonical);
            }
        }
    }
}

/// How a diagnostic code maps onto a fault kind.
fn diag_kind(code: DiagCode) -> FaultKind {
    match code {
        DiagCode::UnknownTable
        | DiagCode::DuplicateAlias
        | DiagCode::DisconnectedJoin
        | DiagCode::ImpossibleJoin => FaultKind::Relation,
        DiagCode::UnknownColumn
        | DiagCode::AmbiguousColumn
        | DiagCode::UngroupedColumn
        | DiagCode::OrderByTarget => FaultKind::Attribute,
        DiagCode::AggregateInWhere
        | DiagCode::NestedAggregate
        | DiagCode::BadArity
        | DiagCode::ExtraArgument
        | DiagCode::BadArgType
        | DiagCode::HavingWithoutAggregate
        | DiagCode::MisplacedWildcard
        | DiagCode::SetOpArity
        | DiagCode::SubqueryArity => FaultKind::Function,
        DiagCode::TypeMismatch
        | DiagCode::ContradictoryPredicate
        | DiagCode::TautologicalPredicate
        | DiagCode::RedundantPredicate => FaultKind::Operator,
        DiagCode::LimitZero => FaultKind::Literal,
    }
}

fn is_flow_code(code: DiagCode) -> bool {
    matches!(
        code,
        DiagCode::ContradictoryPredicate
            | DiagCode::TautologicalPredicate
            | DiagCode::RedundantPredicate
            | DiagCode::ImpossibleJoin
            | DiagCode::LimitZero
    )
}

/// The year carried by a literal: a bare number in `1900..=2100`, or the
/// leading four digits of a date-shaped string.
pub fn literal_year(lit: &Literal) -> Option<i64> {
    match lit {
        Literal::Number(n) if (1900..=2100).contains(n) => Some(*n),
        Literal::String(s) if s.len() >= 4 && s.as_bytes()[..4].iter().all(u8::is_ascii_digit) => {
            s[..4].parse().ok().filter(|y| (1900..=2100).contains(y))
        }
        _ => None,
    }
}

/// Anchors a literal inside its clause: searches the clause's printed
/// text for the literal's canonical spelling. Falls back to the clause
/// span itself.
fn literal_span(spanned: &SpannedSql, clause: &ClausePath, lit: &Literal) -> Span {
    let clause_span = spanned
        .span_of(clause)
        .unwrap_or(Span::new(0, spanned.text.len()));
    let needle = lit.to_string();
    if let Some(rel) = clause_span.slice(&spanned.text).find(&needle) {
        let start = clause_span.start + rel;
        return Span::new(start, start + needle.len());
    }
    clause_span
}

fn clause_fallback_span(spanned: &SpannedSql, clause: &ClausePath) -> Span {
    spanned
        .span_of(clause)
        .unwrap_or(Span::point(spanned.text.len()))
}

/// All literals of an expression, not descending into subqueries.
fn expr_literals(e: &Expr) -> Vec<Literal> {
    let mut out = Vec::new();
    e.walk(&mut |x| {
        if let Expr::Literal(l) = x {
            out.push(l.clone());
        }
    });
    out
}

struct SiteBuilder {
    sites: Vec<FaultSite>,
}

impl SiteBuilder {
    fn push(
        &mut self,
        kind: FaultKind,
        span: Span,
        clause: ClausePath,
        subject: String,
        confidence: u32,
        source: &'static str,
    ) {
        self.sites.push(FaultSite {
            kind,
            span,
            clause,
            subject,
            confidence,
            sources: vec![source],
        });
    }
}

/// Localizes likely faults in `query`, fusing analyzer diagnostics, flow
/// facts, and (optionally) feedback / highlight cues into a ranked list.
/// Deterministic: integer confidences, stable tie-breaks, capped at 12
/// sites.
pub fn locate_faults(
    query: &Query,
    schema: &SchemaInfo,
    opts: LocateOptions<'_>,
) -> Vec<FaultSite> {
    let spanned = print_query_spanned(query);
    let mut b = SiteBuilder { sites: Vec::new() };

    // Stream 1 + 2: analyzer diagnostics (flow lints ride the same
    // channel but prove semantic dead-ends, so they outrank warnings).
    for d in check_query(query, schema) {
        let confidence = if d.severity == Severity::Error {
            90
        } else if is_flow_code(d.code) {
            70
        } else {
            55
        };
        let clause = spanned
            .clause_at(d.span)
            .cloned()
            .unwrap_or(ClausePath::SelectList);
        let source = if is_flow_code(d.code) {
            "flow"
        } else {
            "check"
        };
        let subject = d.span.slice(&spanned.text).to_string();
        b.push(
            diag_kind(d.code),
            d.span,
            clause,
            subject,
            confidence,
            source,
        );
    }

    // Stream 3: feedback cues.
    if let Some(text) = opts.feedback {
        let cues = FeedbackCues::extract(text, schema);
        feedback_sites(query, schema, &spanned, &cues, &mut b);
    }

    // Stream 3b: highlight — boost overlapping sites, or accuse the
    // highlighted clause directly when nothing else pointed there.
    if let Some(h) = opts.highlight {
        let mut hit = false;
        for s in &mut b.sites {
            if s.span.overlaps(h) {
                s.confidence = (s.confidence + 15).min(99);
                s.sources.push("highlight");
                hit = true;
            }
        }
        if !hit {
            if let Some(clause) = spanned.clause_at(h).cloned() {
                let kind = match clause {
                    ClausePath::From | ClausePath::Join(_) => FaultKind::Relation,
                    ClausePath::SelectItem(_) | ClausePath::SelectList | ClausePath::GroupBy => {
                        FaultKind::Attribute
                    }
                    ClausePath::Limit => FaultKind::Literal,
                    _ => FaultKind::Operator,
                };
                let subject = h.slice(&spanned.text).to_string();
                b.push(kind, h, clause, subject, 65, "highlight");
            }
        }
    }

    // Merge sites that accuse the same (kind, span): corroborating
    // evidence raises confidence instead of duplicating the row.
    let mut merged: Vec<FaultSite> = Vec::new();
    for s in b.sites {
        if let Some(prev) = merged
            .iter_mut()
            .find(|p| p.kind == s.kind && p.span == s.span)
        {
            prev.confidence = (prev.confidence.max(s.confidence) + 8).min(99);
            for src in s.sources {
                if !prev.sources.contains(&src) {
                    prev.sources.push(src);
                }
            }
        } else {
            merged.push(s);
        }
    }

    merged.sort_by(|a, b| {
        b.confidence
            .cmp(&a.confidence)
            .then_with(|| a.span.start.cmp(&b.span.start))
            .then_with(|| a.kind.cmp(&b.kind))
            .then_with(|| a.subject.cmp(&b.subject))
    });
    merged.truncate(12);
    merged
}

/// Sites suggested by feedback cues alone: literals the feedback
/// contradicts, schema entities it names that the query lacks, aggregate
/// words that disagree with the aggregates in use, and direction words
/// that disagree with ORDER BY.
fn feedback_sites(
    query: &Query,
    _schema: &SchemaInfo,
    spanned: &SpannedSql,
    cues: &FeedbackCues,
    b: &mut SiteBuilder,
) {
    let core = &query.core;

    // Literal cues against WHERE conjuncts (and HAVING).
    let mut clauses: Vec<(ClausePath, &Expr)> = Vec::new();
    if let Some(w) = &core.where_clause {
        for (i, conj) in w.conjuncts().into_iter().enumerate() {
            clauses.push((ClausePath::WherePredicate(i), conj));
        }
    }
    if let Some(h) = &core.having {
        clauses.push((ClausePath::Having, h));
    }
    for (clause, expr) in &clauses {
        for lit in expr_literals(expr) {
            let accused = match &lit {
                _ if !cues.years.is_empty() => {
                    literal_year(&lit).is_some_and(|y| !cues.years.contains(&y))
                }
                Literal::Number(n) => {
                    literal_year(&lit).is_none()
                        && !cues.numbers.is_empty()
                        && !cues.numbers.contains(n)
                }
                Literal::Float(x) => !cues.floats.is_empty() && !cues.floats.iter().any(|c| c == x),
                Literal::String(s) => {
                    !cues.strings.is_empty()
                        && !cues.strings.iter().any(|c| c.eq_ignore_ascii_case(s))
                }
                _ => false,
            };
            if accused {
                let conf = if cues.years.is_empty() { 62 } else { 80 };
                b.push(
                    FaultKind::Literal,
                    literal_span(spanned, clause, &lit),
                    clause.clone(),
                    lit.to_string(),
                    conf,
                    "feedback",
                );
            }
        }
    }

    // A number cue disagreeing with LIMIT accuses the LIMIT literal; a
    // row-count phrase with no LIMIT at all accuses the missing clause.
    match (&query.limit, cues.numbers.is_empty()) {
        (Some(limit), false)
            if !cues
                .numbers
                .iter()
                .any(|n| u64::try_from(*n).is_ok_and(|u| u == limit.count)) =>
        {
            b.push(
                FaultKind::Literal,
                clause_fallback_span(spanned, &ClausePath::Limit),
                ClausePath::Limit,
                limit.count.to_string(),
                68,
                "feedback",
            );
        }
        (None, false) if cues.limit_hint => {
            b.push(
                FaultKind::Literal,
                clause_fallback_span(spanned, &ClausePath::Limit),
                ClausePath::Limit,
                String::new(),
                60,
                "feedback",
            );
        }
        _ => {}
    }

    // Schema tables named in feedback but absent from the query.
    let query_tables = query.all_table_names();
    for t in &cues.tables {
        if !query_tables.iter().any(|q| q.eq_ignore_ascii_case(t)) {
            b.push(
                FaultKind::Relation,
                clause_fallback_span(spanned, &ClausePath::From),
                ClausePath::From,
                t.clone(),
                65,
                "feedback",
            );
        }
    }

    // Columns named in feedback: absent ones accuse the clause the
    // feedback wording suggests; present ones mark the existing atom as
    // the thing under discussion (lower confidence).
    let mut referenced: Vec<String> = Vec::new();
    for c in query.cores() {
        let mut visit = |e: &Expr| {
            for cr in e.columns() {
                if !referenced
                    .iter()
                    .any(|r| r.eq_ignore_ascii_case(&cr.column))
                {
                    referenced.push(cr.column.clone());
                }
            }
        };
        for item in &c.items {
            if let crate::ast::SelectItem::Expr { expr, .. } = item {
                visit(expr);
            }
        }
        if let Some(w) = &c.where_clause {
            visit(w);
        }
        for g in &c.group_by {
            visit(g);
        }
        if let Some(h) = &c.having {
            visit(h);
        }
    }
    for o in &query.order_by {
        for cr in o.expr.columns() {
            if !referenced
                .iter()
                .any(|r| r.eq_ignore_ascii_case(&cr.column))
            {
                referenced.push(cr.column.clone());
            }
        }
    }

    for col in &cues.columns {
        if referenced.iter().any(|r| r.eq_ignore_ascii_case(col)) {
            if let Some((_, span)) = spanned.atoms.iter().find(|(a, _)| {
                a.eq_ignore_ascii_case(col)
                    || a.to_lowercase()
                        .ends_with(&format!(".{}", col.to_lowercase()))
            }) {
                let clause = spanned
                    .clause_at(*span)
                    .cloned()
                    .unwrap_or(ClausePath::SelectList);
                b.push(
                    FaultKind::Attribute,
                    *span,
                    clause,
                    col.clone(),
                    45,
                    "feedback",
                );
            }
        } else {
            let clause = cues
                .ascending
                .then_some(ClausePath::OrderBy)
                .or_else(|| cues.descending.then_some(ClausePath::OrderBy))
                .unwrap_or(ClausePath::SelectList);
            b.push(
                FaultKind::Attribute,
                clause_fallback_span(spanned, &clause),
                clause,
                col.clone(),
                60,
                "feedback",
            );
        }
    }

    // Aggregate words against the aggregates actually used.
    let mut used_aggs: Vec<(Func, usize)> = Vec::new();
    for (i, item) in core.items.iter().enumerate() {
        if let crate::ast::SelectItem::Expr { expr, .. } = item {
            expr.walk(&mut |e| {
                if let Expr::Call { func, .. } = e {
                    if func.is_aggregate() {
                        used_aggs.push((*func, i));
                    }
                }
            });
        }
    }
    for want in &cues.aggregates {
        for (used, item_idx) in &used_aggs {
            if used != want {
                let span = spanned
                    .atoms
                    .iter()
                    .find(|(a, _)| a.eq_ignore_ascii_case(used.as_str()))
                    .map_or_else(
                        || clause_fallback_span(spanned, &ClausePath::SelectItem(*item_idx)),
                        |(_, s)| *s,
                    );
                b.push(
                    FaultKind::Function,
                    span,
                    ClausePath::SelectItem(*item_idx),
                    used.as_str().to_string(),
                    72,
                    "feedback",
                );
            }
        }
    }

    // Direction words against ORDER BY.
    if cues.ascending || cues.descending {
        let mismatch = query
            .order_by
            .first()
            .is_none_or(|o| o.desc != cues.descending);
        if mismatch {
            let conf = if query.order_by.is_empty() { 52 } else { 74 };
            b.push(
                FaultKind::Operator,
                clause_fallback_span(spanned, &ClausePath::OrderBy),
                ClausePath::OrderBy,
                if cues.descending { "DESC" } else { "ASC" }.to_string(),
                conf,
                "feedback",
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{ColType, TableInfo};
    use crate::parser::parse_query;

    fn schema() -> SchemaInfo {
        SchemaInfo::new(vec![
            TableInfo::new(
                "singer",
                vec![
                    ("singer_id", ColType::Int),
                    ("name", ColType::Text),
                    ("age", ColType::Int),
                    ("country", ColType::Text),
                ],
            ),
            TableInfo::new(
                "concert",
                vec![
                    ("concert_id", ColType::Int),
                    ("singer_id", ColType::Int),
                    ("year", ColType::Int),
                ],
            )
            .with_fk("singer_id", "singer", "singer_id"),
        ])
    }

    #[test]
    fn cues_link_schema_entities_and_literals() {
        let cues = FeedbackCues::extract(
            "show the singer names from 2024, not 2023, and the average age",
            &schema(),
        );
        assert_eq!(cues.years, vec![2024, 2023]);
        assert!(cues.tables.contains(&"singer".to_string()));
        assert!(cues.columns.contains(&"age".to_string()));
        assert!(cues.aggregates.contains(&Func::Avg));
    }

    #[test]
    fn compound_column_wins_over_prefix_table() {
        let cues = FeedbackCues::extract("use the singer id", &schema());
        assert!(cues.columns.contains(&"singer_id".to_string()));
        assert!(!cues.tables.contains(&"singer".to_string()));
    }

    #[test]
    fn diagnostics_become_ranked_sites() {
        let q = parse_query("SELECT nam FROM singer").unwrap();
        let sites = locate_faults(&q, &schema(), LocateOptions::default());
        assert!(!sites.is_empty());
        assert_eq!(sites[0].kind, FaultKind::Attribute);
        assert_eq!(sites[0].subject, "nam");
        assert!(sites[0].confidence >= 90);
        assert!(sites[0].sources.contains(&"check"));
    }

    #[test]
    fn year_feedback_accuses_the_stale_literal() {
        let q = parse_query("SELECT COUNT(*) FROM concert WHERE year = 2023").unwrap();
        let sites = locate_faults(
            &q,
            &schema(),
            LocateOptions {
                feedback: Some("we are in 2024"),
                highlight: None,
            },
        );
        let top = &sites[0];
        assert_eq!(top.kind, FaultKind::Literal);
        assert_eq!(top.subject, "2023");
        let sql = crate::printer::print_query(&q);
        assert_eq!(top.span.slice(&sql), "2023");
    }

    #[test]
    fn aggregate_feedback_accuses_the_wrong_aggregate() {
        let q = parse_query("SELECT SUM(age) FROM singer").unwrap();
        let sites = locate_faults(
            &q,
            &schema(),
            LocateOptions {
                feedback: Some("I wanted the average age, not the total age"),
                highlight: None,
            },
        );
        assert!(sites
            .iter()
            .any(|s| s.kind == FaultKind::Function && s.subject == "SUM"));
    }

    #[test]
    fn highlight_boosts_overlapping_sites() {
        let q = parse_query("SELECT COUNT(*) FROM concert WHERE year = 2023").unwrap();
        let sql = crate::printer::print_query(&q);
        let at = sql.find("2023").unwrap();
        let base = locate_faults(
            &q,
            &schema(),
            LocateOptions {
                feedback: Some("we are in 2024"),
                highlight: None,
            },
        );
        let boosted = locate_faults(
            &q,
            &schema(),
            LocateOptions {
                feedback: Some("we are in 2024"),
                highlight: Some(Span::new(at, at + 4)),
            },
        );
        assert!(boosted[0].confidence > base[0].confidence);
        assert!(boosted[0].sources.contains(&"highlight"));
    }

    #[test]
    fn localization_is_deterministic() {
        let q = parse_query("SELECT SUM(age) FROM singer WHERE age > 30").unwrap();
        let opts = LocateOptions {
            feedback: Some("show the average age of singers over 40"),
            highlight: None,
        };
        let a = locate_faults(&q, &schema(), opts);
        let b = locate_faults(&q, &schema(), opts);
        assert_eq!(a, b);
    }
}
