//! Error types for lexing and parsing.

use crate::span::Span;
use std::fmt;

/// An error produced while lexing or parsing SQL text.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Where in the input it went wrong.
    pub span: Span,
}

impl ParseError {
    /// Creates a parse error at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            message: message.into(),
            span,
        }
    }

    /// Renders the error with a caret line pointing into `source`.
    pub fn render(&self, source: &str) -> String {
        let mut out = format!(
            "parse error: {} at byte {}\n",
            self.message, self.span.start
        );
        // Find the line containing the error.
        let start = source[..self.span.start.min(source.len())]
            .rfind('\n')
            .map(|i| i + 1)
            .unwrap_or(0);
        let end = source[start..]
            .find('\n')
            .map(|i| start + i)
            .unwrap_or(source.len());
        let line = &source[start..end];
        out.push_str(line);
        out.push('\n');
        let col = self.span.start.saturating_sub(start);
        out.extend(std::iter::repeat_n(' ', col));
        let width = self
            .span
            .len()
            .max(1)
            .min(end.saturating_sub(self.span.start).max(1));
        out.extend(std::iter::repeat_n('^', width));
        out
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl std::error::Error for ParseError {}

/// Convenience result alias for parser APIs.
pub type ParseResult<T> = Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_error() {
        let src = "SELECT FROM t";
        let err = ParseError::new("expected expression", Span::new(7, 11));
        let rendered = err.render(src);
        assert!(rendered.contains("SELECT FROM t"));
        assert!(rendered.contains("^^^^"));
        assert!(rendered.lines().last().unwrap().starts_with("       ^"));
    }

    #[test]
    fn display_includes_span() {
        let err = ParseError::new("boom", Span::new(1, 2));
        assert_eq!(err.to_string(), "boom at 1..2");
    }
}
