//! Recursive-descent parser for the FISQL SQL subset.
//!
//! Grammar (informal):
//!
//! ```text
//! query      := select_core (setop select_core)* order? limit?
//! setop      := UNION [ALL] | INTERSECT | EXCEPT
//! select_core:= SELECT [DISTINCT] items [FROM from] [WHERE expr]
//!               [GROUP BY exprs [HAVING expr]]
//! from       := factor (join)*
//! join       := [INNER|LEFT [OUTER]|RIGHT [OUTER]|CROSS] JOIN factor [ON expr]
//! factor     := ident [AS? alias] | '(' query ')' AS? alias
//! expr       := precedence-climbing over OR/AND/NOT/cmp/add/mul with
//!               postfix IN / BETWEEN / LIKE / IS [NOT] NULL
//! primary    := literal | column | '(' query ')' | '(' expr ')'
//!               | func '(' [DISTINCT] args ')' | CASE ... END | EXISTS (...)
//! ```

use crate::ast::*;
use crate::error::{ParseError, ParseResult};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind};

/// Parses a single SQL query (optionally `;`-terminated). Trailing input is
/// an error.
pub fn parse_query(input: &str) -> ParseResult<Query> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let q = p.query()?;
    p.eat_if(&TokenKind::Semicolon);
    p.expect_kind(&TokenKind::Eof)?;
    Ok(q)
}

/// Parses a standalone scalar/boolean expression (used by tests and by the
/// feedback-grounding machinery to parse user-highlighted fragments).
pub fn parse_expr(input: &str) -> ParseResult<Expr> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let e = p.expr(0)?;
    p.expect_kind(&TokenKind::Eof)?;
    Ok(e)
}

/// Maximum recursion depth across subqueries, parenthesised expressions,
/// and unary-operator chains. Deeper input gets a diagnostic instead of a
/// stack overflow — adversarial nesting must never abort the process.
const MAX_DEPTH: usize = 128;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_kw(&self, kw: Keyword) -> bool {
        matches!(&self.peek().kind, TokenKind::Keyword(k) if *k == kw)
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.at_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> ParseResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected keyword {kw}")))
        }
    }

    fn eat_if(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind) -> ParseResult<()> {
        if self.eat_if(kind) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected {}", kind.describe())))
        }
    }

    fn unexpected(&self, expectation: &str) -> ParseError {
        let t = self.peek();
        ParseError::new(
            format!("{expectation}, found {}", t.kind.describe()),
            t.span,
        )
    }

    fn ident(&mut self) -> ParseResult<(String, Span)> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                let t = self.advance();
                match t.kind {
                    TokenKind::Ident(name) => Ok((name, t.span)),
                    _ => unreachable!("peeked Ident"),
                }
            }
            _ => Err(self.unexpected("expected identifier")),
        }
    }

    /// Bumps the recursion depth, failing with a diagnostic past
    /// [`MAX_DEPTH`]. Every recursive entry point (`query`, `expr`,
    /// `unary`) calls this; the matching decrement lives in the wrapper
    /// that called it.
    fn descend(&mut self) -> ParseResult<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(ParseError::new(
                format!("query nesting exceeds {MAX_DEPTH} levels"),
                self.peek().span,
            ));
        }
        Ok(())
    }

    // ---- query level ----------------------------------------------------

    fn query(&mut self) -> ParseResult<Query> {
        self.descend()?;
        let out = self.query_inner();
        self.depth -= 1;
        out
    }

    fn query_inner(&mut self) -> ParseResult<Query> {
        let core = self.select_core()?;
        let mut compound = Vec::new();
        loop {
            let op = if self.eat_kw(Keyword::Union) {
                if self.eat_kw(Keyword::All) {
                    SetOp::UnionAll
                } else {
                    SetOp::Union
                }
            } else if self.eat_kw(Keyword::Intersect) {
                SetOp::Intersect
            } else if self.eat_kw(Keyword::Except) {
                SetOp::Except
            } else {
                break;
            };
            compound.push((op, self.select_core()?));
        }
        let order_by = self.order_by()?;
        let limit = self.limit()?;
        Ok(Query {
            core,
            compound,
            order_by,
            limit,
        })
    }

    fn select_core(&mut self) -> ParseResult<SelectCore> {
        self.expect_kw(Keyword::Select)?;
        let distinct = self.eat_kw(Keyword::Distinct);
        let mut items = vec![self.select_item()?];
        while self.eat_if(&TokenKind::Comma) {
            items.push(self.select_item()?);
        }
        let from = if self.eat_kw(Keyword::From) {
            Some(self.from_clause()?)
        } else {
            None
        };
        let where_clause = if self.eat_kw(Keyword::Where) {
            Some(self.expr(0)?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        let mut having = None;
        if self.at_kw(Keyword::Group) {
            self.advance();
            self.expect_kw(Keyword::By)?;
            group_by.push(self.expr(0)?);
            while self.eat_if(&TokenKind::Comma) {
                group_by.push(self.expr(0)?);
            }
            if self.eat_kw(Keyword::Having) {
                having = Some(self.expr(0)?);
            }
        }
        Ok(SelectCore {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
        })
    }

    fn select_item(&mut self) -> ParseResult<SelectItem> {
        if self.eat_if(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `t.*`
        if let (TokenKind::Ident(name), TokenKind::Dot) = (&self.peek().kind, &self.peek2().kind) {
            if self.tokens.get(self.pos + 2).map(|t| &t.kind) == Some(&TokenKind::Star) {
                let name = name.clone();
                self.advance();
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.expr(0)?;
        let alias = self.alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    /// Parses `[AS] alias` when present. A bare identifier only counts as
    /// an alias when it is not a clause-starting keyword (that case is
    /// already excluded because keywords are not identifiers).
    fn alias(&mut self) -> ParseResult<Option<String>> {
        if self.eat_kw(Keyword::As) {
            let (name, _) = self.ident()?;
            return Ok(Some(name));
        }
        if let TokenKind::Ident(_) = &self.peek().kind {
            let (name, _) = self.ident()?;
            return Ok(Some(name));
        }
        Ok(None)
    }

    #[allow(clippy::wrong_self_convention)]
    fn from_clause(&mut self) -> ParseResult<FromClause> {
        let base = self.table_factor()?;
        let mut joins = Vec::new();
        loop {
            let kind = if self.eat_kw(Keyword::Join) {
                JoinKind::Inner
            } else if self.at_kw(Keyword::Inner) {
                self.advance();
                self.expect_kw(Keyword::Join)?;
                JoinKind::Inner
            } else if self.at_kw(Keyword::Left) {
                self.advance();
                self.eat_kw(Keyword::Outer);
                self.expect_kw(Keyword::Join)?;
                JoinKind::Left
            } else if self.at_kw(Keyword::Right) {
                self.advance();
                self.eat_kw(Keyword::Outer);
                self.expect_kw(Keyword::Join)?;
                JoinKind::Right
            } else if self.at_kw(Keyword::Cross) {
                self.advance();
                self.expect_kw(Keyword::Join)?;
                JoinKind::Cross
            } else if self.eat_if(&TokenKind::Comma) {
                // `FROM a, b` is an implicit cross join.
                JoinKind::Cross
            } else {
                break;
            };
            let factor = self.table_factor()?;
            let constraint = if self.eat_kw(Keyword::On) {
                Some(self.expr(0)?)
            } else {
                None
            };
            joins.push(Join {
                kind,
                factor,
                constraint,
            });
        }
        Ok(FromClause { base, joins })
    }

    fn table_factor(&mut self) -> ParseResult<TableFactor> {
        if self.eat_if(&TokenKind::LParen) {
            let subquery = Box::new(self.query()?);
            self.expect_kind(&TokenKind::RParen)?;
            self.eat_kw(Keyword::As);
            let (alias, _) = self.ident()?;
            return Ok(TableFactor::Derived { subquery, alias });
        }
        let (name, _) = self.ident()?;
        let alias = self.alias()?;
        Ok(TableFactor::Table { name, alias })
    }

    fn order_by(&mut self) -> ParseResult<Vec<OrderItem>> {
        if !self.at_kw(Keyword::Order) {
            return Ok(Vec::new());
        }
        self.advance();
        self.expect_kw(Keyword::By)?;
        let mut items = Vec::new();
        loop {
            let expr = self.expr(0)?;
            let desc = if self.eat_kw(Keyword::Desc) {
                true
            } else {
                self.eat_kw(Keyword::Asc);
                false
            };
            items.push(OrderItem { expr, desc });
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn limit(&mut self) -> ParseResult<Option<LimitClause>> {
        if !self.eat_kw(Keyword::Limit) {
            return Ok(None);
        }
        let count = self.unsigned()?;
        let offset = if self.eat_kw(Keyword::Offset) {
            Some(self.unsigned()?)
        } else {
            None
        };
        Ok(Some(LimitClause { count, offset }))
    }

    fn unsigned(&mut self) -> ParseResult<u64> {
        match &self.peek().kind {
            TokenKind::Number(n) if *n >= 0 => {
                let n = *n as u64;
                self.advance();
                Ok(n)
            }
            _ => Err(self.unexpected("expected a non-negative integer")),
        }
    }

    // ---- expressions -----------------------------------------------------

    /// Precedence-climbing expression parser. `min_prec` is the minimum
    /// binding power a binary operator must have to be consumed.
    fn expr(&mut self, min_prec: u8) -> ParseResult<Expr> {
        self.descend()?;
        let out = self.expr_inner(min_prec);
        self.depth -= 1;
        out
    }

    fn expr_inner(&mut self, min_prec: u8) -> ParseResult<Expr> {
        let mut lhs = self.unary()?;
        loop {
            // Postfix predicates bind tighter than AND/OR but looser than
            // comparisons; SQL treats them at comparison level (prec 3).
            lhs = self.postfix(lhs, min_prec)?;
            let op = match self.binop() {
                Some(op) if op.precedence() >= min_prec.max(1) && op.precedence() >= min_prec => op,
                _ => break,
            };
            if op.precedence() < min_prec {
                break;
            }
            self.advance_binop(op);
            let rhs = self.expr(op.precedence() + 1)?;
            lhs = Expr::binary(lhs, op, rhs);
        }
        Ok(lhs)
    }

    /// Peeks the next binary operator without consuming it.
    fn binop(&self) -> Option<BinOp> {
        Some(match &self.peek().kind {
            TokenKind::Plus => BinOp::Add,
            TokenKind::Minus => BinOp::Sub,
            TokenKind::Star => BinOp::Mul,
            TokenKind::Slash => BinOp::Div,
            TokenKind::Percent => BinOp::Mod,
            TokenKind::Eq => BinOp::Eq,
            TokenKind::NotEq => BinOp::NotEq,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::LtEq => BinOp::LtEq,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::GtEq => BinOp::GtEq,
            TokenKind::Keyword(Keyword::And) => BinOp::And,
            TokenKind::Keyword(Keyword::Or) => BinOp::Or,
            _ => return None,
        })
    }

    fn advance_binop(&mut self, _op: BinOp) {
        self.advance();
    }

    /// Postfix predicate operators: IN, BETWEEN, LIKE, IS [NOT] NULL, and
    /// NOT-prefixed forms. These sit at precedence 3 — above AND (2),
    /// below comparisons (4).
    fn postfix(&mut self, lhs: Expr, min_prec: u8) -> ParseResult<Expr> {
        const PREDICATE_PREC: u8 = 3;
        if min_prec > PREDICATE_PREC {
            return Ok(lhs);
        }
        let mut lhs = lhs;
        loop {
            let negated = if self.at_kw(Keyword::Not)
                && matches!(
                    self.peek2().kind,
                    TokenKind::Keyword(Keyword::In | Keyword::Between | Keyword::Like)
                ) {
                self.advance();
                true
            } else {
                false
            };
            if self.eat_kw(Keyword::In) {
                self.expect_kind(&TokenKind::LParen)?;
                if self.at_kw(Keyword::Select) {
                    let subquery = Box::new(self.query()?);
                    self.expect_kind(&TokenKind::RParen)?;
                    lhs = Expr::InSubquery {
                        expr: Box::new(lhs),
                        subquery,
                        negated,
                    };
                } else {
                    let mut list = vec![self.expr(0)?];
                    while self.eat_if(&TokenKind::Comma) {
                        list.push(self.expr(0)?);
                    }
                    self.expect_kind(&TokenKind::RParen)?;
                    lhs = Expr::InList {
                        expr: Box::new(lhs),
                        list,
                        negated,
                    };
                }
            } else if self.eat_kw(Keyword::Between) {
                // Bounds parse above AND precedence so the connective AND
                // is not swallowed.
                let low = self.expr(BinOp::And.precedence() + 1)?;
                self.expect_kw(Keyword::And)?;
                let high = self.expr(BinOp::And.precedence() + 1)?;
                lhs = Expr::Between {
                    expr: Box::new(lhs),
                    low: Box::new(low),
                    high: Box::new(high),
                    negated,
                };
            } else if self.eat_kw(Keyword::Like) {
                let pattern = self.expr(PREDICATE_PREC + 1)?;
                lhs = Expr::Like {
                    expr: Box::new(lhs),
                    pattern: Box::new(pattern),
                    negated,
                };
            } else if self.at_kw(Keyword::Is) {
                self.advance();
                let negated = self.eat_kw(Keyword::Not);
                self.expect_kw(Keyword::Null)?;
                lhs = Expr::IsNull {
                    expr: Box::new(lhs),
                    negated,
                };
            } else {
                if negated {
                    return Err(self.unexpected("expected IN, BETWEEN, or LIKE after NOT"));
                }
                return Ok(lhs);
            }
        }
    }

    fn unary(&mut self) -> ParseResult<Expr> {
        self.descend()?;
        let out = self.unary_inner();
        self.depth -= 1;
        out
    }

    fn unary_inner(&mut self) -> ParseResult<Expr> {
        if self.eat_kw(Keyword::Not) {
            let inner = self.expr(BinOp::And.precedence() + 1)?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        if self.eat_if(&TokenKind::Minus) {
            let inner = self.unary()?;
            // Fold negative numeric literals immediately.
            return Ok(match inner {
                Expr::Literal(Literal::Number(n)) => Expr::Literal(Literal::Number(-n)),
                Expr::Literal(Literal::Float(x)) => Expr::Literal(Literal::Float(-x)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.eat_if(&TokenKind::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> ParseResult<Expr> {
        match self.peek().kind.clone() {
            TokenKind::Number(n) => {
                self.advance();
                Ok(Expr::Literal(Literal::Number(n)))
            }
            TokenKind::Float(x) => {
                self.advance();
                Ok(Expr::Literal(Literal::Float(x)))
            }
            TokenKind::String(s) => {
                self.advance();
                Ok(Expr::Literal(Literal::String(s)))
            }
            TokenKind::Keyword(Keyword::Null) => {
                self.advance();
                Ok(Expr::Literal(Literal::Null))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.advance();
                Ok(Expr::Literal(Literal::Bool(true)))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.advance();
                Ok(Expr::Literal(Literal::Bool(false)))
            }
            TokenKind::Keyword(Keyword::Exists) => {
                self.advance();
                self.expect_kind(&TokenKind::LParen)?;
                let subquery = Box::new(self.query()?);
                self.expect_kind(&TokenKind::RParen)?;
                Ok(Expr::Exists {
                    subquery,
                    negated: false,
                })
            }
            TokenKind::Keyword(Keyword::Case) => self.case_expr(),
            TokenKind::LParen => {
                self.advance();
                if self.at_kw(Keyword::Select) {
                    let subquery = Box::new(self.query()?);
                    self.expect_kind(&TokenKind::RParen)?;
                    Ok(Expr::Subquery(subquery))
                } else {
                    let e = self.expr(0)?;
                    self.expect_kind(&TokenKind::RParen)?;
                    Ok(e)
                }
            }
            TokenKind::Star => {
                self.advance();
                Ok(Expr::Wildcard)
            }
            TokenKind::Ident(name) => {
                // Function call?
                if self.peek2().kind == TokenKind::LParen {
                    if let Some(func) = Func::from_name(&name) {
                        self.advance(); // name
                        self.advance(); // (
                        let distinct = self.eat_kw(Keyword::Distinct);
                        let mut args = Vec::new();
                        if !self.eat_if(&TokenKind::RParen) {
                            loop {
                                if self.eat_if(&TokenKind::Star) {
                                    args.push(Expr::Wildcard);
                                } else {
                                    args.push(self.expr(0)?);
                                }
                                if !self.eat_if(&TokenKind::Comma) {
                                    break;
                                }
                            }
                            self.expect_kind(&TokenKind::RParen)?;
                        }
                        return Ok(Expr::Call {
                            func,
                            distinct,
                            args,
                        });
                    }
                    return Err(ParseError::new(
                        format!("unknown function `{name}`"),
                        self.peek().span,
                    ));
                }
                self.advance();
                // Qualified column `t.c`?
                if self.eat_if(&TokenKind::Dot) {
                    let (col, _) = self.ident()?;
                    Ok(Expr::Column(ColumnRef::qualified(name, col)))
                } else {
                    Ok(Expr::Column(ColumnRef::bare(name)))
                }
            }
            _ => Err(self.unexpected("expected expression")),
        }
    }

    fn case_expr(&mut self) -> ParseResult<Expr> {
        self.expect_kw(Keyword::Case)?;
        let operand = if self.at_kw(Keyword::When) {
            None
        } else {
            Some(Box::new(self.expr(0)?))
        };
        let mut branches = Vec::new();
        while self.eat_kw(Keyword::When) {
            let when = self.expr(0)?;
            self.expect_kw(Keyword::Then)?;
            let then = self.expr(0)?;
            branches.push((when, then));
        }
        if branches.is_empty() {
            return Err(self.unexpected("expected WHEN after CASE"));
        }
        let else_branch = if self.eat_kw(Keyword::Else) {
            Some(Box::new(self.expr(0)?))
        } else {
            None
        };
        self.expect_kw(Keyword::End)?;
        Ok(Expr::Case {
            operand,
            branches,
            else_branch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(sql: &str) -> Query {
        parse_query(sql).unwrap_or_else(|e| panic!("{}", e.render(sql)))
    }

    #[test]
    fn parses_minimal_select() {
        let query = q("SELECT name FROM singer");
        assert_eq!(query.core.items.len(), 1);
        assert_eq!(
            query.core.from.as_ref().unwrap().base,
            TableFactor::table("singer")
        );
    }

    #[test]
    fn parses_select_without_from() {
        let query = q("SELECT 1 + 2");
        assert!(query.core.from.is_none());
    }

    #[test]
    fn parses_distinct_and_aliases() {
        let query = q("SELECT DISTINCT name AS n, age a FROM singer s");
        assert!(query.core.distinct);
        assert_eq!(
            query.core.items[0],
            SelectItem::aliased(Expr::col("name"), "n")
        );
        assert_eq!(
            query.core.items[1],
            SelectItem::aliased(Expr::col("age"), "a")
        );
        assert_eq!(
            query.core.from.as_ref().unwrap().base,
            TableFactor::aliased("singer", "s")
        );
    }

    #[test]
    fn parses_wildcards() {
        let query = q("SELECT *, t.* FROM t");
        assert_eq!(query.core.items[0], SelectItem::Wildcard);
        assert_eq!(
            query.core.items[1],
            SelectItem::QualifiedWildcard("t".into())
        );
    }

    #[test]
    fn parses_joins() {
        let query =
            q("SELECT * FROM a JOIN b ON a.id = b.aid LEFT JOIN c ON b.id = c.bid CROSS JOIN d");
        let from = query.core.from.as_ref().unwrap();
        assert_eq!(from.joins.len(), 3);
        assert_eq!(from.joins[0].kind, JoinKind::Inner);
        assert_eq!(from.joins[1].kind, JoinKind::Left);
        assert_eq!(from.joins[2].kind, JoinKind::Cross);
        assert!(from.joins[2].constraint.is_none());
    }

    #[test]
    fn parses_comma_join() {
        let query = q("SELECT * FROM a, b WHERE a.id = b.aid");
        let from = query.core.from.as_ref().unwrap();
        assert_eq!(from.joins.len(), 1);
        assert_eq!(from.joins[0].kind, JoinKind::Cross);
    }

    #[test]
    fn parses_where_precedence() {
        let query = q("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
        // OR is the root: (a=1) OR ((b=2) AND (c=3))
        match query.core.where_clause.unwrap() {
            Expr::Binary {
                op: BinOp::Or,
                right,
                ..
            } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("expected OR at root, got {other:?}"),
        }
    }

    #[test]
    fn parses_arithmetic_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Add,
                right,
                ..
            } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_parens_override() {
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_group_by_having() {
        let query = q("SELECT city, COUNT(*) FROM t GROUP BY city HAVING COUNT(*) > 2");
        assert_eq!(query.core.group_by, vec![Expr::col("city")]);
        assert!(query.core.having.is_some());
    }

    #[test]
    fn parses_order_limit_offset() {
        let query = q("SELECT a FROM t ORDER BY a DESC, b LIMIT 10 OFFSET 5");
        assert_eq!(query.order_by.len(), 2);
        assert!(query.order_by[0].desc);
        assert!(!query.order_by[1].desc);
        assert_eq!(
            query.limit,
            Some(LimitClause {
                count: 10,
                offset: Some(5)
            })
        );
    }

    #[test]
    fn parses_aggregates_and_distinct_arg() {
        let query = q("SELECT COUNT(*), COUNT(DISTINCT city), AVG(age) FROM t");
        assert_eq!(query.core.items[0], SelectItem::expr(Expr::count_star()));
        match &query.core.items[1] {
            SelectItem::Expr {
                expr: Expr::Call { func, distinct, .. },
                ..
            } => {
                assert_eq!(*func, Func::Count);
                assert!(*distinct);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_in_list_and_subquery() {
        let query = q("SELECT * FROM t WHERE a IN (1, 2, 3) AND b NOT IN (SELECT id FROM s)");
        let w = query.core.where_clause.unwrap();
        let parts = w.conjuncts();
        assert!(matches!(parts[0], Expr::InList { negated: false, .. }));
        assert!(matches!(parts[1], Expr::InSubquery { negated: true, .. }));
    }

    #[test]
    fn parses_between_with_and() {
        let query = q("SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b = 2");
        let w = query.core.where_clause.unwrap();
        let parts = w.conjuncts();
        assert_eq!(parts.len(), 2);
        assert!(matches!(parts[0], Expr::Between { .. }));
    }

    #[test]
    fn parses_not_between() {
        let e = parse_expr("a NOT BETWEEN 1 AND 2").unwrap();
        assert!(matches!(e, Expr::Between { negated: true, .. }));
    }

    #[test]
    fn parses_like_and_is_null() {
        let query = q("SELECT * FROM t WHERE name LIKE 'A%' AND x IS NOT NULL AND y IS NULL");
        let w = query.core.where_clause.unwrap();
        let parts = w.conjuncts();
        assert!(matches!(parts[0], Expr::Like { negated: false, .. }));
        assert!(matches!(parts[1], Expr::IsNull { negated: true, .. }));
        assert!(matches!(parts[2], Expr::IsNull { negated: false, .. }));
    }

    #[test]
    fn parses_exists() {
        let query = q("SELECT * FROM t WHERE EXISTS (SELECT 1 FROM s WHERE s.tid = t.id)");
        assert!(matches!(
            query.core.where_clause.unwrap(),
            Expr::Exists { negated: false, .. }
        ));
    }

    #[test]
    fn parses_not_exists_via_not() {
        let query = q("SELECT * FROM t WHERE NOT EXISTS (SELECT 1 FROM s)");
        assert!(matches!(
            query.core.where_clause.unwrap(),
            Expr::Unary {
                op: UnaryOp::Not,
                ..
            }
        ));
    }

    #[test]
    fn parses_scalar_subquery() {
        let query = q("SELECT name FROM singer WHERE age = (SELECT MIN(age) FROM singer)");
        let w = query.core.where_clause.unwrap();
        match w {
            Expr::Binary { right, .. } => assert!(matches!(*right, Expr::Subquery(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_derived_table() {
        let query = q("SELECT x.n FROM (SELECT name AS n FROM singer) AS x");
        match &query.core.from.as_ref().unwrap().base {
            TableFactor::Derived { alias, .. } => assert_eq!(alias, "x"),
            other @ TableFactor::Table { .. } => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_set_ops() {
        let query = q("SELECT a FROM t UNION SELECT b FROM s EXCEPT SELECT c FROM r ORDER BY 1");
        assert_eq!(query.compound.len(), 2);
        assert_eq!(query.compound[0].0, SetOp::Union);
        assert_eq!(query.compound[1].0, SetOp::Except);
        assert_eq!(query.order_by.len(), 1);
    }

    #[test]
    fn parses_union_all() {
        let query = q("SELECT a FROM t UNION ALL SELECT a FROM s");
        assert_eq!(query.compound[0].0, SetOp::UnionAll);
    }

    #[test]
    fn parses_case() {
        let e = parse_expr("CASE WHEN a > 1 THEN 'big' ELSE 'small' END").unwrap();
        match e {
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                assert!(operand.is_none());
                assert_eq!(branches.len(), 1);
                assert!(else_branch.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_case_with_operand() {
        let e = parse_expr("CASE x WHEN 1 THEN 'a' WHEN 2 THEN 'b' END").unwrap();
        match e {
            Expr::Case {
                operand, branches, ..
            } => {
                assert!(operand.is_some());
                assert_eq!(branches.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_negative_literals() {
        assert_eq!(
            parse_expr("-5").unwrap(),
            Expr::Literal(Literal::Number(-5))
        );
        assert_eq!(
            parse_expr("-2.5").unwrap(),
            Expr::Literal(Literal::Float(-2.5))
        );
    }

    #[test]
    fn parses_qualified_columns() {
        let e = parse_expr("t.c + s.d").unwrap();
        let cols = e.columns();
        assert_eq!(cols[0], &ColumnRef::qualified("t", "c"));
        assert_eq!(cols[1], &ColumnRef::qualified("s", "d"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_query("SELECT a FROM t b c").is_err());
        assert!(parse_query("SELECT a FROM t) ").is_err());
    }

    #[test]
    fn rejects_unknown_function() {
        assert!(parse_query("SELECT FOO(a) FROM t").is_err());
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse_query("").is_err());
        assert!(parse_query("   ").is_err());
    }

    #[test]
    fn rejects_keywords_as_bare_columns() {
        assert!(parse_query("SELECT select FROM t").is_err());
    }

    #[test]
    fn quoted_keyword_identifier_works() {
        let query = q("SELECT \"select\" FROM t");
        assert_eq!(query.core.items[0], SelectItem::expr(Expr::col("select")));
    }

    #[test]
    fn semicolon_terminated_ok() {
        assert!(parse_query("SELECT a FROM t;").is_ok());
    }

    #[test]
    fn error_positions_are_useful() {
        let err = parse_query("SELECT a FROM WHERE x = 1").unwrap_err();
        assert!(err.span.start >= 14, "span was {:?}", err.span);
    }

    #[test]
    fn deeply_nested_subqueries() {
        let sql = "SELECT a FROM t WHERE x IN (SELECT y FROM s WHERE z IN (SELECT w FROM r WHERE v = (SELECT MAX(u) FROM p)))";
        assert!(parse_query(sql).is_ok());
    }

    #[test]
    fn pathological_nesting_errors_instead_of_overflowing() {
        // 10k opening parens: must produce a diagnostic, not a stack
        // overflow (each paren recurses through expr → unary → primary).
        let bomb = format!("SELECT {}1", "(".repeat(10_000));
        let err = parse_query(&bomb).unwrap_err();
        assert!(
            err.message.contains("nesting exceeds"),
            "wanted a depth diagnostic, got: {}",
            err.message
        );

        // A unary-minus chain recurses through unary() directly.
        let minus_bomb = format!("SELECT {}x FROM t", "- ".repeat(10_000));
        assert!(parse_query(&minus_bomb).is_err());

        // NOT chains recurse through unary() → expr().
        let not_bomb = format!("SELECT * FROM t WHERE {}1 = 1", "NOT ".repeat(10_000));
        assert!(parse_query(&not_bomb).is_err());

        // Deep subquery nesting in FROM position.
        let sub_bomb = format!(
            "SELECT * FROM {}t{} x",
            "(SELECT * FROM ".repeat(5_000),
            ") y".repeat(5_000)
        );
        assert!(parse_query(&sub_bomb).is_err());
    }

    #[test]
    fn reasonable_nesting_stays_within_the_depth_budget() {
        // 20 paren levels is far beyond real SPIDER SQL and must parse.
        let nested = format!("SELECT {}1{} FROM t", "(".repeat(20), ")".repeat(20));
        assert!(parse_query(&nested).is_ok());
    }

    #[test]
    fn not_with_comparison_binds_correctly() {
        // NOT binds looser than comparisons: NOT a = 1 → NOT (a = 1)
        let e = parse_expr("NOT a = 1").unwrap();
        match e {
            Expr::Unary {
                op: UnaryOp::Not,
                expr,
            } => assert!(matches!(*expr, Expr::Binary { op: BinOp::Eq, .. })),
            other => panic!("{other:?}"),
        }
    }
}
