//! Abstract syntax tree for the SQL subset FISQL manipulates.
//!
//! The subset is the SELECT-statement language of the SPIDER benchmark:
//! joins, aggregation with GROUP BY/HAVING, ORDER BY/LIMIT, nested
//! subqueries (scalar, `IN`, `EXISTS`), set operations, and the usual
//! scalar expression zoo. FISQL's feedback edits are *clause-level*
//! operations over this tree (see [`crate::edit`]), and highlight
//! grounding maps rendered-text spans back to [`ClausePath`]s.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A reference to a column, optionally qualified by a table name or alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Qualifier (`t` in `t.c`), if present.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Unqualified column reference.
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }

    /// Qualified column reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{}.{}", t, self.column),
            None => f.write_str(&self.column),
        }
    }
}

/// A literal value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    /// Integer literal.
    Number(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal.
    String(String),
    /// Boolean literal.
    Bool(bool),
    /// SQL NULL.
    Null,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Number(n) => write!(f, "{n}"),
            Literal::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Literal::String(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Bool(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
            Literal::Null => f.write_str("NULL"),
        }
    }
}

/// Binary operators, both scalar and logical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinOp {
    /// SQL spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::NotEq => "!=",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }

    /// Whether the operator compares values (yields a boolean).
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }

    /// Binding power for the printer/parser; higher binds tighter.
    pub fn precedence(&self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 6,
        }
    }

    /// The comparison with operands swapped (`a < b` ⇔ `b > a`), identity
    /// for everything else.
    pub fn flipped(&self) -> BinOp {
        match self {
            BinOp::Lt => BinOp::Gt,
            BinOp::LtEq => BinOp::GtEq,
            BinOp::Gt => BinOp::Lt,
            BinOp::GtEq => BinOp::LtEq,
            other => *other,
        }
    }

    /// The logical complement of a comparison (`NOT (a < b)` ⇔ `a >= b`
    /// under the engine's total value order, with NULL operands yielding
    /// NULL on both sides). `None` for non-comparison operators, which
    /// have no operator-level complement.
    pub fn negated(&self) -> Option<BinOp> {
        match self {
            BinOp::Eq => Some(BinOp::NotEq),
            BinOp::NotEq => Some(BinOp::Eq),
            BinOp::Lt => Some(BinOp::GtEq),
            BinOp::LtEq => Some(BinOp::Gt),
            BinOp::Gt => Some(BinOp::LtEq),
            BinOp::GtEq => Some(BinOp::Lt),
            _ => None,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// Built-in functions, including the five SQL aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Func {
    Count,
    Sum,
    Avg,
    Min,
    Max,
    Abs,
    Lower,
    Upper,
    Length,
    Round,
    Coalesce,
    Substr,
}

impl Func {
    /// Whether the function is an aggregate.
    pub fn is_aggregate(&self) -> bool {
        matches!(
            self,
            Func::Count | Func::Sum | Func::Avg | Func::Min | Func::Max
        )
    }

    /// SQL spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Func::Count => "COUNT",
            Func::Sum => "SUM",
            Func::Avg => "AVG",
            Func::Min => "MIN",
            Func::Max => "MAX",
            Func::Abs => "ABS",
            Func::Lower => "LOWER",
            Func::Upper => "UPPER",
            Func::Length => "LENGTH",
            Func::Round => "ROUND",
            Func::Coalesce => "COALESCE",
            Func::Substr => "SUBSTR",
        }
    }

    /// Case-insensitive lookup.
    pub fn from_name(name: &str) -> Option<Func> {
        let f = match name.to_ascii_uppercase().as_str() {
            "COUNT" => Func::Count,
            "SUM" => Func::Sum,
            "AVG" => Func::Avg,
            "MIN" => Func::Min,
            "MAX" => Func::Max,
            "ABS" => Func::Abs,
            "LOWER" => Func::Lower,
            "UPPER" => Func::Upper,
            "LENGTH" => Func::Length,
            "ROUND" => Func::Round,
            "COALESCE" => Func::Coalesce,
            "SUBSTR" | "SUBSTRING" => Func::Substr,
            _ => return None,
        };
        Some(f)
    }
}

impl fmt::Display for Func {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A scalar (or boolean) expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal value.
    Literal(Literal),
    /// `*` — valid only as `COUNT(*)` argument.
    Wildcard,
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Function call, possibly aggregate, possibly `DISTINCT`-qualified.
    Call {
        /// Which function.
        func: Func,
        /// `COUNT(DISTINCT x)` style.
        distinct: bool,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`
    Case {
        /// Optional `CASE <operand> WHEN ...` operand.
        operand: Option<Box<Expr>>,
        /// `(when, then)` arms.
        branches: Vec<(Expr, Expr)>,
        /// `ELSE` arm.
        else_branch: Option<Box<Expr>>,
    },
    /// `expr [NOT] IN (e1, e2, ...)`
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT ...)`
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// Subquery producing candidates.
        subquery: Box<Query>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern with `%`/`_` wildcards.
        pattern: Box<Expr>,
        /// `NOT LIKE`.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT ...)`
    Exists {
        /// Subquery tested for row existence.
        subquery: Box<Query>,
        /// `NOT EXISTS`.
        negated: bool,
    },
    /// Scalar subquery.
    Subquery(Box<Query>),
}

impl Expr {
    /// Shorthand for a column reference expression.
    pub fn col(column: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::bare(column))
    }

    /// Shorthand for a qualified column reference expression.
    pub fn qcol(table: impl Into<String>, column: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::qualified(table, column))
    }

    /// Shorthand for an integer literal.
    pub fn num(n: i64) -> Expr {
        Expr::Literal(Literal::Number(n))
    }

    /// Shorthand for a string literal.
    pub fn str(s: impl Into<String>) -> Expr {
        Expr::Literal(Literal::String(s.into()))
    }

    /// Shorthand for a binary expression.
    pub fn binary(left: Expr, op: BinOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// `self AND other` (the identity when chaining onto an empty WHERE is
    /// handled by callers).
    pub fn and(self, other: Expr) -> Expr {
        Expr::binary(self, BinOp::And, other)
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::binary(self, BinOp::Or, other)
    }

    /// An aggregate or scalar function call.
    pub fn call(func: Func, args: Vec<Expr>) -> Expr {
        Expr::Call {
            func,
            distinct: false,
            args,
        }
    }

    /// `COUNT(*)`.
    pub fn count_star() -> Expr {
        Expr::call(Func::Count, vec![Expr::Wildcard])
    }

    /// Whether this expression (transitively, not descending into
    /// subqueries) contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if let Expr::Call { func, .. } = e {
                if func.is_aggregate() {
                    found = true;
                }
            }
        });
        found
    }

    /// Pre-order walk over this expression's own nodes. Does **not**
    /// descend into subqueries (their expressions belong to an inner
    /// scope).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Column(_) | Expr::Literal(_) | Expr::Wildcard => {}
            Expr::Unary { expr, .. } => expr.walk(f),
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                if let Some(op) = operand {
                    op.walk(f);
                }
                for (w, t) in branches {
                    w.walk(f);
                    t.walk(f);
                }
                if let Some(e) = else_branch {
                    e.walk(f);
                }
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.walk(f),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::Exists { .. } => {}
            Expr::Subquery(_) => {}
        }
    }

    /// Mutable pre-order walk, same traversal contract as [`Expr::walk`].
    pub fn walk_mut(&mut self, f: &mut impl FnMut(&mut Expr)) {
        f(self);
        match self {
            Expr::Column(_) | Expr::Literal(_) | Expr::Wildcard => {}
            Expr::Unary { expr, .. } => expr.walk_mut(f),
            Expr::Binary { left, right, .. } => {
                left.walk_mut(f);
                right.walk_mut(f);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.walk_mut(f);
                }
            }
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                if let Some(op) = operand {
                    op.walk_mut(f);
                }
                for (w, t) in branches {
                    w.walk_mut(f);
                    t.walk_mut(f);
                }
                if let Some(e) = else_branch {
                    e.walk_mut(f);
                }
            }
            Expr::InList { expr, list, .. } => {
                expr.walk_mut(f);
                for e in list {
                    e.walk_mut(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.walk_mut(f),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk_mut(f);
                low.walk_mut(f);
                high.walk_mut(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.walk_mut(f);
                pattern.walk_mut(f);
            }
            Expr::IsNull { expr, .. } => expr.walk_mut(f),
            Expr::Exists { .. } => {}
            Expr::Subquery(_) => {}
        }
    }

    /// Collects every column referenced in this expression (own scope).
    pub fn columns(&self) -> Vec<&ColumnRef> {
        let mut refs = Vec::new();
        self.collect_columns(&mut refs);
        refs
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a ColumnRef>) {
        match self {
            Expr::Column(c) => out.push(c),
            Expr::Literal(_) | Expr::Wildcard => {}
            Expr::Unary { expr, .. } => expr.collect_columns(out),
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                if let Some(op) = operand {
                    op.collect_columns(out);
                }
                for (w, t) in branches {
                    w.collect_columns(out);
                    t.collect_columns(out);
                }
                if let Some(e) = else_branch {
                    e.collect_columns(out);
                }
            }
            Expr::InList { expr, list, .. } => {
                expr.collect_columns(out);
                for e in list {
                    e.collect_columns(out);
                }
            }
            Expr::InSubquery { expr, .. } => expr.collect_columns(out),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.collect_columns(out);
                pattern.collect_columns(out);
            }
            Expr::IsNull { expr, .. } => expr.collect_columns(out),
            Expr::Exists { .. } | Expr::Subquery(_) => {}
        }
    }

    /// Splits a conjunction tree into its conjuncts: `a AND b AND c` →
    /// `[a, b, c]`. A non-AND expression yields itself.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn go<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            if let Expr::Binary {
                left,
                op: BinOp::And,
                right,
            } = e
            {
                go(left, out);
                go(right, out);
            } else {
                out.push(e);
            }
        }
        go(self, &mut out);
        out
    }

    /// Rebuilds a conjunction from parts; `None` when `parts` is empty.
    pub fn conjoin(parts: Vec<Expr>) -> Option<Expr> {
        let mut iter = parts.into_iter();
        let first = iter.next()?;
        Some(iter.fold(first, |acc, e| acc.and(e)))
    }
}

/// One item of a SELECT list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    /// An expression, optionally aliased.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS alias`, if present.
        alias: Option<String>,
    },
}

impl SelectItem {
    /// Unaliased expression item.
    pub fn expr(expr: Expr) -> Self {
        SelectItem::Expr { expr, alias: None }
    }

    /// Aliased expression item.
    pub fn aliased(expr: Expr, alias: impl Into<String>) -> Self {
        SelectItem::Expr {
            expr,
            alias: Some(alias.into()),
        }
    }
}

/// A table or derived table in FROM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TableFactor {
    /// A named table, optionally aliased.
    Table {
        /// Table name.
        name: String,
        /// `AS alias`, if present.
        alias: Option<String>,
    },
    /// A parenthesised subquery with a mandatory alias.
    Derived {
        /// The subquery.
        subquery: Box<Query>,
        /// Alias naming the derived relation.
        alias: String,
    },
}

impl TableFactor {
    /// A named table without alias.
    pub fn table(name: impl Into<String>) -> Self {
        TableFactor::Table {
            name: name.into(),
            alias: None,
        }
    }

    /// A named table with alias.
    pub fn aliased(name: impl Into<String>, alias: impl Into<String>) -> Self {
        TableFactor::Table {
            name: name.into(),
            alias: Some(alias.into()),
        }
    }

    /// The name this factor binds in the enclosing scope (alias if set,
    /// otherwise the table name; derived tables always use their alias).
    pub fn binding_name(&self) -> &str {
        match self {
            TableFactor::Table { name, alias } => alias.as_deref().unwrap_or(name),
            TableFactor::Derived { alias, .. } => alias,
        }
    }
}

/// Join flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Cross,
}

impl JoinKind {
    /// SQL spelling of the join keyword sequence.
    pub fn as_str(&self) -> &'static str {
        match self {
            JoinKind::Inner => "JOIN",
            JoinKind::Left => "LEFT JOIN",
            JoinKind::Right => "RIGHT JOIN",
            JoinKind::Cross => "CROSS JOIN",
        }
    }
}

/// One join step in a FROM clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Join {
    /// Join flavour.
    pub kind: JoinKind,
    /// The joined factor.
    pub factor: TableFactor,
    /// `ON` condition; `None` for CROSS JOIN.
    pub constraint: Option<Expr>,
}

/// The FROM clause: a base factor plus a chain of joins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FromClause {
    /// Leftmost relation.
    pub base: TableFactor,
    /// Joins applied left-to-right.
    pub joins: Vec<Join>,
}

impl FromClause {
    /// Single-table FROM.
    pub fn table(name: impl Into<String>) -> Self {
        FromClause {
            base: TableFactor::table(name),
            joins: Vec::new(),
        }
    }

    /// All factors, base first.
    pub fn factors(&self) -> impl Iterator<Item = &TableFactor> {
        std::iter::once(&self.base).chain(self.joins.iter().map(|j| &j.factor))
    }

    /// Names of every table mentioned (ignores derived tables).
    pub fn table_names(&self) -> Vec<&str> {
        self.factors()
            .filter_map(|f| match f {
                TableFactor::Table { name, .. } => Some(name.as_str()),
                TableFactor::Derived { .. } => None,
            })
            .collect()
    }
}

/// An ORDER BY element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderItem {
    /// Sort key.
    pub expr: Expr,
    /// Descending if true; ascending otherwise.
    pub desc: bool,
}

impl OrderItem {
    /// Ascending sort on `expr`.
    pub fn asc(expr: Expr) -> Self {
        OrderItem { expr, desc: false }
    }

    /// Descending sort on `expr`.
    pub fn desc(expr: Expr) -> Self {
        OrderItem { expr, desc: true }
    }
}

/// LIMIT/OFFSET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LimitClause {
    /// Maximum number of rows.
    pub count: u64,
    /// Rows to skip first.
    pub offset: Option<u64>,
}

impl LimitClause {
    /// `LIMIT count`.
    pub fn new(count: u64) -> Self {
        LimitClause {
            count,
            offset: None,
        }
    }
}

/// Set operators combining SELECT cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum SetOp {
    Union,
    UnionAll,
    Intersect,
    Except,
}

impl SetOp {
    /// SQL spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            SetOp::Union => "UNION",
            SetOp::UnionAll => "UNION ALL",
            SetOp::Intersect => "INTERSECT",
            SetOp::Except => "EXCEPT",
        }
    }
}

/// The core of a SELECT (no set ops, no trailing ORDER BY/LIMIT).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectCore {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM clause. `None` permits `SELECT 1` style constant queries.
    pub from: Option<FromClause>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY keys.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
}

impl SelectCore {
    /// `SELECT <items> FROM <table>` skeleton.
    pub fn new(items: Vec<SelectItem>, from: FromClause) -> Self {
        SelectCore {
            distinct: false,
            items,
            from: Some(from),
            where_clause: None,
            group_by: Vec::new(),
            having: None,
        }
    }
}

/// A complete query: a select core, an optional chain of set operations,
/// and trailing ORDER BY/LIMIT applying to the whole compound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// First (or only) SELECT core.
    pub core: SelectCore,
    /// `(op, core)` continuation chain, applied left-associatively.
    pub compound: Vec<(SetOp, SelectCore)>,
    /// Final ordering.
    pub order_by: Vec<OrderItem>,
    /// Final LIMIT/OFFSET.
    pub limit: Option<LimitClause>,
}

impl Query {
    /// A query from a bare core.
    pub fn from_core(core: SelectCore) -> Self {
        Query {
            core,
            compound: Vec::new(),
            order_by: Vec::new(),
            limit: None,
        }
    }

    /// `SELECT <items> FROM <table>` convenience.
    pub fn select(items: Vec<SelectItem>, from: FromClause) -> Self {
        Query::from_core(SelectCore::new(items, from))
    }

    /// Every core in order (the base plus compound continuations).
    pub fn cores(&self) -> impl Iterator<Item = &SelectCore> {
        std::iter::once(&self.core).chain(self.compound.iter().map(|(_, c)| c))
    }

    /// Mutable access to every core.
    pub fn cores_mut(&mut self) -> impl Iterator<Item = &mut SelectCore> {
        std::iter::once(&mut self.core).chain(self.compound.iter_mut().map(|(_, c)| c))
    }

    /// Whether this is a plain single-core query.
    pub fn is_simple(&self) -> bool {
        self.compound.is_empty()
    }

    /// Names of all tables referenced anywhere in the query, including
    /// subqueries, deduplicated, in first-appearance order.
    pub fn all_table_names(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        fn add(out: &mut Vec<String>, name: &str) {
            if !out.iter().any(|n| n.eq_ignore_ascii_case(name)) {
                out.push(name.to_string());
            }
        }
        fn walk_query(q: &Query, out: &mut Vec<String>) {
            for core in q.cores() {
                if let Some(from) = &core.from {
                    for f in from.factors() {
                        match f {
                            TableFactor::Table { name, .. } => add(out, name),
                            TableFactor::Derived { subquery, .. } => walk_query(subquery, out),
                        }
                    }
                }
                let mut exprs: Vec<&Expr> = Vec::new();
                for item in &core.items {
                    if let SelectItem::Expr { expr, .. } = item {
                        exprs.push(expr);
                    }
                }
                if let Some(w) = &core.where_clause {
                    exprs.push(w);
                }
                exprs.extend(core.group_by.iter());
                if let Some(h) = &core.having {
                    exprs.push(h);
                }
                for e in exprs {
                    e.walk(&mut |node| match node {
                        Expr::InSubquery { subquery, .. }
                        | Expr::Exists { subquery, .. }
                        | Expr::Subquery(subquery) => walk_query(subquery, out),
                        _ => {}
                    });
                }
            }
        }
        walk_query(self, &mut out);
        out
    }
}

/// A path identifying one clause of a query, used for highlight grounding
/// and clause-level edits. Paths address the *outer* query; `Subquery`
/// recursion is represented by nesting.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClausePath {
    /// The i-th item of the SELECT list.
    SelectItem(usize),
    /// The whole SELECT list.
    SelectList,
    /// The FROM clause including joins.
    From,
    /// The i-th join of the FROM clause.
    Join(usize),
    /// The WHERE clause.
    Where,
    /// The i-th conjunct of the WHERE clause.
    WherePredicate(usize),
    /// The GROUP BY clause.
    GroupBy,
    /// The HAVING clause.
    Having,
    /// The ORDER BY clause.
    OrderBy,
    /// The LIMIT clause.
    Limit,
    /// The i-th compound (set-op) arm.
    Compound(usize),
}

impl fmt::Display for ClausePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClausePath::SelectItem(i) => write!(f, "select-item[{i}]"),
            ClausePath::SelectList => f.write_str("select-list"),
            ClausePath::From => f.write_str("from"),
            ClausePath::Join(i) => write!(f, "join[{i}]"),
            ClausePath::Where => f.write_str("where"),
            ClausePath::WherePredicate(i) => write!(f, "where-predicate[{i}]"),
            ClausePath::GroupBy => f.write_str("group-by"),
            ClausePath::Having => f.write_str("having"),
            ClausePath::OrderBy => f.write_str("order-by"),
            ClausePath::Limit => f.write_str("limit"),
            ClausePath::Compound(i) => write!(f, "compound[{i}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query() -> Query {
        let mut core = SelectCore::new(
            vec![
                SelectItem::expr(Expr::col("name")),
                SelectItem::expr(Expr::count_star()),
            ],
            FromClause::table("singer"),
        );
        core.where_clause = Some(Expr::binary(Expr::col("age"), BinOp::Gt, Expr::num(30)));
        core.group_by = vec![Expr::col("name")];
        let mut q = Query::from_core(core);
        q.order_by.push(OrderItem::desc(Expr::count_star()));
        q.limit = Some(LimitClause::new(5));
        q
    }

    #[test]
    fn conjuncts_flatten_and_tree() {
        let e = Expr::col("a")
            .and(Expr::col("b"))
            .and(Expr::col("c").or(Expr::col("d")));
        let parts = e.conjuncts();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], &Expr::col("a"));
        assert!(matches!(parts[2], Expr::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn conjoin_roundtrips() {
        let parts = vec![Expr::col("a"), Expr::col("b"), Expr::col("c")];
        let joined = Expr::conjoin(parts).unwrap();
        assert_eq!(joined.conjuncts().len(), 3);
        assert_eq!(Expr::conjoin(vec![]), None);
    }

    #[test]
    fn contains_aggregate_detects_nested() {
        let e = Expr::binary(
            Expr::call(Func::Sum, vec![Expr::col("x")]),
            BinOp::Gt,
            Expr::num(10),
        );
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
    }

    #[test]
    fn aggregate_detection_skips_subqueries() {
        // An aggregate inside a subquery belongs to the inner scope.
        let sub = Query::select(
            vec![SelectItem::expr(Expr::count_star())],
            FromClause::table("t"),
        );
        let e = Expr::InSubquery {
            expr: Box::new(Expr::col("x")),
            subquery: Box::new(sub),
            negated: false,
        };
        assert!(!e.contains_aggregate());
    }

    #[test]
    fn columns_collects_in_order() {
        let e = Expr::binary(Expr::col("a"), BinOp::Add, Expr::qcol("t", "b"));
        let cols = e.columns();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].column, "a");
        assert_eq!(cols[1].table.as_deref(), Some("t"));
    }

    #[test]
    fn all_table_names_descends_into_subqueries() {
        let sub = Query::select(
            vec![SelectItem::expr(Expr::col("id"))],
            FromClause::table("concert"),
        );
        let mut q = sample_query();
        q.core.where_clause = Some(Expr::InSubquery {
            expr: Box::new(Expr::col("id")),
            subquery: Box::new(sub),
            negated: false,
        });
        let names = q.all_table_names();
        assert_eq!(names, vec!["singer".to_string(), "concert".to_string()]);
    }

    #[test]
    fn binding_name_prefers_alias() {
        assert_eq!(TableFactor::table("t").binding_name(), "t");
        assert_eq!(TableFactor::aliased("t", "x").binding_name(), "x");
    }

    #[test]
    fn binop_flip_is_involutive_for_comparisons() {
        for op in [BinOp::Lt, BinOp::LtEq, BinOp::Gt, BinOp::GtEq, BinOp::Eq] {
            assert_eq!(op.flipped().flipped(), op);
        }
    }

    #[test]
    fn literal_display_escapes_quotes() {
        assert_eq!(Literal::String("it's".into()).to_string(), "'it''s'");
    }

    #[test]
    fn precedence_ordering() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Eq.precedence());
        assert!(BinOp::Eq.precedence() > BinOp::And.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
    }
}
