//! Structure-preserving repair enumeration and static pruning.
//!
//! Given the fault sites ranked by [`crate::locate`], this module
//! enumerates *minimal* candidate edits at each site — nearest-name
//! swaps, FK-path joins, operator and literal substitutions, aggregate
//! swaps — and then prunes the pool **statically**, before any engine
//! execution:
//!
//! * candidates the abstract interpreter proves contradictory or empty
//!   are dropped (they cannot possibly produce the user's expected rows,
//!   except in the degenerate empty-result case the analyzer already
//!   lints);
//! * candidates the equivalence oracle proves equivalent to the original
//!   or to an earlier candidate are deduplicated (executing them would
//!   re-learn what we already know);
//! * candidates the analyzer rejects outright (unknown names, type
//!   errors) never reach the pool's survivors.
//!
//! Every candidate is *structure-preserving*: it is expressed as
//! [`EditOp`]s against the normalized original, and the realized AST
//! diff stays inside the clause family of the fault site that proposed
//! it ([`is_structure_preserving`] checks exactly this; the property
//! test in the workspace root exercises it over random schemas).

use crate::ast::{
    BinOp, ClausePath, Expr, Func, Join, JoinKind, LimitClause, Literal, OrderItem, Query,
    SelectItem, TableFactor,
};
use crate::check::{check_query, nearest_name, ColType, SchemaInfo};
use crate::diff::{diff_queries, same_clause_family, EditOp};
use crate::edit::{apply_edit, apply_edits};
use crate::flow::{analyze_conjunction, provably_empty};
use crate::locate::{literal_year, FaultKind, FaultSite, FeedbackCues};
use crate::normalize::normalize_query;
use std::collections::HashSet;

/// Maximum candidates enumerated per call; keeps the search bounded.
const ENUM_BUDGET: usize = 48;

/// Edit distance allowed for nearest-name repairs.
const NAME_DIST: usize = 3;

/// One candidate repair: the edited query plus the edit script that
/// produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairCandidate {
    /// The repaired query (normalized original with `edits` applied).
    pub query: Query,
    /// The structure-preserving edit script.
    pub edits: Vec<EditOp>,
    /// Index of the fault site (into the slice given to
    /// [`enumerate_repairs`]) that proposed this candidate.
    pub site: usize,
    /// Which generator family produced it.
    pub label: &'static str,
}

/// Outcome of static pruning: survivors plus the statically-rejected
/// pools, kept separate so callers (and tests) can inspect *why* a
/// candidate never reached the engine.
#[derive(Debug, Clone, Default)]
pub struct PruneOutcome {
    /// Candidates that survived every static check, original order.
    pub kept: Vec<RepairCandidate>,
    /// Proven contradictory / empty by the abstract interpreter.
    pub contradictory: Vec<RepairCandidate>,
    /// Rejected by the analyzer (error-severity diagnostics).
    pub invalid: Vec<RepairCandidate>,
    /// Count proven equivalent to the original or an earlier survivor.
    pub deduped: u64,
}

impl PruneOutcome {
    /// Total candidates removed statically (never executed).
    pub fn pruned_static(&self) -> u64 {
        self.contradictory.len() as u64 + self.invalid.len() as u64 + self.deduped
    }
}

struct Enumerator<'a> {
    base: Query,
    schema: &'a SchemaInfo,
    cues: &'a FeedbackCues,
    out: Vec<RepairCandidate>,
}

impl Enumerator<'_> {
    fn full(&self) -> bool {
        self.out.len() >= ENUM_BUDGET
    }

    fn propose(&mut self, site: usize, label: &'static str, edits: Vec<EditOp>) {
        if self.full() || edits.is_empty() {
            return;
        }
        if let Ok(query) = apply_edits(&self.base, &edits) {
            self.out.push(RepairCandidate {
                query,
                edits,
                site,
                label,
            });
        }
    }

    /// Columns visible through the query's FROM tables.
    fn visible_columns(&self) -> Vec<(String, String, ColType)> {
        let mut out = Vec::new();
        for name in self.base.all_table_names() {
            if let Some(t) = self.schema.table(&name) {
                for c in &t.columns {
                    out.push((t.name.clone(), c.name.clone(), c.ctype));
                }
            }
        }
        out
    }
}

/// Enumerates minimal structure-preserving repairs at each fault site.
/// Deterministic: generators run in site order, candidates carry the
/// proposing site's index, and the pool is capped at a fixed budget.
pub fn enumerate_repairs(
    original: &Query,
    schema: &SchemaInfo,
    sites: &[FaultSite],
    cues: &FeedbackCues,
) -> Vec<RepairCandidate> {
    let mut e = Enumerator {
        base: normalize_query(original),
        schema,
        cues,
        out: Vec::new(),
    };
    for (i, site) in sites.iter().enumerate() {
        if e.full() {
            break;
        }
        match site.kind {
            FaultKind::Relation => relation_repairs(&mut e, i, site),
            FaultKind::Attribute => attribute_repairs(&mut e, i, site),
            FaultKind::Function => function_repairs(&mut e, i),
            FaultKind::Literal => literal_repairs(&mut e, i, site),
            FaultKind::Operator => operator_repairs(&mut e, i, site),
        }
    }
    e.out
}

fn relation_repairs(e: &mut Enumerator<'_>, site_idx: usize, site: &FaultSite) {
    let query_tables = e.base.all_table_names();
    let in_query = |name: &str| query_tables.iter().any(|t| t.eq_ignore_ascii_case(name));

    // Nearest-name swap for a misspelled table.
    if !site.subject.is_empty()
        && in_query(&site.subject)
        && e.schema.table(&site.subject).is_none()
    {
        if let Some(fix) = nearest_name(&site.subject, e.schema.table_names(), NAME_DIST) {
            let fix = fix.to_string();
            e.propose(
                site_idx,
                "nearest-table",
                vec![EditOp::ReplaceTable {
                    from: site.subject.clone(),
                    to: fix,
                }],
            );
        }
    }

    // A cue table absent from the query: either swap an existing table
    // for it, or join it in along a foreign-key path.
    for cue_table in &e.cues.tables {
        if in_query(cue_table) || e.schema.table(cue_table).is_none() {
            continue;
        }
        for existing in &query_tables {
            e.propose(
                site_idx,
                "cue-table-swap",
                vec![EditOp::ReplaceTable {
                    from: existing.clone(),
                    to: cue_table.clone(),
                }],
            );
        }
        if let Some(join) = fk_join(e.schema, &query_tables, cue_table) {
            e.propose(site_idx, "fk-join", vec![EditOp::AddJoin { join }]);
        }
    }

    // The site's subject itself (e.g. from a highlight) may be a table
    // the FK graph says should be joined, not swapped.
    if !site.subject.is_empty()
        && !in_query(&site.subject)
        && e.schema.table(&site.subject).is_some()
    {
        if let Some(join) = fk_join(e.schema, &query_tables, &site.subject) {
            e.propose(site_idx, "fk-join", vec![EditOp::AddJoin { join }]);
        }
    }
}

/// An INNER JOIN bringing `target` into a query over `present` tables,
/// along the first foreign-key edge (either direction) connecting them.
fn fk_join(schema: &SchemaInfo, present: &[String], target: &str) -> Option<Join> {
    let target_info = schema.table(target)?;
    for p in present {
        let Some(p_info) = schema.table(p) else {
            continue;
        };
        // target.fk -> p
        for fk in &target_info.foreign_keys {
            if fk.ref_table.eq_ignore_ascii_case(p) {
                return Some(join_on(target, &fk.column, p, &fk.ref_column));
            }
        }
        // p.fk -> target
        for fk in &p_info.foreign_keys {
            if fk.ref_table.eq_ignore_ascii_case(target) {
                return Some(join_on(target, &fk.ref_column, p, &fk.column));
            }
        }
    }
    None
}

fn join_on(new_table: &str, new_col: &str, old_table: &str, old_col: &str) -> Join {
    Join {
        kind: JoinKind::Inner,
        factor: TableFactor::table(new_table),
        constraint: Some(Expr::binary(
            Expr::qcol(new_table, new_col),
            BinOp::Eq,
            Expr::qcol(old_table, old_col),
        )),
    }
}

/// Rewrites every reference to column `from` inside `expr` to `to`,
/// dropping a table qualifier that no longer fits.
fn rename_column(expr: &Expr, from: &str, to: &str, schema: &SchemaInfo) -> Expr {
    let mut out = expr.clone();
    out.walk_mut(&mut |e| {
        if let Expr::Column(cr) = e {
            if cr.column.eq_ignore_ascii_case(from) {
                let keep_qualifier = cr
                    .table
                    .as_deref()
                    .and_then(|t| schema.table(t))
                    .is_some_and(|t| t.column(to).is_some());
                if !keep_qualifier {
                    cr.table = None;
                }
                cr.column = to.to_string();
            }
        }
    });
    out
}

fn expr_mentions(expr: &Expr, column: &str) -> bool {
    expr.columns()
        .iter()
        .any(|c| c.column.eq_ignore_ascii_case(column))
}

fn attribute_repairs(e: &mut Enumerator<'_>, site_idx: usize, site: &FaultSite) {
    let visible = e.visible_columns();
    let subject = site.subject.rsplit('.').next().unwrap_or("").to_string();
    let referenced = !subject.is_empty()
        && e.base.cores().any(|c| {
            c.items.iter().any(|i| match i {
                SelectItem::Expr { expr, .. } => expr_mentions(expr, &subject),
                _ => false,
            }) || c
                .where_clause
                .as_ref()
                .is_some_and(|w| expr_mentions(w, &subject))
                || c.group_by.iter().any(|g| expr_mentions(g, &subject))
                || c.having
                    .as_ref()
                    .is_some_and(|h| expr_mentions(h, &subject))
        })
        || e.base
            .order_by
            .iter()
            .any(|o| expr_mentions(&o.expr, &subject));

    // Replacement pool: cue columns visible in the query's scope, plus
    // the nearest visible name when the subject resolves to nothing.
    let mut replacements: Vec<String> = Vec::new();
    for cue in &e.cues.columns {
        if visible.iter().any(|(_, c, _)| c.eq_ignore_ascii_case(cue))
            && !cue.eq_ignore_ascii_case(&subject)
            && !replacements.iter().any(|r| r.eq_ignore_ascii_case(cue))
        {
            replacements.push(cue.clone());
        }
    }
    if !subject.is_empty()
        && !visible
            .iter()
            .any(|(_, c, _)| c.eq_ignore_ascii_case(&subject))
    {
        let names: Vec<&str> = visible.iter().map(|(_, c, _)| c.as_str()).collect();
        if let Some(fix) = nearest_name(&subject, names.iter().copied(), NAME_DIST) {
            let fix = fix.to_string();
            if !replacements.iter().any(|r| r.eq_ignore_ascii_case(&fix)) {
                replacements.push(fix);
            }
        }
    }

    if referenced {
        for to in &replacements {
            rename_occurrence_repairs(e, site_idx, &subject, to);
            if e.full() {
                return;
            }
        }
    } else {
        // The feedback names a column the query lacks entirely.
        for cue in &e.cues.columns {
            let Some((table, col, _)) =
                visible.iter().find(|(_, c, _)| c.eq_ignore_ascii_case(cue))
            else {
                continue;
            };
            if e.base.cores().next().is_some_and(|c| {
                c.items.iter().any(|i| match i {
                    SelectItem::Expr { expr, .. } => expr_mentions(expr, col),
                    _ => false,
                })
            }) {
                continue;
            }
            if e.cues.removal {
                continue; // removals are interpret's business, not ours
            }
            match site.clause {
                ClausePath::OrderBy => {
                    e.propose(
                        site_idx,
                        "order-by-column",
                        vec![EditOp::SetOrderBy {
                            from: e.base.order_by.clone(),
                            to: vec![OrderItem {
                                expr: Expr::col(col.clone()),
                                desc: e.cues.descending,
                            }],
                        }],
                    );
                }
                _ => {
                    e.propose(
                        site_idx,
                        "add-select",
                        vec![EditOp::AddSelectItem {
                            item: SelectItem::Expr {
                                expr: Expr::qcol(table.clone(), col.clone()),
                                alias: None,
                            },
                        }],
                    );
                }
            }
        }
    }
}

/// One candidate per clause occurrence of `from`: the minimal rename.
fn rename_occurrence_repairs(e: &mut Enumerator<'_>, site_idx: usize, from: &str, to: &str) {
    let core = e.base.core.clone();
    for (i, item) in core.items.iter().enumerate() {
        if let SelectItem::Expr { expr, alias } = item {
            if expr_mentions(expr, from) {
                let renamed = rename_column(expr, from, to, e.schema);
                e.propose(
                    site_idx,
                    "column-swap",
                    vec![EditOp::ReplaceSelectItem {
                        index: i,
                        from: item.clone(),
                        to: SelectItem::Expr {
                            expr: renamed,
                            alias: alias.clone(),
                        },
                    }],
                );
            }
        }
    }
    if let Some(w) = &core.where_clause {
        for (j, conj) in w.conjuncts().into_iter().enumerate() {
            if expr_mentions(conj, from) {
                e.propose(
                    site_idx,
                    "column-swap",
                    vec![EditOp::ReplacePredicate {
                        index: j,
                        from: conj.clone(),
                        to: rename_column(conj, from, to, e.schema),
                    }],
                );
            }
        }
    }
    if core.group_by.iter().any(|g| expr_mentions(g, from)) {
        let to_keys: Vec<Expr> = core
            .group_by
            .iter()
            .map(|g| rename_column(g, from, to, e.schema))
            .collect();
        e.propose(
            site_idx,
            "column-swap",
            vec![EditOp::SetGroupBy {
                from: core.group_by.clone(),
                to: to_keys,
            }],
        );
    }
    if let Some(h) = &core.having {
        if expr_mentions(h, from) {
            e.propose(
                site_idx,
                "column-swap",
                vec![EditOp::SetHaving {
                    from: Some(h.clone()),
                    to: Some(rename_column(h, from, to, e.schema)),
                }],
            );
        }
    }
    if e.base.order_by.iter().any(|o| expr_mentions(&o.expr, from)) {
        let to_items: Vec<OrderItem> = e
            .base
            .order_by
            .iter()
            .map(|o| OrderItem {
                expr: rename_column(&o.expr, from, to, e.schema),
                desc: o.desc,
            })
            .collect();
        e.propose(
            site_idx,
            "column-swap",
            vec![EditOp::SetOrderBy {
                from: e.base.order_by.clone(),
                to: to_items,
            }],
        );
    }
}

fn function_repairs(e: &mut Enumerator<'_>, site_idx: usize) {
    let visible = e.visible_columns();
    let numeric_cue_col = e.cues.columns.iter().find_map(|cue| {
        visible
            .iter()
            .find(|(_, c, ct)| c.eq_ignore_ascii_case(cue) && ct.is_numeric())
            .map(|(_, c, _)| c.clone())
    });

    let targets: Vec<Func> = if e.cues.aggregates.is_empty() {
        vec![Func::Count, Func::Sum, Func::Avg, Func::Min, Func::Max]
    } else {
        e.cues.aggregates.clone()
    };

    let items = e.base.core.items.clone();
    for (i, item) in items.iter().enumerate() {
        let SelectItem::Expr { expr, alias } = item else {
            continue;
        };
        let Expr::Call {
            func,
            distinct,
            args,
        } = expr
        else {
            continue;
        };
        if !func.is_aggregate() {
            continue;
        }
        for target in &targets {
            if target == func {
                continue;
            }
            // COUNT takes anything (including *); the numeric aggregates
            // need a numeric column argument.
            let new_args: Vec<Expr> = if *target == Func::Count {
                args.clone()
            } else {
                match args.first() {
                    Some(Expr::Column(cr)) => {
                        let numeric = visible.iter().any(|(_, c, ct)| {
                            c.eq_ignore_ascii_case(&cr.column) && ct.is_numeric()
                        });
                        if !numeric && !matches!(target, Func::Min | Func::Max) {
                            continue;
                        }
                        args.clone()
                    }
                    Some(Expr::Wildcard) | None => match &numeric_cue_col {
                        Some(c) => vec![Expr::col(c.clone())],
                        None => continue,
                    },
                    _ => args.clone(),
                }
            };
            e.propose(
                site_idx,
                "aggregate-swap",
                vec![EditOp::ReplaceSelectItem {
                    index: i,
                    from: item.clone(),
                    to: SelectItem::Expr {
                        expr: Expr::Call {
                            func: *target,
                            distinct: *distinct,
                            args: new_args,
                        },
                        alias: alias.clone(),
                    },
                }],
            );
        }
    }
}

/// Rewrites every year-shaped literal in `expr` to year `to`. Returns
/// `None` if nothing changed.
fn shift_years(expr: &Expr, to: i64) -> Option<Expr> {
    let mut out = expr.clone();
    let mut changed = false;
    out.walk_mut(&mut |e| {
        if let Expr::Literal(lit) = e {
            if let Some(y) = literal_year(lit) {
                if y != to {
                    match lit {
                        Literal::Number(n) => *n = to,
                        Literal::String(s) => *s = format!("{to}{}", &s[4..]),
                        _ => unreachable!("literal_year only fires on numbers/strings"),
                    }
                    changed = true;
                }
            }
        }
    });
    changed.then_some(out)
}

/// Replaces the first literal in `expr` matching `from_pred` with `to`.
fn swap_literal(
    expr: &Expr,
    from_pred: &mut impl FnMut(&Literal) -> bool,
    to: &Literal,
) -> Option<Expr> {
    let mut out = expr.clone();
    let mut done = false;
    out.walk_mut(&mut |e| {
        if done {
            return;
        }
        if let Expr::Literal(lit) = e {
            if from_pred(lit) {
                *lit = to.clone();
                done = true;
            }
        }
    });
    done.then_some(out)
}

fn literal_repairs(e: &mut Enumerator<'_>, site_idx: usize, site: &FaultSite) {
    let core = e.base.core.clone();
    let conjuncts: Vec<Expr> = core
        .where_clause
        .as_ref()
        .map(|w| w.conjuncts().into_iter().cloned().collect())
        .unwrap_or_default();

    // Year shift (paper Figure 4): one multi-edit candidate per target
    // year, touching every stale conjunct at once.
    for year in &e.cues.years {
        let mut edits = Vec::new();
        for (j, conj) in conjuncts.iter().enumerate() {
            if let Some(to) = shift_years(conj, *year) {
                edits.push(EditOp::ReplacePredicate {
                    index: j,
                    from: conj.clone(),
                    to,
                });
            }
        }
        if let Some(h) = &core.having {
            if let Some(to) = shift_years(h, *year) {
                edits.push(EditOp::SetHaving {
                    from: Some(h.clone()),
                    to: Some(to),
                });
            }
        }
        e.propose(site_idx, "year-shift", edits);
    }

    // Plain number / float / string substitutions, one conjunct at a time.
    for n in &e.cues.numbers {
        for (j, conj) in conjuncts.iter().enumerate() {
            let mut pred = |l: &Literal| matches!(l, Literal::Number(m) if m != n && literal_year(l).is_none());
            if let Some(to) = swap_literal(conj, &mut pred, &Literal::Number(*n)) {
                e.propose(
                    site_idx,
                    "number-sub",
                    vec![EditOp::ReplacePredicate {
                        index: j,
                        from: conj.clone(),
                        to,
                    }],
                );
            }
        }
    }
    for x in &e.cues.floats {
        for (j, conj) in conjuncts.iter().enumerate() {
            let mut pred = |l: &Literal| matches!(l, Literal::Float(y) if y != x);
            if let Some(to) = swap_literal(conj, &mut pred, &Literal::Float(*x)) {
                e.propose(
                    site_idx,
                    "number-sub",
                    vec![EditOp::ReplacePredicate {
                        index: j,
                        from: conj.clone(),
                        to,
                    }],
                );
            }
        }
    }
    for s in &e.cues.strings {
        for (j, conj) in conjuncts.iter().enumerate() {
            let mut pred =
                |l: &Literal| matches!(l, Literal::String(t) if !t.eq_ignore_ascii_case(s));
            if let Some(to) = swap_literal(conj, &mut pred, &Literal::String(s.clone())) {
                e.propose(
                    site_idx,
                    "string-sub",
                    vec![EditOp::ReplacePredicate {
                        index: j,
                        from: conj.clone(),
                        to,
                    }],
                );
            }
        }
    }

    // LIMIT substitutions at the Limit site.
    if site.clause == ClausePath::Limit {
        for n in &e.cues.numbers {
            let Ok(count) = u64::try_from(*n) else {
                continue;
            };
            if count == 0 || e.base.limit.as_ref().is_some_and(|l| l.count == count) {
                continue;
            }
            e.propose(
                site_idx,
                "limit-sub",
                vec![EditOp::SetLimit {
                    from: e.base.limit,
                    to: Some(LimitClause {
                        count,
                        offset: e.base.limit.as_ref().and_then(|l| l.offset),
                    }),
                }],
            );
        }
    }
}

fn operator_repairs(e: &mut Enumerator<'_>, site_idx: usize, site: &FaultSite) {
    const COMPARISONS: [BinOp; 6] = [
        BinOp::Eq,
        BinOp::NotEq,
        BinOp::Lt,
        BinOp::LtEq,
        BinOp::Gt,
        BinOp::GtEq,
    ];

    // Comparison swap at the accused conjunct. Only fires for sites
    // backed by analyzer / flow / highlight evidence — raw feedback text
    // is too weak a signal to justify a 5-way fan-out.
    let evidence_backed = site
        .sources
        .iter()
        .any(|s| matches!(*s, "check" | "flow" | "highlight"));
    if evidence_backed {
        let conjunct_at = |j: usize| -> Option<Expr> {
            e.base
                .core
                .where_clause
                .as_ref()
                .and_then(|w| w.conjuncts().get(j).map(|c| (*c).clone()))
        };
        let targets: Vec<(usize, Expr)> = match site.clause {
            ClausePath::WherePredicate(j) => conjunct_at(j).map(|c| (j, c)).into_iter().collect(),
            ClausePath::Where => e
                .base
                .core
                .where_clause
                .as_ref()
                .map(|w| {
                    w.conjuncts()
                        .into_iter()
                        .cloned()
                        .enumerate()
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default(),
            _ => Vec::new(),
        };
        for (j, conj) in targets {
            let Expr::Binary { left, op, right } = &conj else {
                continue;
            };
            if !op.is_comparison() {
                continue;
            }
            for alt in COMPARISONS {
                if alt == *op {
                    continue;
                }
                e.propose(
                    site_idx,
                    "op-swap",
                    vec![EditOp::ReplacePredicate {
                        index: j,
                        from: conj.clone(),
                        to: Expr::Binary {
                            left: left.clone(),
                            op: alt,
                            right: right.clone(),
                        },
                    }],
                );
            }
        }
    }

    // Sort-direction flip at the ORDER BY site.
    if site.clause == ClausePath::OrderBy
        && (e.cues.ascending || e.cues.descending)
        && !e.base.order_by.is_empty()
    {
        let to: Vec<OrderItem> = e
            .base
            .order_by
            .iter()
            .map(|o| OrderItem {
                expr: o.expr.clone(),
                desc: e.cues.descending,
            })
            .collect();
        if to != e.base.order_by {
            e.propose(
                site_idx,
                "direction-flip",
                vec![EditOp::SetOrderBy {
                    from: e.base.order_by.clone(),
                    to,
                }],
            );
        }
    }
}

/// Whether any core's WHERE conjunction is unsatisfiable under the
/// abstract interpreter's constant/interval domain.
fn where_unsat(q: &Query) -> bool {
    q.cores().any(|c| {
        c.where_clause.as_ref().is_some_and(|w| {
            let conjs = w.conjuncts();
            analyze_conjunction(&conjs).unsatisfiable()
        })
    })
}

/// Statically prunes a candidate pool: drops candidates proven
/// contradictory/empty, drops analyzer-rejected candidates, and
/// deduplicates candidates proven equivalent to the original or to an
/// earlier survivor. No engine execution happens here — that is the
/// point.
///
/// Dedup is a canonical-fingerprint set lookup (O(n) over the pool)
/// instead of the old O(n²) pairwise prover. Canonical-form equality
/// subsumes `structurally_equal` and the prover's syntactic path; the
/// prover's remaining path (both sides provably empty) cannot apply
/// among survivors, because provably-empty candidates were already
/// routed to the contradictory lane — so the fingerprint set drops
/// exactly what pairwise proving dropped. Equivalence to the original
/// keeps the full `canonically_equivalent` check as a fingerprint-miss
/// fallback since the original need not be non-empty.
pub fn prune_candidates(
    original: &Query,
    candidates: Vec<RepairCandidate>,
    schema: &SchemaInfo,
) -> PruneOutcome {
    let base = normalize_query(original);
    let base_fp = crate::canon::canon_fingerprint(&base);
    let mut out = PruneOutcome::default();
    let mut seen: HashSet<u64> = HashSet::new();
    for cand in candidates {
        let fp = crate::canon::canon_fingerprint(&cand.query);
        if fp == base_fp || crate::canon::canonically_equivalent(&cand.query, &base) {
            out.deduped += 1;
            continue;
        }
        if provably_empty(&cand.query) || where_unsat(&cand.query) {
            out.contradictory.push(cand);
            continue;
        }
        if check_query(&cand.query, schema)
            .iter()
            .any(|d| d.is_error())
        {
            out.invalid.push(cand);
            continue;
        }
        if !seen.insert(fp) {
            out.deduped += 1;
            continue;
        }
        out.kept.push(cand);
    }
    out
}

/// Whether a candidate is structure-preserving: the realized AST diff
/// between the (normalized) original and the candidate stays inside the
/// clause families of the candidate's declared edits. `ReplaceTable`
/// edits are replayed onto the original first, because renaming a table
/// legitimately rewrites qualified column references in other clauses.
pub fn is_structure_preserving(original: &Query, cand: &RepairCandidate) -> bool {
    let mut base = normalize_query(original);
    for edit in &cand.edits {
        if matches!(edit, EditOp::ReplaceTable { .. }) {
            match apply_edit(&base, edit) {
                Ok(q) => base = q,
                Err(_) => return false,
            }
        }
    }
    let realized = diff_queries(&base, &cand.query);
    if realized.is_empty() {
        return true;
    }
    let allowed: Vec<ClausePath> = cand.edits.iter().map(EditOp::clause).collect();
    realized.iter().all(|r| {
        !matches!(r, EditOp::ReplaceQuery { .. })
            && allowed.iter().any(|a| same_clause_family(&r.clause(), a))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::TableInfo;
    use crate::locate::{locate_faults, LocateOptions};
    use crate::parser::parse_query;
    use crate::printer::print_query;

    fn schema() -> SchemaInfo {
        SchemaInfo::new(vec![
            TableInfo::new(
                "singer",
                vec![
                    ("singer_id", ColType::Int),
                    ("name", ColType::Text),
                    ("age", ColType::Int),
                    ("country", ColType::Text),
                ],
            ),
            TableInfo::new(
                "concert",
                vec![
                    ("concert_id", ColType::Int),
                    ("singer_id", ColType::Int),
                    ("year", ColType::Int),
                ],
            )
            .with_fk("singer_id", "singer", "singer_id"),
        ])
    }

    fn repairs_for(sql: &str, feedback: &str) -> (Query, Vec<RepairCandidate>) {
        let q = parse_query(sql).unwrap();
        let s = schema();
        let sites = locate_faults(
            &q,
            &s,
            LocateOptions {
                feedback: Some(feedback),
                highlight: None,
            },
        );
        let cues = FeedbackCues::extract(feedback, &s);
        let cands = enumerate_repairs(&q, &s, &sites, &cues);
        (q, cands)
    }

    #[test]
    fn year_shift_produces_the_figure4_fix() {
        let (q, cands) = repairs_for(
            "SELECT COUNT(*) FROM concert WHERE year >= 2023 AND year < 2024",
            "we are in 2024",
        );
        let shifted = cands
            .iter()
            .find(|c| c.label == "year-shift")
            .expect("year-shift candidate");
        let sql = print_query(&shifted.query);
        assert!(sql.contains("2024"), "{sql}");
        assert!(is_structure_preserving(&q, shifted));
    }

    #[test]
    fn misspelled_column_gets_nearest_name_swap() {
        let q = parse_query("SELECT nam FROM singer").unwrap();
        let s = schema();
        let sites = locate_faults(&q, &s, LocateOptions::default());
        let cues = FeedbackCues::default();
        let cands = enumerate_repairs(&q, &s, &sites, &cues);
        assert!(cands
            .iter()
            .any(|c| print_query(&c.query).to_lowercase().contains("name")));
    }

    #[test]
    fn fk_join_brings_in_the_cue_table() {
        let (_q, cands) = repairs_for(
            "SELECT name FROM singer",
            "only include singers that have a concert",
        );
        let joined = cands
            .iter()
            .find(|c| c.label == "fk-join")
            .expect("fk-join");
        let sql = print_query(&joined.query);
        assert!(sql.contains("JOIN concert"), "{sql}");
    }

    #[test]
    fn aggregate_swap_honours_the_cue() {
        let (q, cands) = repairs_for(
            "SELECT SUM(age) FROM singer",
            "I wanted the average age, not the total age",
        );
        let swapped = cands
            .iter()
            .find(|c| print_query(&c.query).contains("AVG(age)"))
            .expect("aggregate swap to AVG");
        assert!(is_structure_preserving(&q, swapped));
    }

    #[test]
    fn pruning_drops_contradictory_candidates() {
        let q = parse_query("SELECT name FROM singer WHERE age > 30").unwrap();
        let s = schema();
        let base = normalize_query(&q);
        // Hand-craft a contradictory candidate: age > 30 AND age < 10.
        let pred = Expr::binary(Expr::col("age"), BinOp::Lt, Expr::num(10));
        let edits = vec![EditOp::AddPredicate { pred }];
        let cand = RepairCandidate {
            query: apply_edits(&base, &edits).unwrap(),
            edits,
            site: 0,
            label: "test",
        };
        let out = prune_candidates(&q, vec![cand], &s);
        assert!(out.kept.is_empty());
        assert_eq!(out.contradictory.len(), 1);
        assert_eq!(out.pruned_static(), 1);
    }

    #[test]
    fn pruning_dedupes_equivalent_candidates_and_noops() {
        let q = parse_query("SELECT name FROM singer WHERE age > 30").unwrap();
        let s = schema();
        let base = normalize_query(&q);
        let noop = RepairCandidate {
            query: base.clone(),
            edits: vec![EditOp::SetDistinct { distinct: false }],
            site: 0,
            label: "noop",
        };
        let twin_edits = vec![EditOp::SetLimit {
            from: None,
            to: Some(LimitClause::new(5)),
        }];
        let twin = |label: &'static str| RepairCandidate {
            query: apply_edits(&base, &twin_edits).unwrap(),
            edits: twin_edits.clone(),
            site: 0,
            label,
        };
        let out = prune_candidates(&q, vec![noop, twin("a"), twin("b")], &s);
        assert_eq!(out.kept.len(), 1);
        assert_eq!(out.deduped, 2);
    }

    #[test]
    fn survivors_are_analyzer_clean_and_nonempty() {
        let (q, cands) = repairs_for(
            "SELECT COUNT(*) FROM concert WHERE year = 2023",
            "we are in 2024",
        );
        let s = schema();
        let out = prune_candidates(&q, cands, &s);
        assert!(!out.kept.is_empty());
        for k in &out.kept {
            assert!(!check_query(&k.query, &s).iter().any(|d| d.is_error()));
            assert!(!provably_empty(&k.query));
        }
    }

    #[test]
    fn enumeration_is_deterministic_and_bounded() {
        let (_q, a) = repairs_for(
            "SELECT SUM(age) FROM singer WHERE age > 30",
            "show the average age of singers from concert year 2024, top 5",
        );
        let (_q2, b) = repairs_for(
            "SELECT SUM(age) FROM singer WHERE age > 30",
            "show the average age of singers from concert year 2024, top 5",
        );
        assert_eq!(a, b);
        assert!(a.len() <= ENUM_BUDGET);
    }

    /// Reference pruner: identical lane structure but O(n²) pairwise
    /// `canonically_equivalent` dedup instead of the fingerprint set.
    fn prune_reference(
        original: &Query,
        candidates: Vec<RepairCandidate>,
        schema: &SchemaInfo,
    ) -> PruneOutcome {
        let base = normalize_query(original);
        let mut out = PruneOutcome::default();
        for cand in candidates {
            if crate::canon::canonically_equivalent(&cand.query, &base) {
                out.deduped += 1;
                continue;
            }
            if provably_empty(&cand.query) || where_unsat(&cand.query) {
                out.contradictory.push(cand);
                continue;
            }
            if check_query(&cand.query, schema)
                .iter()
                .any(|d| d.is_error())
            {
                out.invalid.push(cand);
                continue;
            }
            if out
                .kept
                .iter()
                .any(|k| crate::canon::canonically_equivalent(&k.query, &cand.query))
            {
                out.deduped += 1;
                continue;
            }
            out.kept.push(cand);
        }
        out
    }

    #[test]
    fn fingerprint_dedup_matches_pairwise_on_200_candidates() {
        // A dense pool of syntactic variants: semantically-equal spellings
        // (NOT-pushed, reordered, padded), genuinely distinct predicates,
        // contradictory and analyzer-rejected candidates.
        let original = "SELECT name FROM singer WHERE age > 30";
        let q = parse_query(original).unwrap();
        let s = schema();
        let mut pool: Vec<RepairCandidate> = Vec::new();
        let variants = [
            "SELECT name FROM singer WHERE NOT (age <= 30)",
            "SELECT name FROM singer WHERE age > 30 AND age > 20",
            "SELECT name FROM singer WHERE age > {n}",
            "SELECT name FROM singer WHERE NOT (age <= {n})",
            "SELECT name FROM singer WHERE age > {n} AND age > 1",
            "SELECT name FROM singer WHERE age > {n} AND TRUE",
            "SELECT name FROM singer WHERE age = {n} AND age != {n}",
            "SELECT name FROM singer WHERE bogus_col > {n}",
            "SELECT name FROM singer WHERE country = 'x{n}'",
            "SELECT s.name FROM singer AS s WHERE s.age > {n}",
        ];
        for i in 0..200usize {
            let tpl = variants[i % variants.len()];
            let sql = tpl.replace("{n}", &(30 + (i / variants.len()) as i64).to_string());
            pool.push(RepairCandidate {
                query: normalize_query(&parse_query(&sql).unwrap()),
                edits: Vec::new(),
                site: 0,
                label: "pool",
            });
        }
        assert_eq!(pool.len(), 200);
        let fast = prune_candidates(&q, pool.clone(), &s);
        let slow = prune_reference(&q, pool, &s);
        assert_eq!(fast.kept, slow.kept);
        assert_eq!(fast.contradictory, slow.contradictory);
        assert_eq!(fast.invalid, slow.invalid);
        assert_eq!(fast.deduped, slow.deduped);
        // The pool is genuinely dense: every lane is exercised.
        assert!(fast.deduped > 0, "deduped {}", fast.deduped);
        assert!(!fast.contradictory.is_empty());
        assert!(!fast.invalid.is_empty());
        assert!(!fast.kept.is_empty());
    }
}
