//! Clause-level structural diff between two queries.
//!
//! `diff_queries(predicted, gold)` computes the list of [`EditOp`]s that
//! would transform the predicted query into the gold query. The diff is
//! the substrate for two parts of the reproduction:
//!
//! - the **simulated user** ([`fisql-feedback`]) picks one visible edit
//!   per round and verbalizes it as natural-language feedback, mirroring
//!   how the paper's annotators described one correction at a time;
//! - the paper's error analysis ("SQL queries with multiple errors …
//!   needing multiple feedback rounds") falls out of `|diff| > 1`.
//!
//! Every [`EditOp`] carries its [`OpClass`] — the paper's Add / Remove /
//! Edit feedback taxonomy (Table 1) plus a `Rewrite` class for predictions
//! too far from gold to describe as a single clause operation.

use crate::ast::*;
use crate::normalize::normalize_query;
use crate::printer::print_expr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's feedback-operation taxonomy (§3.3, Table 1), extended with
/// `Rewrite` for whole-query restructurings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Feedback suggesting the addition of a SQL operation.
    Add,
    /// Feedback suggesting the removal of a SQL operation.
    Remove,
    /// Feedback updating arguments of an existing SQL operation.
    Edit,
    /// The query must be restructured wholesale.
    Rewrite,
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OpClass::Add => "Add",
            OpClass::Remove => "Remove",
            OpClass::Edit => "Edit",
            OpClass::Rewrite => "Rewrite",
        })
    }
}

/// One clause-level transformation of a query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EditOp {
    /// Add a projection item.
    AddSelectItem {
        /// The item to add.
        item: SelectItem,
    },
    /// Remove the projection item at `index`.
    RemoveSelectItem {
        /// Index in the predicted SELECT list.
        index: usize,
        /// The removed item (for verbalization).
        item: SelectItem,
    },
    /// Replace the projection item at `index`.
    ReplaceSelectItem {
        /// Index in the predicted SELECT list.
        index: usize,
        /// Existing item.
        from: SelectItem,
        /// Replacement.
        to: SelectItem,
    },
    /// Toggle `SELECT DISTINCT`.
    SetDistinct {
        /// Target value.
        distinct: bool,
    },
    /// Replace a referenced table (base or join) by another, rewriting
    /// qualified column references accordingly.
    ReplaceTable {
        /// Table used in the prediction.
        from: String,
        /// Table required by gold.
        to: String,
    },
    /// Add a join step.
    AddJoin {
        /// The join to append.
        join: Join,
    },
    /// Remove the join at `index`.
    RemoveJoin {
        /// Index into the predicted join chain.
        index: usize,
        /// The removed join (for verbalization).
        join: Join,
    },
    /// Add a WHERE conjunct.
    AddPredicate {
        /// The predicate to conjoin.
        pred: Expr,
    },
    /// Remove the WHERE conjunct at `index`.
    RemovePredicate {
        /// Conjunct index in the predicted WHERE.
        index: usize,
        /// The removed conjunct (for verbalization).
        pred: Expr,
    },
    /// Replace the WHERE conjunct at `index`.
    ReplacePredicate {
        /// Conjunct index in the predicted WHERE.
        index: usize,
        /// Existing conjunct.
        from: Expr,
        /// Replacement.
        to: Expr,
    },
    /// Replace the GROUP BY key list.
    SetGroupBy {
        /// Existing keys.
        from: Vec<Expr>,
        /// Target keys.
        to: Vec<Expr>,
    },
    /// Replace the HAVING clause.
    SetHaving {
        /// Existing clause.
        from: Option<Expr>,
        /// Target clause.
        to: Option<Expr>,
    },
    /// Replace the ORDER BY list.
    SetOrderBy {
        /// Existing ordering.
        from: Vec<OrderItem>,
        /// Target ordering.
        to: Vec<OrderItem>,
    },
    /// Replace the LIMIT clause.
    SetLimit {
        /// Existing limit.
        from: Option<LimitClause>,
        /// Target limit.
        to: Option<LimitClause>,
    },
    /// The prediction is structurally too far from gold; replace it.
    ReplaceQuery {
        /// The gold query.
        to: Box<Query>,
    },
}

impl EditOp {
    /// The paper's feedback class for this operation.
    pub fn class(&self) -> OpClass {
        match self {
            EditOp::AddSelectItem { .. } | EditOp::AddJoin { .. } | EditOp::AddPredicate { .. } => {
                OpClass::Add
            }
            EditOp::RemoveSelectItem { .. }
            | EditOp::RemoveJoin { .. }
            | EditOp::RemovePredicate { .. } => OpClass::Remove,
            EditOp::SetDistinct { .. }
            | EditOp::ReplaceSelectItem { .. }
            | EditOp::ReplaceTable { .. }
            | EditOp::ReplacePredicate { .. } => OpClass::Edit,
            EditOp::SetGroupBy { from, to } => add_remove_edit(from.is_empty(), to.is_empty()),
            EditOp::SetHaving { from, to } => add_remove_edit(from.is_none(), to.is_none()),
            EditOp::SetOrderBy { from, to } => add_remove_edit(from.is_empty(), to.is_empty()),
            EditOp::SetLimit { from, to } => add_remove_edit(from.is_none(), to.is_none()),
            EditOp::ReplaceQuery { .. } => OpClass::Rewrite,
        }
    }

    /// The clause this operation touches, for highlight grounding.
    pub fn clause(&self) -> ClausePath {
        match self {
            EditOp::AddSelectItem { .. } => ClausePath::SelectList,
            EditOp::RemoveSelectItem { index, .. } | EditOp::ReplaceSelectItem { index, .. } => {
                ClausePath::SelectItem(*index)
            }
            EditOp::SetDistinct { .. } => ClausePath::SelectList,
            EditOp::ReplaceTable { .. } | EditOp::AddJoin { .. } => ClausePath::From,
            EditOp::RemoveJoin { index, .. } => ClausePath::Join(*index),
            EditOp::AddPredicate { .. } => ClausePath::Where,
            EditOp::RemovePredicate { index, .. } | EditOp::ReplacePredicate { index, .. } => {
                ClausePath::WherePredicate(*index)
            }
            EditOp::SetGroupBy { .. } => ClausePath::GroupBy,
            EditOp::SetHaving { .. } => ClausePath::Having,
            EditOp::SetOrderBy { .. } => ClausePath::OrderBy,
            EditOp::SetLimit { .. } => ClausePath::Limit,
            EditOp::ReplaceQuery { .. } => ClausePath::SelectList,
        }
    }

    /// Short human-readable description (used in logs and error analysis).
    pub fn describe(&self) -> String {
        match self {
            EditOp::AddSelectItem { item } => format!("add {} to SELECT", item_text(item)),
            EditOp::RemoveSelectItem { item, .. } => {
                format!("remove {} from SELECT", item_text(item))
            }
            EditOp::ReplaceSelectItem { from, to, .. } => {
                format!(
                    "replace {} with {} in SELECT",
                    item_text(from),
                    item_text(to)
                )
            }
            EditOp::SetDistinct { distinct } => {
                if *distinct {
                    "add DISTINCT".to_string()
                } else {
                    "drop DISTINCT".to_string()
                }
            }
            EditOp::ReplaceTable { from, to } => format!("use table {to} instead of {from}"),
            EditOp::AddJoin { join } => {
                format!("add join on {}", join.factor.binding_name())
            }
            EditOp::RemoveJoin { join, .. } => {
                format!("remove join on {}", join.factor.binding_name())
            }
            EditOp::AddPredicate { pred } => format!("add condition {}", print_expr(pred)),
            EditOp::RemovePredicate { pred, .. } => {
                format!("remove condition {}", print_expr(pred))
            }
            EditOp::ReplacePredicate { from, to, .. } => {
                format!("change {} to {}", print_expr(from), print_expr(to))
            }
            EditOp::SetGroupBy { to, .. } => {
                if to.is_empty() {
                    "remove GROUP BY".to_string()
                } else {
                    format!(
                        "group by {}",
                        to.iter().map(print_expr).collect::<Vec<_>>().join(", ")
                    )
                }
            }
            EditOp::SetHaving { to, .. } => match to {
                Some(h) => format!("having {}", print_expr(h)),
                None => "remove HAVING".to_string(),
            },
            EditOp::SetOrderBy { to, .. } => {
                if to.is_empty() {
                    "remove ORDER BY".to_string()
                } else {
                    format!(
                        "order by {}",
                        to.iter()
                            .map(|o| format!(
                                "{}{}",
                                print_expr(&o.expr),
                                if o.desc { " DESC" } else { "" }
                            ))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                }
            }
            EditOp::SetLimit { to, .. } => match to {
                Some(l) => format!("limit to {} rows", l.count),
                None => "remove LIMIT".to_string(),
            },
            EditOp::ReplaceQuery { .. } => "rewrite the query".to_string(),
        }
    }
}

/// The distinct [`OpClass`]es realized by an edit list, in first-seen
/// order. Empty iff the list is empty (the candidate is a no-op) — the
/// conformance gate treats that as its own disagreement cause.
pub fn realized_classes(edits: &[EditOp]) -> Vec<OpClass> {
    let mut classes = Vec::new();
    for e in edits {
        let c = e.class();
        if !classes.contains(&c) {
            classes.push(c);
        }
    }
    classes
}

/// Whether two clause paths refer to the same top-level clause family:
/// `WherePredicate(i)` counts as WHERE, `SelectItem(i)` as the SELECT
/// list, `Join(i)` as FROM. Used to ground a user highlight (resolved to
/// a clause of the *previous* query) against the clauses a candidate's
/// realized edits touched.
pub fn same_clause_family(a: &ClausePath, b: &ClausePath) -> bool {
    fn family(p: &ClausePath) -> u8 {
        match p {
            ClausePath::SelectItem(_) | ClausePath::SelectList => 0,
            ClausePath::From | ClausePath::Join(_) => 1,
            ClausePath::Where | ClausePath::WherePredicate(_) => 2,
            ClausePath::GroupBy => 3,
            ClausePath::Having => 4,
            ClausePath::OrderBy => 5,
            ClausePath::Limit => 6,
            ClausePath::Compound(_) => 7,
        }
    }
    family(a) == family(b)
}

fn add_remove_edit(from_absent: bool, to_absent: bool) -> OpClass {
    match (from_absent, to_absent) {
        (true, false) => OpClass::Add,
        (false, true) => OpClass::Remove,
        _ => OpClass::Edit,
    }
}

fn item_text(item: &SelectItem) -> String {
    match item {
        SelectItem::Wildcard => "*".to_string(),
        SelectItem::QualifiedWildcard(t) => format!("{t}.*"),
        SelectItem::Expr { expr, .. } => print_expr(expr),
    }
}

/// Computes the clause-level edits transforming `predicted` into `gold`.
///
/// Returns an empty vector iff the two queries are structurally equal
/// (modulo normalization). Returns a single [`EditOp::ReplaceQuery`] when
/// the queries differ in compound (set-op) structure — clause-level diffs
/// across different shapes are not meaningful.
pub fn diff_queries(predicted: &Query, gold: &Query) -> Vec<EditOp> {
    let p = normalize_query(predicted);
    let g = normalize_query(gold);
    if p == g {
        return Vec::new();
    }
    // Different compound shape → whole-query rewrite.
    if p.compound.len() != g.compound.len()
        || p.compound
            .iter()
            .zip(&g.compound)
            .any(|((op_a, _), (op_b, _))| op_a != op_b)
    {
        return vec![EditOp::ReplaceQuery {
            to: Box::new(gold.clone()),
        }];
    }
    // A FROM clause binding the same table twice without aliases (a
    // degenerate self-join, typically a hallucinated prediction) cannot be
    // described by name-based table edits — fall back to a rewrite.
    let dup = |core: &SelectCore| {
        let mut names: Vec<String> = core
            .from
            .iter()
            .flat_map(|f| f.table_names())
            .map(|n| n.to_lowercase())
            .collect();
        let before = names.len();
        names.sort();
        names.dedup();
        names.len() != before
    };
    if (dup(&p.core) || dup(&g.core)) && from_tables(&p.core) != from_tables(&g.core) {
        return vec![EditOp::ReplaceQuery {
            to: Box::new(gold.clone()),
        }];
    }
    let mut edits = Vec::new();
    // Clause-level diffs are computed on the first core only; compound
    // queries with differing continuation cores fall back to a rewrite.
    diff_cores(&p.core, &g.core, &mut edits);
    for ((_, pc), (_, gc)) in p.compound.iter().zip(&g.compound) {
        if pc != gc {
            return vec![EditOp::ReplaceQuery {
                to: Box::new(gold.clone()),
            }];
        }
    }
    // ORDER BY / LIMIT.
    if p.order_by != g.order_by {
        edits.push(EditOp::SetOrderBy {
            from: p.order_by.clone(),
            to: g.order_by.clone(),
        });
    }
    if p.limit != g.limit {
        edits.push(EditOp::SetLimit {
            from: p.limit,
            to: g.limit,
        });
    }
    if edits.is_empty() {
        // Normalized forms differ but no clause-level delta was detected —
        // conservative fallback.
        edits.push(EditOp::ReplaceQuery {
            to: Box::new(gold.clone()),
        });
    }
    edits
}

/// Sorted lower-cased FROM table multiset of a core.
fn from_tables(core: &SelectCore) -> Vec<String> {
    let mut names: Vec<String> = core
        .from
        .iter()
        .flat_map(|f| f.table_names())
        .map(|n| n.to_lowercase())
        .collect();
    names.sort();
    names
}

fn diff_cores(p: &SelectCore, g: &SelectCore, edits: &mut Vec<EditOp>) {
    if p.distinct != g.distinct {
        edits.push(EditOp::SetDistinct {
            distinct: g.distinct,
        });
    }
    diff_select_items(p, g, edits);
    diff_from(p, g, edits);
    diff_where(p, g, edits);
    if exprs_differ(&p.group_by, &g.group_by) {
        edits.push(EditOp::SetGroupBy {
            from: p.group_by.clone(),
            to: g.group_by.clone(),
        });
    }
    if p.having != g.having {
        edits.push(EditOp::SetHaving {
            from: p.having.clone(),
            to: g.having.clone(),
        });
    }
}

fn exprs_differ(a: &[Expr], b: &[Expr]) -> bool {
    a != b
}

fn diff_select_items(p: &SelectCore, g: &SelectCore, edits: &mut Vec<EditOp>) {
    // Compare by expression text, ignoring aliases (aliases do not affect
    // execution results). Matching is positional-first: output column
    // *order* is part of the execution result, so a cross-position text
    // match must not be treated as agreement (it would silently reorder
    // the projection).
    let ptexts: Vec<String> = p.items.iter().map(item_text).collect();
    let gtexts: Vec<String> = g.items.iter().map(item_text).collect();
    let positional = ptexts
        .iter()
        .zip(gtexts.iter())
        .take_while(|(pt, gt)| pt == gt)
        .count();
    let unmatched_p: Vec<usize> = (positional..p.items.len()).collect();
    let unmatched_g: Vec<usize> = (positional..g.items.len()).collect();
    // Pair leftovers positionally as replacements; surplus becomes
    // add/remove.
    let pairs = unmatched_p.len().min(unmatched_g.len());
    for k in 0..pairs {
        let i = unmatched_p[k];
        let j = unmatched_g[k];
        if ptexts[i] == gtexts[j] {
            continue;
        }
        edits.push(EditOp::ReplaceSelectItem {
            index: i,
            from: p.items[i].clone(),
            to: g.items[j].clone(),
        });
    }
    for &i in unmatched_p.iter().skip(pairs) {
        edits.push(EditOp::RemoveSelectItem {
            index: i,
            item: p.items[i].clone(),
        });
    }
    for &j in unmatched_g.iter().skip(pairs) {
        edits.push(EditOp::AddSelectItem {
            item: g.items[j].clone(),
        });
    }
}

fn diff_from(p: &SelectCore, g: &SelectCore, edits: &mut Vec<EditOp>) {
    let (Some(pf), Some(gf)) = (&p.from, &g.from) else {
        if p.from != g.from {
            // FROM appearing/disappearing entirely is a restructuring; the
            // generator never produces it, but handle it defensively.
            if let Some(gf) = &g.from {
                edits.push(EditOp::ReplaceTable {
                    from: String::new(),
                    to: gf.base.binding_name().to_string(),
                });
            }
        }
        return;
    };
    let p_tables: Vec<&str> = pf.table_names();
    let g_tables: Vec<&str> = gf.table_names();
    // Tables in prediction but not gold / vice versa.
    let extra: Vec<&str> = p_tables
        .iter()
        .filter(|t| !g_tables.iter().any(|u| u.eq_ignore_ascii_case(t)))
        .copied()
        .collect();
    let missing: Vec<&str> = g_tables
        .iter()
        .filter(|t| !p_tables.iter().any(|u| u.eq_ignore_ascii_case(t)))
        .copied()
        .collect();
    let pairs = extra.len().min(missing.len());
    for k in 0..pairs {
        edits.push(EditOp::ReplaceTable {
            from: extra[k].to_string(),
            to: missing[k].to_string(),
        });
    }
    for t in extra.iter().skip(pairs) {
        if let Some(idx) = pf.joins.iter().position(|j| match &j.factor {
            TableFactor::Table { name, .. } => name.eq_ignore_ascii_case(t),
            TableFactor::Derived { .. } => false,
        }) {
            edits.push(EditOp::RemoveJoin {
                index: idx,
                join: pf.joins[idx].clone(),
            });
        }
    }
    for t in missing.iter().skip(pairs) {
        if let Some(join) = gf.joins.iter().find(|j| match &j.factor {
            TableFactor::Table { name, .. } => name.eq_ignore_ascii_case(t),
            TableFactor::Derived { .. } => false,
        }) {
            edits.push(EditOp::AddJoin { join: join.clone() });
        }
    }
}

fn diff_where(p: &SelectCore, g: &SelectCore, edits: &mut Vec<EditOp>) {
    let p_conj: Vec<Expr> = p
        .where_clause
        .as_ref()
        .map(|w| w.conjuncts().into_iter().cloned().collect())
        .unwrap_or_default();
    let g_conj: Vec<Expr> = g
        .where_clause
        .as_ref()
        .map(|w| w.conjuncts().into_iter().cloned().collect())
        .unwrap_or_default();
    let mut matched_g = vec![false; g_conj.len()];
    let mut unmatched_p: Vec<usize> = Vec::new();
    for (i, pc) in p_conj.iter().enumerate() {
        if let Some(j) = g_conj
            .iter()
            .enumerate()
            .position(|(j, gc)| !matched_g[j] && gc == pc)
        {
            matched_g[j] = true;
        } else {
            unmatched_p.push(i);
        }
    }
    let unmatched_g: Vec<usize> = (0..g_conj.len()).filter(|&j| !matched_g[j]).collect();
    // Pair by similarity: prefer predicates mentioning the same column.
    let mut remaining_g: Vec<usize> = unmatched_g.clone();
    let mut leftovers_p: Vec<usize> = Vec::new();
    for &i in &unmatched_p {
        let p_cols: Vec<String> = p_conj[i]
            .columns()
            .iter()
            .map(|c| c.column.clone())
            .collect();
        let best = remaining_g.iter().position(|&j| {
            g_conj[j]
                .columns()
                .iter()
                .any(|c| p_cols.iter().any(|pc| pc.eq_ignore_ascii_case(&c.column)))
        });
        match best {
            Some(pos) => {
                let j = remaining_g.remove(pos);
                edits.push(EditOp::ReplacePredicate {
                    index: i,
                    from: p_conj[i].clone(),
                    to: g_conj[j].clone(),
                });
            }
            None => leftovers_p.push(i),
        }
    }
    // Positional pairing for whatever is left.
    let pairs = leftovers_p.len().min(remaining_g.len());
    for k in 0..pairs {
        let i = leftovers_p[k];
        let j = remaining_g[k];
        edits.push(EditOp::ReplacePredicate {
            index: i,
            from: p_conj[i].clone(),
            to: g_conj[j].clone(),
        });
    }
    for &i in leftovers_p.iter().skip(pairs) {
        edits.push(EditOp::RemovePredicate {
            index: i,
            pred: p_conj[i].clone(),
        });
    }
    for &j in remaining_g.iter().skip(pairs) {
        edits.push(EditOp::AddPredicate {
            pred: g_conj[j].clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn diff(p: &str, g: &str) -> Vec<EditOp> {
        diff_queries(&parse_query(p).unwrap(), &parse_query(g).unwrap())
    }

    #[test]
    fn equal_queries_have_empty_diff() {
        assert!(diff("SELECT a FROM t", "SELECT a FROM t").is_empty());
        assert!(diff(
            "SELECT a FROM t WHERE x = 1 AND y = 2",
            "SELECT a FROM t WHERE y = 2 AND x = 1"
        )
        .is_empty());
    }

    #[test]
    fn detects_literal_edit() {
        let d = diff(
            "SELECT COUNT(*) FROM s WHERE y >= '2023-01-01'",
            "SELECT COUNT(*) FROM s WHERE y >= '2024-01-01'",
        );
        assert_eq!(d.len(), 1);
        assert!(matches!(d[0], EditOp::ReplacePredicate { .. }));
        assert_eq!(d[0].class(), OpClass::Edit);
    }

    #[test]
    fn detects_wrong_column() {
        let d = diff("SELECT name FROM singer", "SELECT song_name FROM singer");
        assert_eq!(d.len(), 1);
        assert!(matches!(d[0], EditOp::ReplaceSelectItem { .. }));
        assert_eq!(d[0].class(), OpClass::Edit);
    }

    #[test]
    fn detects_missing_order_by_as_add() {
        let d = diff("SELECT name FROM t", "SELECT name FROM t ORDER BY name ASC");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].class(), OpClass::Add);
        assert!(matches!(d[0], EditOp::SetOrderBy { .. }));
    }

    #[test]
    fn detects_extra_select_item_as_remove() {
        let d = diff("SELECT name, descr FROM t", "SELECT name FROM t");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].class(), OpClass::Remove);
    }

    #[test]
    fn detects_missing_predicate_as_add() {
        let d = diff("SELECT a FROM t", "SELECT a FROM t WHERE x = 1");
        assert_eq!(d.len(), 1);
        assert!(matches!(d[0], EditOp::AddPredicate { .. }));
        assert_eq!(d[0].class(), OpClass::Add);
    }

    #[test]
    fn detects_table_replacement() {
        let d = diff("SELECT a FROM t1", "SELECT a FROM t2");
        assert_eq!(d.len(), 1);
        assert!(matches!(&d[0], EditOp::ReplaceTable { from, to } if from == "t1" && to == "t2"));
    }

    #[test]
    fn detects_missing_join() {
        let d = diff(
            "SELECT a.x FROM a",
            "SELECT a.x FROM a JOIN b ON a.id = b.aid",
        );
        assert!(d.iter().any(|e| matches!(e, EditOp::AddJoin { .. })));
    }

    #[test]
    fn detects_extra_join() {
        let d = diff(
            "SELECT a.x FROM a JOIN b ON a.id = b.aid",
            "SELECT a.x FROM a",
        );
        assert!(d.iter().any(|e| matches!(e, EditOp::RemoveJoin { .. })));
    }

    #[test]
    fn predicate_pairing_prefers_same_column() {
        let d = diff(
            "SELECT a FROM t WHERE age > 20 AND city = 'NY'",
            "SELECT a FROM t WHERE age > 30 AND city = 'NY'",
        );
        assert_eq!(d.len(), 1);
        match &d[0] {
            EditOp::ReplacePredicate { from, to, .. } => {
                assert!(print_expr(from).contains("20"));
                assert!(print_expr(to).contains("30"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multiple_errors_yield_multiple_edits() {
        let d = diff(
            "SELECT name FROM t WHERE y = 2023",
            "SELECT name FROM t WHERE y = 2024 ORDER BY name ASC",
        );
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn set_op_shape_change_is_rewrite() {
        let d = diff("SELECT a FROM t", "SELECT a FROM t UNION SELECT b FROM s");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].class(), OpClass::Rewrite);
    }

    #[test]
    fn group_by_added() {
        let d = diff(
            "SELECT city, COUNT(*) FROM t GROUP BY city",
            "SELECT city, COUNT(*) FROM t GROUP BY city HAVING COUNT(*) > 2",
        );
        assert_eq!(d.len(), 1);
        assert!(matches!(d[0], EditOp::SetHaving { .. }));
        assert_eq!(d[0].class(), OpClass::Add);
    }

    #[test]
    fn limit_changed_is_edit() {
        let d = diff(
            "SELECT a FROM t ORDER BY a ASC LIMIT 5",
            "SELECT a FROM t ORDER BY a ASC LIMIT 1",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].class(), OpClass::Edit);
    }

    #[test]
    fn distinct_toggle() {
        let d = diff("SELECT a FROM t", "SELECT DISTINCT a FROM t");
        assert_eq!(d.len(), 1);
        assert!(matches!(d[0], EditOp::SetDistinct { distinct: true }));
    }

    #[test]
    fn describe_is_informative() {
        let d = diff(
            "SELECT COUNT(*) FROM s WHERE y = 2023",
            "SELECT COUNT(*) FROM s WHERE y = 2024",
        );
        let text = d[0].describe();
        assert!(text.contains("2023") && text.contains("2024"), "{text}");
    }
}
