//! Abstract interpretation over [`Query`] ASTs.
//!
//! A small dataflow pass computing per-core facts that downstream layers
//! consume without touching the engine:
//!
//! - a **constant domain** mirroring the engine's literal semantics
//!   exactly ([`literal_cmp`], [`const_eval_binary`]) — the basis of the
//!   constant folding [`crate::normalize`] applies;
//! - an **interval domain** over predicate conjuncts
//!   ([`analyze_conjunction`]) proving contradictions, tautologies, and
//!   redundancies — the basis of the `contradictory-predicate` family of
//!   lints in [`crate::check`];
//! - **cardinality bounds** ([`query_bounds`], [`provably_empty`])
//!   through WHERE/HAVING/set-ops/LIMIT;
//! - **column provenance and nullability** ([`output_facts`]) traced
//!   through derived tables and set operations;
//! - a conservative **equivalence oracle** ([`provably_equivalent`]) the
//!   evaluation runner uses to skip engine executions.
//!
//! # Soundness contract
//!
//! Every rule here under-approximates the engine: a fact is only reported
//! when it holds for *all* databases. Comparisons mirror the engine's
//! total value order (NULLs excluded — any comparison with NULL is never
//! satisfied), arithmetic mirrors its wrapping/NULL-propagating rules,
//! and anything not provable is `Unknown`. The oracle-soundness property
//! test in the workspace root (`tests/property.rs`) executes
//! provably-equivalent pairs against generated databases and asserts
//! their results match.

use crate::ast::*;
use crate::normalize::normalize_query;
use crate::printer::print_expr;
use std::cmp::Ordering;

// ---------------------------------------------------------------------------
// Constant domain: the engine's literal semantics, reimplemented
// ---------------------------------------------------------------------------

/// Class rank of a literal in the engine's total value order:
/// null < bool < numeric < text.
fn class(l: &Literal) -> u8 {
    match l {
        Literal::Null => 0,
        Literal::Bool(_) => 1,
        Literal::Number(_) | Literal::Float(_) => 2,
        Literal::String(_) => 3,
    }
}

fn as_f64(l: &Literal) -> Option<f64> {
    match l {
        Literal::Number(n) => Some(*n as f64),
        Literal::Float(x) => Some(*x),
        _ => None,
    }
}

/// Three-valued comparison of two literals, exactly as the engine
/// compares values: `None` when either side is NULL, otherwise the total
/// order (class rank, then value; Int/Float compare numerically; NaN
/// sorts after everything and equals itself).
pub fn literal_cmp(a: &Literal, b: &Literal) -> Option<Ordering> {
    if matches!(a, Literal::Null) || matches!(b, Literal::Null) {
        return None;
    }
    Some(match (a, b) {
        (Literal::Number(x), Literal::Number(y)) => x.cmp(y),
        (Literal::String(x), Literal::String(y)) => x.cmp(y),
        (Literal::Bool(x), Literal::Bool(y)) => x.cmp(y),
        _ if class(a) == 2 && class(b) == 2 => {
            let x = as_f64(a).expect("numeric");
            let y = as_f64(b).expect("numeric");
            x.partial_cmp(&y).unwrap_or(match (x.is_nan(), y.is_nan()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Greater,
                _ => Ordering::Less,
            })
        }
        _ => class(a).cmp(&class(b)),
    })
}

fn cmp_matches(op: BinOp, ord: Ordering) -> bool {
    match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::NotEq => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::LtEq => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::GtEq => ord != Ordering::Less,
        _ => false,
    }
}

/// Evaluates `a op b` over two literals exactly as the engine would at
/// runtime, or `None` when folding would be unsound or unrepresentable:
///
/// - comparisons with a NULL operand (the engine yields NULL);
/// - division/modulo by zero (NULL at runtime);
/// - float results that are not finite or ≥ 1e15 in magnitude (the
///   printer's integral-float form `{x:.1}` only covers that range, so
///   larger results would not survive a print/parse round-trip);
/// - arithmetic over non-numeric operands (NULL at runtime).
///
/// Integer arithmetic wraps, like the engine's.
pub fn const_eval_binary(op: BinOp, a: &Literal, b: &Literal) -> Option<Literal> {
    use BinOp::*;
    match op {
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            literal_cmp(a, b).map(|ord| Literal::Bool(cmp_matches(op, ord)))
        }
        Add | Sub | Mul | Div | Mod => match (a, b) {
            (Literal::Number(x), Literal::Number(y)) => match op {
                Add => Some(Literal::Number(x.wrapping_add(*y))),
                Sub => Some(Literal::Number(x.wrapping_sub(*y))),
                Mul => Some(Literal::Number(x.wrapping_mul(*y))),
                Div if *y != 0 => Some(Literal::Number(x.wrapping_div(*y))),
                Mod if *y != 0 => Some(Literal::Number(x.wrapping_rem(*y))),
                _ => None,
            },
            _ => {
                let x = as_f64(a)?;
                let y = as_f64(b)?;
                let r = match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div | Mod if y == 0.0 => return None,
                    Div => x / y,
                    Mod => x % y,
                    _ => unreachable!("arith ops only"),
                };
                (r.is_finite() && r.abs() < 1e15).then_some(Literal::Float(r))
            }
        },
        And | Or => None,
    }
}

/// Whether `e` always evaluates to a boolean or NULL (so `e AND TRUE`
/// evaluates to exactly `e`, and the AND/OR identity folds are
/// value-preserving, not merely truthiness-preserving).
pub fn is_boolean_shaped(e: &Expr) -> bool {
    match e {
        Expr::Literal(Literal::Bool(_)) => true,
        Expr::Binary { op, .. } => op.is_comparison() || matches!(op, BinOp::And | BinOp::Or),
        Expr::Unary {
            op: UnaryOp::Not, ..
        } => true,
        Expr::InList { .. }
        | Expr::InSubquery { .. }
        | Expr::Between { .. }
        | Expr::Like { .. }
        | Expr::IsNull { .. }
        | Expr::Exists { .. } => true,
        _ => false,
    }
}

/// One local constant-folding step (children are assumed already folded);
/// `None` when nothing applies. Used bottom-up by
/// [`crate::normalize::normalize_query`]; every rule mirrors the engine:
///
/// - literal ⊕ literal via [`const_eval_binary`];
/// - `NOT TRUE` / `NOT FALSE`;
/// - 3VL-safe AND/OR absorption: `FALSE AND x → FALSE` and
///   `TRUE OR x → TRUE` (the engine short-circuits left-to-right, so `x`
///   is never evaluated), and the identities `TRUE AND x → x`,
///   `FALSE OR x → x`, `x AND TRUE → x`, `x OR FALSE → x` for
///   boolean-shaped `x` (see [`is_boolean_shaped`]).
///
/// NULL-literal operands never fold: `NULL AND x` can be FALSE or NULL
/// depending on `x`, and `x = NULL` folding is left to the predicate
/// domain (it is *never satisfied*, which is a lint, not a rewrite).
pub fn fold_expr(e: &Expr) -> Option<Expr> {
    match e {
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => match &**expr {
            Expr::Literal(Literal::Bool(b)) => Some(Expr::Literal(Literal::Bool(!b))),
            _ => None,
        },
        Expr::Binary { left, op, right } => {
            if let (Expr::Literal(a), Expr::Literal(b)) = (&**left, &**right) {
                if let Some(folded) = const_eval_binary(*op, a, b) {
                    return Some(Expr::Literal(folded));
                }
            }
            let lit = |e: &Expr| match e {
                Expr::Literal(Literal::Bool(b)) => Some(*b),
                _ => None,
            };
            match op {
                BinOp::And => match (lit(left), lit(right)) {
                    (Some(false), _) => Some(Expr::Literal(Literal::Bool(false))),
                    (Some(true), _) if is_boolean_shaped(right) => Some((**right).clone()),
                    (_, Some(true)) if is_boolean_shaped(left) => Some((**left).clone()),
                    _ => None,
                },
                BinOp::Or => match (lit(left), lit(right)) {
                    (Some(true), _) => Some(Expr::Literal(Literal::Bool(true))),
                    (Some(false), _) if is_boolean_shaped(right) => Some((**right).clone()),
                    (_, Some(false)) if is_boolean_shaped(left) => Some((**left).clone()),
                    _ => None,
                },
                _ => None,
            }
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Predicate domain: per-conjunct truth + interval reasoning
// ---------------------------------------------------------------------------

/// What the constant domain proves about one conjunct viewed as a filter
/// (a conjunct "holds" on a row when it evaluates truthy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConjunctTruth {
    /// No row can satisfy it.
    NeverTrue,
    /// Every row satisfies it.
    AlwaysTrue,
    /// Every row whose operands are non-NULL satisfies it.
    TautologyUnlessNull,
    /// Nothing provable.
    Unknown,
}

/// Whether an expression's value depends only on the current row/group
/// (no subqueries), so evaluating it twice yields the same value.
fn deterministic(e: &Expr) -> bool {
    let mut pure = true;
    e.walk(&mut |node| {
        if matches!(
            node,
            Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::Subquery(_)
        ) {
            pure = false;
        }
    });
    pure
}

/// Classifies a single conjunct. Sound w.r.t. engine evaluation:
/// `NeverTrue` means *no* row is kept, `AlwaysTrue` means *every* row is
/// kept, `TautologyUnlessNull` keeps every row with non-NULL operands.
pub fn conjunct_truth(e: &Expr) -> ConjunctTruth {
    match e {
        // The engine's `to_bool`: text is falsy, NULL is never truthy.
        Expr::Literal(l) => match l {
            Literal::Bool(true) => ConjunctTruth::AlwaysTrue,
            Literal::Number(n) if *n != 0 => ConjunctTruth::AlwaysTrue,
            Literal::Float(x) if *x != 0.0 => ConjunctTruth::AlwaysTrue,
            _ => ConjunctTruth::NeverTrue,
        },
        Expr::Binary { left, op, right } if op.is_comparison() => {
            // Any comparison against a NULL literal yields NULL: never true.
            if matches!(**left, Expr::Literal(Literal::Null))
                || matches!(**right, Expr::Literal(Literal::Null))
            {
                return ConjunctTruth::NeverTrue;
            }
            // `x op x` for deterministic x: the two sides evaluate to the
            // same value, so the comparison is Equal (or NULL).
            if deterministic(e) && print_expr(left) == print_expr(right) {
                return match op {
                    BinOp::Eq | BinOp::LtEq | BinOp::GtEq => ConjunctTruth::TautologyUnlessNull,
                    BinOp::NotEq | BinOp::Lt | BinOp::Gt => ConjunctTruth::NeverTrue,
                    _ => ConjunctTruth::Unknown,
                };
            }
            ConjunctTruth::Unknown
        }
        Expr::Between {
            low, high, negated, ..
        } => {
            // Literal bounds with low > high: the range is empty for every
            // non-NULL operand (NULL operands yield NULL either way).
            if let (Expr::Literal(lo), Expr::Literal(hi)) = (&**low, &**high) {
                if literal_cmp(lo, hi) == Some(Ordering::Greater) {
                    return if *negated {
                        ConjunctTruth::TautologyUnlessNull
                    } else {
                        ConjunctTruth::NeverTrue
                    };
                }
            }
            ConjunctTruth::Unknown
        }
        _ => ConjunctTruth::Unknown,
    }
}

/// A per-key constraint extracted from a conjunct: `key op literal` or
/// `key IN (literals)`. Keys are rendered left-hand expressions, so
/// `LENGTH(name) > 5` and aggregate HAVING constraints participate too.
#[derive(Debug, Clone, PartialEq)]
enum Constraint {
    /// `key <op> lit` with a non-NULL literal and a comparison operator.
    Cmp(BinOp, Literal),
    /// `key IN (…)` over a class-homogeneous non-NULL literal list (the
    /// engine's IN uses `sql_eq`, which goes unknown across classes —
    /// homogeneity keeps the membership test exact).
    In(Vec<Literal>),
}

fn key_constraint(e: &Expr) -> Option<(String, Constraint)> {
    match e {
        Expr::Binary { left, op, right } if op.is_comparison() => match &**right {
            Expr::Literal(l) if !matches!(l, Literal::Null) && deterministic(left) => {
                Some((print_expr(left), Constraint::Cmp(*op, l.clone())))
            }
            _ => None,
        },
        Expr::InList {
            expr,
            list,
            negated: false,
        } if deterministic(expr) => {
            let mut lits = Vec::with_capacity(list.len());
            for item in list {
                match item {
                    Expr::Literal(l) if !matches!(l, Literal::Null) => lits.push(l.clone()),
                    _ => return None,
                }
            }
            let first_class = class(lits.first()?);
            if lits.iter().any(|l| class(l) != first_class) {
                return None;
            }
            Some((print_expr(expr), Constraint::In(lits)))
        }
        _ => None,
    }
}

/// Whether the non-NULL value `v` satisfies `c` under engine semantics.
fn satisfies(v: &Literal, c: &Constraint) -> bool {
    match c {
        Constraint::Cmp(op, a) => literal_cmp(v, a).is_some_and(|ord| cmp_matches(*op, ord)),
        // IN membership uses `sql_eq`: unknown across class boundaries
        // (never satisfied), exact within a class.
        Constraint::In(lits) => lits
            .iter()
            .any(|m| class(v) == class(m) && literal_cmp(v, m) == Some(Ordering::Equal)),
    }
}

/// Interval view of a comparison constraint over the literal total order;
/// `None` for `!=` (a punctured line, handled separately).
struct Iv<'a> {
    lo: Option<(&'a Literal, bool)>, // (bound, strict)
    hi: Option<(&'a Literal, bool)>,
}

fn iv(op: BinOp, a: &Literal) -> Option<Iv<'_>> {
    match op {
        BinOp::Eq => Some(Iv {
            lo: Some((a, false)),
            hi: Some((a, false)),
        }),
        BinOp::Lt => Some(Iv {
            lo: None,
            hi: Some((a, true)),
        }),
        BinOp::LtEq => Some(Iv {
            lo: None,
            hi: Some((a, false)),
        }),
        BinOp::Gt => Some(Iv {
            lo: Some((a, true)),
            hi: None,
        }),
        BinOp::GtEq => Some(Iv {
            lo: Some((a, false)),
            hi: None,
        }),
        _ => None,
    }
}

/// Whether the intersection of two intervals is empty.
fn iv_disjoint(a: &Iv<'_>, b: &Iv<'_>) -> bool {
    let lo = match (a.lo, b.lo) {
        (Some((la, sa)), Some((lb, sb))) => match literal_cmp(la, lb).expect("non-null bounds") {
            Ordering::Greater => Some((la, sa)),
            Ordering::Less => Some((lb, sb)),
            Ordering::Equal => Some((la, sa || sb)),
        },
        (x, None) | (None, x) => x,
    };
    let hi = match (a.hi, b.hi) {
        (Some((ha, sa)), Some((hb, sb))) => match literal_cmp(ha, hb).expect("non-null bounds") {
            Ordering::Less => Some((ha, sa)),
            Ordering::Greater => Some((hb, sb)),
            Ordering::Equal => Some((ha, sa || sb)),
        },
        (x, None) | (None, x) => x,
    };
    match (lo, hi) {
        (Some((l, ls)), Some((h, hs))) => match literal_cmp(l, h).expect("non-null bounds") {
            Ordering::Greater => true,
            Ordering::Equal => ls || hs,
            Ordering::Less => false,
        },
        _ => false,
    }
}

/// Whether interval `a` is contained in interval `b`.
fn iv_subset(a: &Iv<'_>, b: &Iv<'_>) -> bool {
    let lo_ok = match (a.lo, b.lo) {
        (_, None) => true,
        (None, Some(_)) => false,
        (Some((la, sa)), Some((lb, sb))) => match literal_cmp(la, lb).expect("non-null bounds") {
            Ordering::Greater => true,
            Ordering::Equal => sa || !sb,
            Ordering::Less => false,
        },
    };
    let hi_ok = match (a.hi, b.hi) {
        (_, None) => true,
        (None, Some(_)) => false,
        (Some((ha, sa)), Some((hb, sb))) => match literal_cmp(ha, hb).expect("non-null bounds") {
            Ordering::Less => true,
            Ordering::Equal => sa || !sb,
            Ordering::Greater => false,
        },
    };
    lo_ok && hi_ok
}

/// `c1 ∧ c2` is unsatisfiable by any non-NULL value.
fn pair_unsat(c1: &Constraint, c2: &Constraint) -> bool {
    match (c1, c2) {
        (Constraint::In(s), other) => !s.iter().any(|m| satisfies(m, other)),
        (other, Constraint::In(s)) => !s.iter().any(|m| satisfies(m, other)),
        (Constraint::Cmp(BinOp::NotEq, a), Constraint::Cmp(BinOp::Eq, b))
        | (Constraint::Cmp(BinOp::Eq, a), Constraint::Cmp(BinOp::NotEq, b)) => {
            literal_cmp(a, b) == Some(Ordering::Equal)
        }
        (Constraint::Cmp(op1, a), Constraint::Cmp(op2, b)) => {
            match (iv(*op1, a), iv(*op2, b)) {
                (Some(i1), Some(i2)) => iv_disjoint(&i1, &i2),
                _ => false, // a != constraint never empties an interval pairwise
            }
        }
    }
}

/// Every non-NULL value satisfying `c1` also satisfies `c2`.
fn implies(c1: &Constraint, c2: &Constraint) -> bool {
    if c1 == c2 {
        return true;
    }
    match (c1, c2) {
        (Constraint::Cmp(BinOp::Eq, a), other) => satisfies(a, other),
        (Constraint::In(s), other) => s.iter().all(|m| satisfies(m, other)),
        (Constraint::Cmp(op1, a), Constraint::Cmp(BinOp::NotEq, b)) => {
            // An interval that excludes b implies `!= b`.
            match iv(*op1, a) {
                Some(i1) => iv_disjoint(
                    &i1,
                    &Iv {
                        lo: Some((b, false)),
                        hi: Some((b, false)),
                    },
                ),
                None => false,
            }
        }
        (Constraint::Cmp(op1, a), Constraint::Cmp(op2, b)) => match (iv(*op1, a), iv(*op2, b)) {
            (Some(i1), Some(i2)) => iv_subset(&i1, &i2),
            _ => false,
        },
        (Constraint::Cmp(..), Constraint::In(_)) => false,
    }
}

/// Findings of the constant/interval domain over one conjunction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PredicateFacts {
    /// Conjunct indices no row can satisfy.
    pub never_true: Vec<usize>,
    /// Conjunct indices satisfied by every row (or every row with
    /// non-NULL operands — the lint message carries the caveat).
    pub tautological: Vec<usize>,
    /// Pairs `(i, j)`, `i < j`: the two conjuncts cannot hold together.
    pub contradictions: Vec<(usize, usize)>,
    /// Pairs `(redundant, implied_by)`: the first conjunct filters
    /// nothing the second does not already filter.
    pub redundant: Vec<(usize, usize)>,
}

impl PredicateFacts {
    /// Whether the whole conjunction is provably unsatisfiable.
    pub fn unsatisfiable(&self) -> bool {
        !self.never_true.is_empty() || !self.contradictions.is_empty()
    }

    /// Whether nothing was provable at all.
    pub fn is_empty(&self) -> bool {
        self.never_true.is_empty()
            && self.tautological.is_empty()
            && self.contradictions.is_empty()
            && self.redundant.is_empty()
    }
}

/// Runs the predicate domain over the conjuncts of one filter.
///
/// Per-conjunct truth (constants, NULL comparisons, `x op x`, empty
/// BETWEEN ranges) feeds `never_true`/`tautological`; pairwise interval
/// reasoning over `key op literal` / `key IN (…)` constraints on the same
/// key feeds `contradictions` and `redundant`.
pub fn analyze_conjunction(conjuncts: &[&Expr]) -> PredicateFacts {
    let mut facts = PredicateFacts::default();
    for (i, c) in conjuncts.iter().enumerate() {
        match conjunct_truth(c) {
            ConjunctTruth::NeverTrue => facts.never_true.push(i),
            ConjunctTruth::AlwaysTrue | ConjunctTruth::TautologyUnlessNull => {
                facts.tautological.push(i);
            }
            ConjunctTruth::Unknown => {}
        }
    }
    let keyed: Vec<(usize, String, Constraint)> = conjuncts
        .iter()
        .enumerate()
        .filter_map(|(i, c)| key_constraint(c).map(|(k, con)| (i, k, con)))
        .collect();
    for (a, (i, ka, ca)) in keyed.iter().enumerate() {
        for (j, kb, cb) in keyed.iter().skip(a + 1) {
            if ka != kb {
                continue;
            }
            if pair_unsat(ca, cb) {
                facts.contradictions.push((*i, *j));
            } else if implies(ca, cb) {
                facts.redundant.push((*j, *i));
            } else if implies(cb, ca) {
                facts.redundant.push((*i, *j));
            }
        }
    }
    facts
}

// ---------------------------------------------------------------------------
// Cardinality bounds
// ---------------------------------------------------------------------------

/// Lower/upper bounds on the number of rows a query can return;
/// `max == None` means unbounded. `max == Some(0)` is "provably empty".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CardBounds {
    /// Guaranteed minimum row count.
    pub min: u64,
    /// Guaranteed maximum row count, when one is provable.
    pub max: Option<u64>,
}

impl CardBounds {
    fn unbounded() -> CardBounds {
        CardBounds { min: 0, max: None }
    }

    fn exactly(n: u64) -> CardBounds {
        CardBounds {
            min: n,
            max: Some(n),
        }
    }
}

fn filter_unsat(filter: Option<&Expr>) -> bool {
    filter.is_some_and(|f| analyze_conjunction(&f.conjuncts()).unsatisfiable())
}

/// Row-count bounds for one select core (before trailing ORDER BY/LIMIT).
pub fn core_bounds(core: &SelectCore) -> CardBounds {
    let aggregated = !core.group_by.is_empty()
        || core
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
        || core.having.as_ref().is_some_and(Expr::contains_aggregate);
    let where_unsat = filter_unsat(core.where_clause.as_ref());
    let having_unsat = filter_unsat(core.having.as_ref());

    if core.from.is_none() {
        // `SELECT 1`: one constant row; be conservative about filters.
        return if core.where_clause.is_some() || core.having.is_some() {
            CardBounds {
                min: 0,
                max: Some(1),
            }
        } else {
            CardBounds::exactly(1)
        };
    }
    if aggregated && core.group_by.is_empty() {
        // Single-group aggregation yields exactly one row even over an
        // empty input (`SELECT COUNT(*) … WHERE FALSE` is one row of 0);
        // only HAVING can drop it.
        return if having_unsat {
            CardBounds::exactly(0)
        } else if core.having.is_some() {
            CardBounds {
                min: 0,
                max: Some(1),
            }
        } else {
            CardBounds::exactly(1)
        };
    }
    // Row mode ignores HAVING entirely; grouped mode filters groups by it.
    let unsat = where_unsat || (!core.group_by.is_empty() && having_unsat);
    if unsat {
        CardBounds::exactly(0)
    } else {
        CardBounds::unbounded()
    }
}

/// Row-count bounds for a whole query (cores, set operations, LIMIT).
pub fn query_bounds(q: &Query) -> CardBounds {
    let mut b = core_bounds(&q.core);
    for (op, core) in &q.compound {
        let c = core_bounds(core);
        let sum = |x: Option<u64>, y: Option<u64>| Some(x?.saturating_add(y?));
        b = match op {
            SetOp::UnionAll => CardBounds {
                min: b.min.saturating_add(c.min),
                max: sum(b.max, c.max),
            },
            SetOp::Union => CardBounds {
                min: u64::from(b.min > 0 || c.min > 0),
                max: sum(b.max, c.max),
            },
            SetOp::Intersect => CardBounds {
                min: 0,
                max: match (b.max, c.max) {
                    (Some(x), Some(y)) => Some(x.min(y)),
                    (x, None) | (None, x) => x,
                },
            },
            SetOp::Except => CardBounds { min: 0, max: b.max },
        };
    }
    if let Some(limit) = &q.limit {
        b.max = Some(b.max.map_or(limit.count, |m| m.min(limit.count)));
        b.min = b.min.min(limit.count);
        if limit.offset.unwrap_or(0) > 0 {
            b.min = 0;
        }
    }
    b
}

/// Whether the query provably returns zero rows on every database.
pub fn provably_empty(q: &Query) -> bool {
    query_bounds(q).max == Some(0)
}

// ---------------------------------------------------------------------------
// Column provenance + nullability
// ---------------------------------------------------------------------------

/// Where one output column of a query comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum Provenance {
    /// Traces to a base-table column reference (through derived tables
    /// where the projection is by-name traceable).
    Column(ColumnRef),
    /// A computed expression (arithmetic, aggregate, function, …).
    Computed,
    /// A `*`-style item whose expansion needs a schema.
    Wildcard,
}

/// Per-output-column facts: provenance and provable non-nullability.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputFacts {
    /// One entry per SELECT item of the first core.
    pub provenance: Vec<Provenance>,
    /// `true` where the column provably never carries NULL (for every
    /// core of a compound query).
    pub never_null: Vec<bool>,
}

/// Whether an expression provably never evaluates to NULL.
fn never_null(e: &Expr) -> bool {
    match e {
        Expr::Literal(l) => !matches!(l, Literal::Null),
        // COUNT is the one aggregate that is total; IS NULL and EXISTS
        // always produce a boolean.
        Expr::Call {
            func: Func::Count, ..
        } => true,
        Expr::IsNull { .. } | Expr::Exists { .. } => true,
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => never_null(expr),
        _ => false,
    }
}

fn item_provenance(item: &SelectItem, core: &SelectCore) -> Provenance {
    match item {
        SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => Provenance::Wildcard,
        SelectItem::Expr { expr, .. } => match expr {
            Expr::Column(c) => {
                // Trace through a derived table when the qualifier names
                // one and the inner projection exposes the column by name.
                if let (Some(q), Some(from)) = (&c.table, &core.from) {
                    for f in from.factors() {
                        if let TableFactor::Derived { subquery, alias } = f {
                            if alias.eq_ignore_ascii_case(q) {
                                return derived_provenance(subquery, &c.column);
                            }
                        }
                    }
                }
                Provenance::Column(c.clone())
            }
            _ => Provenance::Computed,
        },
    }
}

fn derived_provenance(sub: &Query, name: &str) -> Provenance {
    for item in &sub.core.items {
        if let SelectItem::Expr { expr, alias } = item {
            let exposed = alias.clone().or_else(|| match expr {
                Expr::Column(c) => Some(c.column.clone()),
                _ => None,
            });
            if exposed.is_some_and(|n| n.eq_ignore_ascii_case(name)) {
                return match expr {
                    Expr::Column(c) => Provenance::Column(c.clone()),
                    _ => Provenance::Computed,
                };
            }
        }
    }
    Provenance::Computed
}

/// Computes per-output provenance and nullability. `None` when the cores
/// disagree on arity or contain wildcard items (arity needs a schema).
pub fn output_facts(q: &Query) -> Option<OutputFacts> {
    let arity = output_arity(q)?;
    let provenance: Vec<Provenance> = q
        .core
        .items
        .iter()
        .map(|i| item_provenance(i, &q.core))
        .collect();
    let mut nn = vec![true; arity];
    for core in q.cores() {
        for (slot, item) in core.items.iter().enumerate() {
            let ok = matches!(item, SelectItem::Expr { expr, .. } if never_null(expr));
            nn[slot] &= ok;
        }
    }
    Some(OutputFacts {
        provenance,
        never_null: nn,
    })
}

/// The number of output columns, when derivable without a schema: every
/// core must be wildcard-free and agree on arity.
pub fn output_arity(q: &Query) -> Option<usize> {
    let mut arity = None;
    for core in q.cores() {
        if core
            .items
            .iter()
            .any(|i| !matches!(i, SelectItem::Expr { .. }))
        {
            return None;
        }
        match arity {
            None => arity = Some(core.items.len()),
            Some(a) if a == core.items.len() => {}
            Some(_) => return None,
        }
    }
    arity
}

// ---------------------------------------------------------------------------
// Equivalence oracle
// ---------------------------------------------------------------------------

/// Conservative equivalence: `true` only when the two queries provably
/// produce identical results on **every** database.
///
/// Two paths prove it:
/// 1. the queries normalize (with constant folding) to the same AST —
///    execution-identical by construction;
/// 2. both are [`provably_empty`] with equal, known output arity — two
///    empty result sets of the same width compare equal under the
///    execution-match metric (column labels are ignored).
///
/// The runner additionally restricts path 2 to analyzer-clean queries so
/// a provably-empty-but-erroring candidate can never borrow a clean
/// query's verdict. Soundness is property-tested against the engine in
/// `tests/property.rs`.
pub fn provably_equivalent(a: &Query, b: &Query) -> bool {
    let na = normalize_query(a);
    let nb = normalize_query(b);
    if na == nb {
        return true;
    }
    match (output_arity(&na), output_arity(&nb)) {
        (Some(x), Some(y)) if x == y => provably_empty(&na) && provably_empty(&nb),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn q(sql: &str) -> Query {
        parse_query(sql).unwrap()
    }

    fn where_facts(sql: &str) -> PredicateFacts {
        let query = q(sql);
        let w = query.core.where_clause.as_ref().unwrap();
        analyze_conjunction(&w.conjuncts())
    }

    #[test]
    fn literal_cmp_mirrors_engine_total_order() {
        use Literal::*;
        assert_eq!(literal_cmp(&Number(1), &Number(2)), Some(Ordering::Less));
        assert_eq!(literal_cmp(&Number(2), &Float(2.0)), Some(Ordering::Equal));
        // Class ranking: bool < numeric < text.
        assert_eq!(literal_cmp(&Bool(true), &Number(0)), Some(Ordering::Less));
        assert_eq!(
            literal_cmp(&Number(999), &String("a".into())),
            Some(Ordering::Less)
        );
        assert_eq!(literal_cmp(&Null, &Number(1)), None);
        assert_eq!(literal_cmp(&Number(1), &Null), None);
    }

    #[test]
    fn const_eval_folds_safely() {
        use BinOp::*;
        use Literal::*;
        assert_eq!(
            const_eval_binary(Add, &Number(2), &Number(3)),
            Some(Number(5))
        );
        assert_eq!(
            const_eval_binary(Mul, &Number(i64::MAX), &Number(2)),
            Some(Number(i64::MAX.wrapping_mul(2)))
        );
        assert_eq!(const_eval_binary(Div, &Number(7), &Number(0)), None);
        assert_eq!(const_eval_binary(Div, &Float(1.0), &Float(0.0)), None);
        assert_eq!(
            const_eval_binary(Eq, &Number(1), &Number(1)),
            Some(Bool(true))
        );
        assert_eq!(
            const_eval_binary(Lt, &Number(5), &String("a".into())),
            Some(Bool(true))
        );
        assert_eq!(const_eval_binary(Eq, &Null, &Number(1)), None);
        assert_eq!(
            const_eval_binary(Add, &String("a".into()), &Number(1)),
            None
        );
    }

    #[test]
    fn conjunct_truth_classification() {
        let w = |sql: &str| {
            let query = q(&format!("SELECT a FROM t WHERE {sql}"));
            let e = query.core.where_clause.clone().unwrap();
            conjunct_truth(&e)
        };
        assert_eq!(w("TRUE"), ConjunctTruth::AlwaysTrue);
        assert_eq!(w("FALSE"), ConjunctTruth::NeverTrue);
        assert_eq!(w("'yes'"), ConjunctTruth::NeverTrue); // text is falsy
        assert_eq!(w("a = NULL"), ConjunctTruth::NeverTrue);
        assert_eq!(w("a != a"), ConjunctTruth::NeverTrue);
        assert_eq!(w("a <= a"), ConjunctTruth::TautologyUnlessNull);
        assert_eq!(w("a BETWEEN 5 AND 1"), ConjunctTruth::NeverTrue);
        assert_eq!(
            w("a NOT BETWEEN 5 AND 1"),
            ConjunctTruth::TautologyUnlessNull
        );
        assert_eq!(w("a > 1"), ConjunctTruth::Unknown);
    }

    #[test]
    fn interval_domain_finds_contradictions() {
        let f = where_facts("SELECT a FROM t WHERE a > 5 AND a < 3");
        assert_eq!(f.contradictions, vec![(0, 1)]);
        assert!(f.unsatisfiable());

        let f = where_facts("SELECT a FROM t WHERE a = 1 AND a = 2");
        assert!(f.unsatisfiable());

        let f = where_facts("SELECT a FROM t WHERE a = 1 AND a != 1");
        assert!(f.unsatisfiable());

        let f = where_facts("SELECT a FROM t WHERE a IN (1, 2) AND a > 7");
        assert!(f.unsatisfiable());

        // Satisfiable combinations stay silent.
        let f = where_facts("SELECT a FROM t WHERE a > 3 AND a < 5");
        assert!(!f.unsatisfiable());
        // Different keys never interact.
        let f = where_facts("SELECT a FROM t WHERE a > 5 AND b < 3");
        assert!(f.is_empty());
    }

    #[test]
    fn interval_domain_finds_redundancy() {
        let f = where_facts("SELECT a FROM t WHERE a > 5 AND a > 3");
        // `a > 3` (whichever index it lands on after parsing) is implied.
        assert_eq!(f.redundant.len(), 1);
        let (red, by) = f.redundant[0];
        assert_ne!(red, by);

        let f = where_facts("SELECT a FROM t WHERE a = 5 AND a >= 5");
        assert_eq!(f.redundant.len(), 1);

        let f = where_facts("SELECT a FROM t WHERE a > 5 AND a != 3");
        assert_eq!(f.redundant.len(), 1);

        let f = where_facts("SELECT a FROM t WHERE a = 1 AND a = 1");
        assert_eq!(f.redundant.len(), 1); // duplicate conjunct

        let f = where_facts("SELECT a FROM t WHERE a > 3 AND a < 5");
        assert!(f.redundant.is_empty());
    }

    #[test]
    fn bounds_and_provable_emptiness() {
        assert!(provably_empty(&q("SELECT a FROM t WHERE a > 5 AND a < 3")));
        assert!(provably_empty(&q("SELECT a FROM t WHERE FALSE")));
        assert!(provably_empty(&q("SELECT a FROM t LIMIT 0")));
        assert!(provably_empty(&q(
            "SELECT a FROM t WHERE FALSE INTERSECT SELECT b FROM s"
        )));
        // Single-group aggregation returns one row even over no input.
        assert!(!provably_empty(&q("SELECT COUNT(*) FROM t WHERE FALSE")));
        assert_eq!(
            query_bounds(&q("SELECT COUNT(*) FROM t WHERE FALSE")),
            CardBounds::exactly(1)
        );
        // …unless grouped.
        assert!(provably_empty(&q(
            "SELECT COUNT(*) FROM t WHERE FALSE GROUP BY a"
        )));
        // Row mode ignores HAVING (not parseable without GROUP BY, so
        // constructed directly).
        let mut row_having = q("SELECT a FROM t");
        row_having.core.having = Some(Expr::Literal(Literal::Bool(false)));
        assert!(!provably_empty(&row_having));
        assert!(!provably_empty(&q("SELECT a FROM t WHERE a > 3")));
        // UNION of empty and unknown is unknown.
        assert!(!provably_empty(&q(
            "SELECT a FROM t WHERE FALSE UNION SELECT b FROM s"
        )));
    }

    #[test]
    fn output_facts_trace_provenance_and_nullability() {
        let facts = output_facts(&q(
            "SELECT name, COUNT(*), age + 1 FROM singer GROUP BY name",
        ))
        .unwrap();
        assert_eq!(
            facts.provenance[0],
            Provenance::Column(ColumnRef::bare("name"))
        );
        assert_eq!(facts.provenance[1], Provenance::Computed);
        assert_eq!(facts.provenance[2], Provenance::Computed);
        assert_eq!(facts.never_null, vec![false, true, false]);

        // Through a derived table, by name.
        let facts = output_facts(&q(
            "SELECT d.x FROM (SELECT a AS x FROM t) AS d WHERE d.x > 1",
        ))
        .unwrap();
        assert_eq!(
            facts.provenance[0],
            Provenance::Column(ColumnRef::bare("a"))
        );

        assert!(output_facts(&q("SELECT * FROM t")).is_none());
        assert_eq!(output_arity(&q("SELECT a, b FROM t")), Some(2));
        assert_eq!(output_arity(&q("SELECT * FROM t")), None);
    }

    #[test]
    fn equivalence_oracle_paths() {
        // Path 1: normalization equality (conjunct order).
        assert!(provably_equivalent(
            &q("SELECT a FROM t WHERE a = 1 AND b = 2"),
            &q("SELECT a FROM t WHERE b = 2 AND a = 1")
        ));
        // Path 1 via folding: `1 = 1` folds away differences.
        assert!(provably_equivalent(
            &q("SELECT a FROM t WHERE a > 1 + 1"),
            &q("SELECT a FROM t WHERE a > 2")
        ));
        // Path 2: both provably empty with equal arity.
        assert!(provably_equivalent(
            &q("SELECT a FROM t WHERE a > 5 AND a < 3"),
            &q("SELECT b FROM s WHERE FALSE")
        ));
        // Different arity: not equivalent even when both are empty.
        assert!(!provably_equivalent(
            &q("SELECT a FROM t WHERE FALSE"),
            &q("SELECT a, b FROM t WHERE FALSE")
        ));
        // Genuinely different queries.
        assert!(!provably_equivalent(
            &q("SELECT a FROM t WHERE a = 1"),
            &q("SELECT a FROM t WHERE a = 2")
        ));
    }

    #[test]
    fn fold_expr_rules() {
        let e = |sql: &str| {
            q(&format!("SELECT a FROM t WHERE {sql}"))
                .core
                .where_clause
                .unwrap()
        };
        // FALSE AND x short-circuits regardless of x's shape.
        assert_eq!(
            fold_expr(&e("FALSE AND a + 1")),
            Some(Expr::Literal(Literal::Bool(false)))
        );
        assert_eq!(
            fold_expr(&e("TRUE OR a + 1")),
            Some(Expr::Literal(Literal::Bool(true)))
        );
        // Identity folds require boolean shape: `a + 1` keeps its value.
        assert_eq!(fold_expr(&e("a + 1 AND TRUE")), None);
        assert_eq!(fold_expr(&e("a > 1 AND TRUE")), Some(e("a > 1")));
        assert_eq!(fold_expr(&e("a > 1 OR FALSE")), Some(e("a > 1")));
        // NULL operands never fold.
        assert_eq!(fold_expr(&e("NULL AND a > 1")), None);
        assert_eq!(
            fold_expr(&e("NOT TRUE")),
            Some(Expr::Literal(Literal::Bool(false)))
        );
        assert_eq!(fold_expr(&e("NOT NULL")), None);
    }
}
