//! Application of clause-level [`EditOp`]s to queries.
//!
//! The simulated LLM performs a correction by *applying* an edit operation
//! it inferred from the user's feedback. Keeping application separate from
//! inference means the FISQL pipeline and its ablations share one edit
//! engine and differ only in how reliably they infer the right operation —
//! exactly the paper's framing (routing improves inference precision, not
//! the edit mechanics).

use crate::ast::*;
use crate::diff::EditOp;

/// Errors surfaced when an edit cannot be applied to a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// The index referenced by the edit is out of bounds.
    IndexOutOfRange {
        /// What kind of element was indexed.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The number of elements present.
        len: usize,
    },
    /// A `ReplaceTable` edit referenced a table absent from the query.
    TableNotFound {
        /// The missing table.
        table: String,
    },
}

impl std::fmt::Display for EditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EditError::IndexOutOfRange { what, index, len } => {
                write!(f, "{what} index {index} out of range (len {len})")
            }
            EditError::TableNotFound { table } => write!(f, "table `{table}` not in query"),
        }
    }
}

impl std::error::Error for EditError {}

/// Applies `op` to `query`, returning the edited query.
pub fn apply_edit(query: &Query, op: &EditOp) -> Result<Query, EditError> {
    let mut q = query.clone();
    match op {
        EditOp::AddSelectItem { item } => {
            q.core.items.push(item.clone());
        }
        EditOp::RemoveSelectItem { index, .. } => {
            let len = q.core.items.len();
            if *index >= len {
                return Err(EditError::IndexOutOfRange {
                    what: "select item",
                    index: *index,
                    len,
                });
            }
            // Never leave the SELECT list empty.
            if len == 1 {
                q.core.items = vec![SelectItem::Wildcard];
            } else {
                q.core.items.remove(*index);
            }
        }
        EditOp::ReplaceSelectItem { index, to, .. } => {
            let len = q.core.items.len();
            let slot = q
                .core
                .items
                .get_mut(*index)
                .ok_or(EditError::IndexOutOfRange {
                    what: "select item",
                    index: *index,
                    len,
                })?;
            *slot = to.clone();
        }
        EditOp::SetDistinct { distinct } => {
            q.core.distinct = *distinct;
        }
        EditOp::ReplaceTable { from, to } => {
            replace_table(&mut q, from, to)?;
        }
        EditOp::AddJoin { join } => match &mut q.core.from {
            Some(f) => f.joins.push(join.clone()),
            None => {
                q.core.from = Some(FromClause {
                    base: join.factor.clone(),
                    joins: Vec::new(),
                });
            }
        },
        EditOp::RemoveJoin { index, .. } => {
            let Some(f) = &mut q.core.from else {
                return Err(EditError::IndexOutOfRange {
                    what: "join",
                    index: *index,
                    len: 0,
                });
            };
            if *index >= f.joins.len() {
                return Err(EditError::IndexOutOfRange {
                    what: "join",
                    index: *index,
                    len: f.joins.len(),
                });
            }
            f.joins.remove(*index);
        }
        EditOp::AddPredicate { pred } => {
            q.core.where_clause = Some(match q.core.where_clause.take() {
                Some(w) => w.and(pred.clone()),
                None => pred.clone(),
            });
        }
        EditOp::RemovePredicate { index, .. } => {
            let conj: Vec<Expr> = q
                .core
                .where_clause
                .as_ref()
                .map(|w| w.conjuncts().into_iter().cloned().collect())
                .unwrap_or_default();
            if *index >= conj.len() {
                return Err(EditError::IndexOutOfRange {
                    what: "predicate",
                    index: *index,
                    len: conj.len(),
                });
            }
            let mut conj = conj;
            conj.remove(*index);
            q.core.where_clause = Expr::conjoin(conj);
        }
        EditOp::ReplacePredicate { index, to, .. } => {
            let mut conj: Vec<Expr> = q
                .core
                .where_clause
                .as_ref()
                .map(|w| w.conjuncts().into_iter().cloned().collect())
                .unwrap_or_default();
            if *index >= conj.len() {
                // The predicate to replace does not exist — treat as add,
                // which is what a cooperative model does with feedback
                // about a missing condition.
                conj.push(to.clone());
            } else {
                conj[*index] = to.clone();
            }
            q.core.where_clause = Expr::conjoin(conj);
        }
        EditOp::SetGroupBy { to, .. } => {
            q.core.group_by.clone_from(to);
            if to.is_empty() {
                q.core.having = None;
            }
        }
        EditOp::SetHaving { to, .. } => {
            q.core.having.clone_from(to);
        }
        EditOp::SetOrderBy { to, .. } => {
            q.order_by.clone_from(to);
        }
        EditOp::SetLimit { to, .. } => {
            q.limit = *to;
        }
        EditOp::ReplaceQuery { to } => {
            q = (**to).clone();
        }
    }
    Ok(q)
}

/// Applies a sequence of edits left to right, stopping at the first error.
pub fn apply_edits(query: &Query, ops: &[EditOp]) -> Result<Query, EditError> {
    let mut q = query.clone();
    for op in ops {
        q = apply_edit(&q, op)?;
    }
    Ok(q)
}

/// Replaces every reference to table `from` with `to`: FROM factors
/// (including join factors) and qualified column references across all
/// clauses of the outer query.
fn replace_table(q: &mut Query, from: &str, to: &str) -> Result<(), EditError> {
    let mut found = false;
    for core in q.cores_mut() {
        if let Some(f) = &mut core.from {
            let mut rename = |factor: &mut TableFactor| {
                if let TableFactor::Table { name, .. } = factor {
                    if name.eq_ignore_ascii_case(from) {
                        *name = to.to_string();
                        found = true;
                    }
                }
            };
            rename(&mut f.base);
            for j in &mut f.joins {
                rename(&mut j.factor);
            }
        }
        let rewrite = &mut |e: &mut Expr| {
            if let Expr::Column(c) = e {
                if let Some(t) = &mut c.table {
                    if t.eq_ignore_ascii_case(from) {
                        *t = to.to_string();
                    }
                }
            }
        };
        for item in &mut core.items {
            if let SelectItem::Expr { expr, .. } = item {
                expr.walk_mut(rewrite);
            }
        }
        if let Some(f) = &mut core.from {
            for j in &mut f.joins {
                if let Some(c) = &mut j.constraint {
                    c.walk_mut(rewrite);
                }
            }
        }
        if let Some(w) = &mut core.where_clause {
            w.walk_mut(rewrite);
        }
        for g in &mut core.group_by {
            g.walk_mut(rewrite);
        }
        if let Some(h) = &mut core.having {
            h.walk_mut(rewrite);
        }
    }
    for o in &mut q.order_by {
        o.expr.walk_mut(&mut |e: &mut Expr| {
            if let Expr::Column(c) = e {
                if let Some(t) = &mut c.table {
                    if t.eq_ignore_ascii_case(from) {
                        *t = to.to_string();
                    }
                }
            }
        });
    }
    if found {
        Ok(())
    } else {
        Err(EditError::TableNotFound {
            table: from.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::diff_queries;
    use crate::normalize::structurally_equal;
    use crate::parser::parse_query;
    use crate::printer::print_query;

    fn q(sql: &str) -> Query {
        parse_query(sql).unwrap()
    }

    /// The fundamental contract: applying `diff(p, g)` to `p` yields a
    /// query structurally equal to `g`.
    fn assert_diff_apply_roundtrip(p: &str, g: &str) {
        let pq = q(p);
        let gq = q(g);
        let edits = diff_queries(&pq, &gq);
        // Diff is computed against the normalized prediction, so apply to
        // the normalized form as the pipeline does.
        let base = crate::normalize::normalize_query(&pq);
        let fixed = apply_edits(&base, &edits).expect("edits apply");
        assert!(
            structurally_equal(&fixed, &gq),
            "apply(diff) failed:\n  p: {p}\n  g: {g}\n  got: {}",
            print_query(&fixed)
        );
    }

    #[test]
    fn diff_apply_roundtrips() {
        let cases = [
            ("SELECT a FROM t", "SELECT b FROM t"),
            ("SELECT a FROM t", "SELECT a, b FROM t"),
            ("SELECT a, b FROM t", "SELECT a FROM t"),
            ("SELECT a FROM t", "SELECT DISTINCT a FROM t"),
            ("SELECT a FROM t1", "SELECT a FROM t2"),
            (
                "SELECT COUNT(*) FROM s WHERE y = 2023",
                "SELECT COUNT(*) FROM s WHERE y = 2024",
            ),
            ("SELECT a FROM t", "SELECT a FROM t WHERE x > 1"),
            ("SELECT a FROM t WHERE x > 1", "SELECT a FROM t"),
            ("SELECT a FROM t", "SELECT a FROM t ORDER BY a DESC LIMIT 3"),
            (
                "SELECT a FROM t ORDER BY a ASC",
                "SELECT a FROM t ORDER BY a DESC",
            ),
            (
                "SELECT city, COUNT(*) FROM t GROUP BY city",
                "SELECT city, COUNT(*) FROM t GROUP BY city HAVING COUNT(*) > 5",
            ),
            (
                "SELECT a.x FROM a",
                "SELECT a.x FROM a JOIN b ON a.id = b.aid",
            ),
            (
                "SELECT a.x FROM a JOIN b ON a.id = b.aid WHERE b.y = 1",
                "SELECT a.x FROM a JOIN c ON a.id = c.aid WHERE c.y = 1",
            ),
            ("SELECT a FROM t", "SELECT a FROM t UNION SELECT b FROM s"),
            (
                "SELECT name FROM singer WHERE age = (SELECT MAX(age) FROM singer)",
                "SELECT name FROM singer WHERE age = (SELECT MIN(age) FROM singer)",
            ),
        ];
        for (p, g) in cases {
            assert_diff_apply_roundtrip(p, g);
        }
    }

    #[test]
    fn replace_table_rewrites_qualified_columns() {
        let query = q("SELECT b.x FROM a JOIN b ON a.id = b.aid WHERE b.y = 1 ORDER BY b.x ASC");
        let edited = apply_edit(
            &query,
            &EditOp::ReplaceTable {
                from: "b".into(),
                to: "c".into(),
            },
        )
        .unwrap();
        let text = print_query(&edited);
        assert!(!text.contains("b."), "{text}");
        assert!(text.contains("c.x") && text.contains("c.aid") && text.contains("c.y"));
    }

    #[test]
    fn replace_missing_table_errors() {
        let query = q("SELECT a FROM t");
        let err = apply_edit(
            &query,
            &EditOp::ReplaceTable {
                from: "zzz".into(),
                to: "t2".into(),
            },
        )
        .unwrap_err();
        assert!(matches!(err, EditError::TableNotFound { .. }));
    }

    #[test]
    fn remove_last_select_item_leaves_wildcard() {
        let query = q("SELECT a FROM t");
        let edited = apply_edit(
            &query,
            &EditOp::RemoveSelectItem {
                index: 0,
                item: SelectItem::expr(Expr::col("a")),
            },
        )
        .unwrap();
        assert_eq!(edited.core.items, vec![SelectItem::Wildcard]);
    }

    #[test]
    fn out_of_range_indices_error() {
        let query = q("SELECT a FROM t WHERE x = 1");
        assert!(apply_edit(
            &query,
            &EditOp::RemovePredicate {
                index: 5,
                pred: Expr::col("x"),
            },
        )
        .is_err());
        assert!(apply_edit(
            &query,
            &EditOp::RemoveJoin {
                index: 0,
                join: Join {
                    kind: JoinKind::Inner,
                    factor: TableFactor::table("b"),
                    constraint: None,
                },
            },
        )
        .is_err());
    }

    #[test]
    fn replace_predicate_out_of_range_degrades_to_add() {
        let query = q("SELECT a FROM t");
        let edited = apply_edit(
            &query,
            &EditOp::ReplacePredicate {
                index: 0,
                from: Expr::col("x"),
                to: Expr::binary(Expr::col("x"), BinOp::Eq, Expr::num(1)),
            },
        )
        .unwrap();
        assert!(edited.core.where_clause.is_some());
    }

    #[test]
    fn clearing_group_by_clears_having() {
        let query = q("SELECT city, COUNT(*) FROM t GROUP BY city HAVING COUNT(*) > 1");
        let edited = apply_edit(
            &query,
            &EditOp::SetGroupBy {
                from: vec![Expr::col("city")],
                to: vec![],
            },
        )
        .unwrap();
        assert!(edited.core.group_by.is_empty());
        assert!(edited.core.having.is_none());
    }

    #[test]
    fn add_predicate_conjoins() {
        let query = q("SELECT a FROM t WHERE x = 1");
        let edited = apply_edit(
            &query,
            &EditOp::AddPredicate {
                pred: Expr::binary(Expr::col("y"), BinOp::Eq, Expr::num(2)),
            },
        )
        .unwrap();
        assert_eq!(edited.core.where_clause.unwrap().conjuncts().len(), 2);
    }
}
