//! Token definitions for the SQL lexer.

use crate::span::Span;
use serde::{Deserialize, Serialize};
use std::fmt;

/// SQL keywords recognised by the lexer.
///
/// The set covers the SELECT-statement subset used by the SPIDER benchmark
/// (the paper's evaluation target) plus the keywords appearing in the
/// AEP-style analytics queries of the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    Distinct,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Limit,
    Offset,
    Asc,
    Desc,
    Join,
    Inner,
    Left,
    Right,
    Full,
    Outer,
    Cross,
    On,
    As,
    And,
    Or,
    Not,
    In,
    Between,
    Like,
    Is,
    Null,
    Exists,
    Union,
    Intersect,
    Except,
    All,
    Case,
    When,
    Then,
    Else,
    End,
    True,
    False,
}

impl Keyword {
    /// Looks up a keyword from an identifier, case-insensitively.
    pub fn from_ident(ident: &str) -> Option<Keyword> {
        use Keyword::*;
        let kw = match ident.to_ascii_uppercase().as_str() {
            "SELECT" => Select,
            "DISTINCT" => Distinct,
            "FROM" => From,
            "WHERE" => Where,
            "GROUP" => Group,
            "BY" => By,
            "HAVING" => Having,
            "ORDER" => Order,
            "LIMIT" => Limit,
            "OFFSET" => Offset,
            "ASC" => Asc,
            "DESC" => Desc,
            "JOIN" => Join,
            "INNER" => Inner,
            "LEFT" => Left,
            "RIGHT" => Right,
            "FULL" => Full,
            "OUTER" => Outer,
            "CROSS" => Cross,
            "ON" => On,
            "AS" => As,
            "AND" => And,
            "OR" => Or,
            "NOT" => Not,
            "IN" => In,
            "BETWEEN" => Between,
            "LIKE" => Like,
            "IS" => Is,
            "NULL" => Null,
            "EXISTS" => Exists,
            "UNION" => Union,
            "INTERSECT" => Intersect,
            "EXCEPT" => Except,
            "ALL" => All,
            "CASE" => Case,
            "WHEN" => When,
            "THEN" => Then,
            "ELSE" => Else,
            "END" => End,
            "TRUE" => True,
            "FALSE" => False,
            _ => return None,
        };
        Some(kw)
    }

    /// Canonical (upper-case) spelling.
    pub fn as_str(&self) -> &'static str {
        use Keyword::*;
        match self {
            Select => "SELECT",
            Distinct => "DISTINCT",
            From => "FROM",
            Where => "WHERE",
            Group => "GROUP",
            By => "BY",
            Having => "HAVING",
            Order => "ORDER",
            Limit => "LIMIT",
            Offset => "OFFSET",
            Asc => "ASC",
            Desc => "DESC",
            Join => "JOIN",
            Inner => "INNER",
            Left => "LEFT",
            Right => "RIGHT",
            Full => "FULL",
            Outer => "OUTER",
            Cross => "CROSS",
            On => "ON",
            As => "AS",
            And => "AND",
            Or => "OR",
            Not => "NOT",
            In => "IN",
            Between => "BETWEEN",
            Like => "LIKE",
            Is => "IS",
            Null => "NULL",
            Exists => "EXISTS",
            Union => "UNION",
            Intersect => "INTERSECT",
            Except => "EXCEPT",
            All => "ALL",
            Case => "CASE",
            When => "WHEN",
            Then => "THEN",
            Else => "ELSE",
            End => "END",
            True => "TRUE",
            False => "FALSE",
        }
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The kind of a lexed token. Literal payloads carry their decoded value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TokenKind {
    /// A recognised SQL keyword.
    Keyword(Keyword),
    /// A bare or quoted identifier (quotes stripped).
    Ident(String),
    /// An integer literal.
    Number(i64),
    /// A floating-point literal.
    Float(f64),
    /// A single-quoted string literal (quotes stripped, `''` unescaped).
    String(String),
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// End of input sentinel.
    Eof,
}

impl TokenKind {
    /// Human-readable description used in parse-error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Keyword(k) => format!("keyword {k}"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Number(n) => format!("number {n}"),
            TokenKind::Float(x) => format!("number {x}"),
            TokenKind::String(s) => format!("string '{s}'"),
            TokenKind::Eq => "`=`".to_string(),
            TokenKind::NotEq => "`!=`".to_string(),
            TokenKind::Lt => "`<`".to_string(),
            TokenKind::LtEq => "`<=`".to_string(),
            TokenKind::Gt => "`>`".to_string(),
            TokenKind::GtEq => "`>=`".to_string(),
            TokenKind::Plus => "`+`".to_string(),
            TokenKind::Minus => "`-`".to_string(),
            TokenKind::Star => "`*`".to_string(),
            TokenKind::Slash => "`/`".to_string(),
            TokenKind::Percent => "`%`".to_string(),
            TokenKind::LParen => "`(`".to_string(),
            TokenKind::RParen => "`)`".to_string(),
            TokenKind::Comma => "`,`".to_string(),
            TokenKind::Dot => "`.`".to_string(),
            TokenKind::Semicolon => "`;`".to_string(),
            TokenKind::Eof => "end of input".to_string(),
        }
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_roundtrip() {
        for kw in [
            Keyword::Select,
            Keyword::Between,
            Keyword::Intersect,
            Keyword::End,
        ] {
            assert_eq!(Keyword::from_ident(kw.as_str()), Some(kw));
            assert_eq!(Keyword::from_ident(&kw.as_str().to_lowercase()), Some(kw));
        }
    }

    #[test]
    fn non_keyword_idents() {
        assert_eq!(Keyword::from_ident("singer"), None);
        assert_eq!(Keyword::from_ident("selects"), None);
    }
}
