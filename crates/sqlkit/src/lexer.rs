//! A hand-written SQL lexer producing spanned tokens.
//!
//! The lexer is deliberately strict about the subset it accepts: anything
//! outside it is a [`ParseError`] with a span, so malformed SQL coming out
//! of the simulated LLM surfaces as a structured failure rather than a
//! panic (the paper's Assistant likewise treats unparsable generations as
//! errors to be corrected by feedback).

use crate::error::{ParseError, ParseResult};
use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind};

/// Lexes `input` into a token vector terminated by a single [`TokenKind::Eof`].
pub fn lex(input: &str) -> ParseResult<Vec<Token>> {
    Lexer::new(input).run()
}

struct Lexer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn run(mut self) -> ParseResult<Vec<Token>> {
        let mut tokens = Vec::new();
        loop {
            self.skip_whitespace_and_comments()?;
            let start = self.pos;
            let Some(&b) = self.bytes.get(self.pos) else {
                tokens.push(Token::new(TokenKind::Eof, Span::point(self.pos)));
                return Ok(tokens);
            };
            let kind = match b {
                b'(' => self.single(TokenKind::LParen),
                b')' => self.single(TokenKind::RParen),
                b',' => self.single(TokenKind::Comma),
                b'.' => self.single(TokenKind::Dot),
                b';' => self.single(TokenKind::Semicolon),
                b'+' => self.single(TokenKind::Plus),
                b'-' => self.single(TokenKind::Minus),
                b'*' => self.single(TokenKind::Star),
                b'/' => self.single(TokenKind::Slash),
                b'%' => self.single(TokenKind::Percent),
                b'=' => self.single(TokenKind::Eq),
                b'<' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'=') => {
                            self.pos += 1;
                            TokenKind::LtEq
                        }
                        Some(b'>') => {
                            self.pos += 1;
                            TokenKind::NotEq
                        }
                        _ => TokenKind::Lt,
                    }
                }
                b'>' => {
                    self.pos += 1;
                    if self.bytes.get(self.pos) == Some(&b'=') {
                        self.pos += 1;
                        TokenKind::GtEq
                    } else {
                        TokenKind::Gt
                    }
                }
                b'!' => {
                    self.pos += 1;
                    if self.bytes.get(self.pos) == Some(&b'=') {
                        self.pos += 1;
                        TokenKind::NotEq
                    } else {
                        return Err(ParseError::new(
                            "unexpected `!` (did you mean `!=`?)",
                            Span::new(start, self.pos),
                        ));
                    }
                }
                b'\'' => self.string_literal()?,
                b'"' | b'`' => self.quoted_ident(b)?,
                b'0'..=b'9' => self.number()?,
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.ident_or_keyword(),
                _ => {
                    let ch = self.input[start..]
                        .chars()
                        .next()
                        .expect("byte present implies char present");
                    return Err(ParseError::new(
                        format!("unexpected character `{ch}`"),
                        Span::new(start, start + ch.len_utf8()),
                    ));
                }
            };
            tokens.push(Token::new(kind, Span::new(start, self.pos)));
        }
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.pos += 1;
        kind
    }

    fn skip_whitespace_and_comments(&mut self) -> ParseResult<()> {
        loop {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.pos += 1;
            }
            // `-- comment` to end of line
            if self.bytes.get(self.pos) == Some(&b'-')
                && self.bytes.get(self.pos + 1) == Some(&b'-')
            {
                while self.bytes.get(self.pos).is_some_and(|&b| b != b'\n') {
                    self.pos += 1;
                }
                continue;
            }
            // `/* block comment */`
            if self.bytes.get(self.pos) == Some(&b'/')
                && self.bytes.get(self.pos + 1) == Some(&b'*')
            {
                let start = self.pos;
                self.pos += 2;
                loop {
                    if self.pos + 1 >= self.bytes.len() {
                        return Err(ParseError::new(
                            "unterminated block comment",
                            Span::new(start, self.bytes.len()),
                        ));
                    }
                    if self.bytes[self.pos] == b'*' && self.bytes[self.pos + 1] == b'/' {
                        self.pos += 2;
                        break;
                    }
                    self.pos += 1;
                }
                continue;
            }
            return Ok(());
        }
    }

    fn string_literal(&mut self) -> ParseResult<TokenKind> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut value = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => {
                    return Err(ParseError::new(
                        "unterminated string literal",
                        Span::new(start, self.pos),
                    ));
                }
                Some(b'\'') => {
                    // `''` escapes a single quote.
                    if self.bytes.get(self.pos + 1) == Some(&b'\'') {
                        value.push('\'');
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        return Ok(TokenKind::String(value));
                    }
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar.
                    let rest = &self.input[self.pos..];
                    let ch = rest.chars().next().expect("non-empty rest");
                    value.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn quoted_ident(&mut self, quote: u8) -> ParseResult<TokenKind> {
        let start = self.pos;
        self.pos += 1;
        let begin = self.pos;
        while self.bytes.get(self.pos).is_some_and(|&b| b != quote) {
            self.pos += 1;
        }
        if self.bytes.get(self.pos) != Some(&quote) {
            return Err(ParseError::new(
                "unterminated quoted identifier",
                Span::new(start, self.pos),
            ));
        }
        let name = self.input[begin..self.pos].to_string();
        self.pos += 1;
        if name.is_empty() {
            return Err(ParseError::new(
                "empty quoted identifier",
                Span::new(start, self.pos),
            ));
        }
        Ok(TokenKind::Ident(name))
    }

    fn number(&mut self) -> ParseResult<TokenKind> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'.')
            && self.bytes.get(self.pos + 1).is_some_and(u8::is_ascii_digit)
        {
            is_float = true;
            self.pos += 1;
            while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            let mut lookahead = self.pos + 1;
            if matches!(self.bytes.get(lookahead), Some(b'+' | b'-')) {
                lookahead += 1;
            }
            if self.bytes.get(lookahead).is_some_and(u8::is_ascii_digit) {
                is_float = true;
                self.pos = lookahead;
                while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                    self.pos += 1;
                }
            }
        }
        let text = &self.input[start..self.pos];
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|_| ParseError::new("invalid float literal", Span::new(start, self.pos)))
        } else {
            text.parse::<i64>().map(TokenKind::Number).map_err(|_| {
                ParseError::new("integer literal out of range", Span::new(start, self.pos))
            })
        }
    }

    fn ident_or_keyword(&mut self) -> TokenKind {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.pos += 1;
        }
        let text = &self.input[start..self.pos];
        match Keyword::from_ident(text) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(text.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_select() {
        let ks = kinds("SELECT a FROM t");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Ident("a".into()),
                TokenKind::Keyword(Keyword::From),
                TokenKind::Ident("t".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(kinds("select")[0], TokenKind::Keyword(Keyword::Select));
        assert_eq!(kinds("SeLeCt")[0], TokenKind::Keyword(Keyword::Select));
    }

    #[test]
    fn lexes_operators() {
        let ks = kinds("= != <> < <= > >= + - * / %");
        assert_eq!(
            ks,
            vec![
                TokenKind::Eq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Lt,
                TokenKind::LtEq,
                TokenKind::Gt,
                TokenKind::GtEq,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_string_with_escape() {
        let ks = kinds("'it''s'");
        assert_eq!(ks[0], TokenKind::String("it's".into()));
    }

    #[test]
    fn lexes_unicode_string() {
        let ks = kinds("'héllo—world'");
        assert_eq!(ks[0], TokenKind::String("héllo—world".into()));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Number(42));
        assert_eq!(kinds("3.5")[0], TokenKind::Float(3.5));
        assert_eq!(kinds("1e3")[0], TokenKind::Float(1000.0));
        assert_eq!(kinds("2.5e-1")[0], TokenKind::Float(0.25));
    }

    #[test]
    fn dot_after_int_without_digits_is_separate() {
        // `t.` style access: `1.` would be Number then Dot.
        let ks = kinds("t.c");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("t".into()),
                TokenKind::Dot,
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn quoted_identifiers() {
        assert_eq!(kinds("\"Group\"")[0], TokenKind::Ident("Group".into()));
        assert_eq!(kinds("`order`")[0], TokenKind::Ident("order".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("SELECT -- the column\n a /* really */ FROM t");
        assert_eq!(ks.len(), 5);
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        assert!(lex("SELECT /* a").is_err());
    }

    #[test]
    fn bare_bang_is_error() {
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn spans_are_accurate() {
        let toks = lex("SELECT abc").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 6));
        assert_eq!(toks[1].span, Span::new(7, 10));
        assert_eq!(toks[2].span, Span::point(10));
    }

    #[test]
    fn huge_integer_is_error() {
        assert!(lex("99999999999999999999999").is_err());
    }

    #[test]
    fn multibyte_unexpected_character_errors_cleanly() {
        // Regression: the error path used to slice one byte into a
        // multi-byte character and panic.
        let err = lex("ກk").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        let err = lex("SELECT 🦀 FROM t").unwrap_err();
        assert!(err.message.contains('🦀'));
    }
}
