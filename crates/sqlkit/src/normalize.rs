//! Structural normalization of queries.
//!
//! Execution-match (the paper's metric) is computed by the engine, but the
//! feedback simulator and the error analysis need a *structural* notion of
//! equivalence that is insensitive to superficial choices the generator or
//! the simulated LLM may make: identifier case, conjunct order, which side
//! of a comparison the literal sits on, `x <> y` vs `x != y`, and so on.
//!
//! [`normalize_query`] rewrites a query into a canonical form;
//! [`structurally_equal`] compares two queries modulo that form.

use crate::ast::*;
use crate::printer::print_expr;

/// Returns a canonicalized copy of `query`.
///
/// Normalizations applied (in each select core, recursively):
/// - identifiers (tables, columns, aliases) lower-cased;
/// - comparisons flipped so a literal operand sits on the right;
/// - constant subexpressions folded with the engine-faithful rules of
///   [`crate::flow::fold_expr`] (`1 + 1` → `2`, `NOT TRUE` → `FALSE`,
///   3VL-safe AND/OR absorption);
/// - WHERE/HAVING conjuncts sorted by rendered text, then re-folded so
///   the sorted conjunction is fold-stable;
/// - IN-list elements sorted by rendered text;
/// - `ASC` made explicit (no-op structurally; `desc: false` already).
///
/// The result is idempotent by construction:
/// `normalize_query(&normalize_query(q)) == normalize_query(q)` (property
/// tested in `tests/ast_roundtrip.rs`).
pub fn normalize_query(query: &Query) -> Query {
    let mut q = query.clone();
    normalize_in_place(&mut q);
    q
}

/// Structural equality modulo normalization.
pub fn structurally_equal(a: &Query, b: &Query) -> bool {
    normalize_query(a) == normalize_query(b)
}

fn normalize_in_place(q: &mut Query) {
    for core in q.cores_mut() {
        normalize_core(core);
    }
    for item in &mut q.order_by {
        normalize_expr(&mut item.expr);
    }
}

fn normalize_core(core: &mut SelectCore) {
    for item in &mut core.items {
        match item {
            SelectItem::Wildcard => {}
            SelectItem::QualifiedWildcard(t) => lower(t),
            SelectItem::Expr { expr, alias } => {
                normalize_expr(expr);
                if let Some(a) = alias {
                    lower(a);
                }
            }
        }
    }
    if let Some(from) = &mut core.from {
        normalize_factor(&mut from.base);
        for join in &mut from.joins {
            normalize_factor(&mut join.factor);
            if let Some(c) = &mut join.constraint {
                normalize_expr(c);
            }
        }
    }
    if let Some(w) = &mut core.where_clause {
        normalize_filter(w);
    }
    for g in &mut core.group_by {
        normalize_expr(g);
    }
    if let Some(h) = &mut core.having {
        normalize_filter(h);
    }
}

fn normalize_factor(f: &mut TableFactor) {
    match f {
        TableFactor::Table { name, alias } => {
            lower(name);
            if let Some(a) = alias {
                lower(a);
            }
        }
        TableFactor::Derived { subquery, alias } => {
            normalize_in_place(subquery);
            lower(alias);
        }
    }
}

/// WHERE/HAVING: normalize, sort the conjuncts, then fold once more —
/// sorting can move a `FALSE` conjunct into absorbing position, and the
/// extra pass keeps normalization idempotent (folds only ever *remove*
/// conjuncts, so the sorted order survives).
fn normalize_filter(w: &mut Expr) {
    normalize_expr(w);
    *w = sort_conjuncts(w.clone());
    normalize_expr(w);
}

fn normalize_expr(e: &mut Expr) {
    // Bottom-up: normalize children first, then local rewrites.
    match e {
        Expr::Column(c) => {
            if let Some(t) = &mut c.table {
                lower(t);
            }
            lower(&mut c.column);
        }
        Expr::Literal(_) | Expr::Wildcard => {}
        Expr::Unary { expr, .. } => normalize_expr(expr),
        Expr::Binary { left, op, right } => {
            normalize_expr(left);
            normalize_expr(right);
            // Literal-left comparisons flip: `1 < a` → `a > 1`.
            if op.is_comparison()
                && matches!(**left, Expr::Literal(_))
                && !matches!(**right, Expr::Literal(_))
            {
                std::mem::swap(left, right);
                *op = op.flipped();
            }
            // Commutative operand ordering for `=` and `!=` between two
            // columns, so `a.x = b.y` and `b.y = a.x` compare equal.
            if matches!(op, BinOp::Eq | BinOp::NotEq)
                && matches!(**left, Expr::Column(_))
                && matches!(**right, Expr::Column(_))
                && print_expr(right) < print_expr(left)
            {
                std::mem::swap(left, right);
            }
        }
        Expr::Call { args, .. } => {
            for a in args {
                normalize_expr(a);
            }
        }
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            if let Some(op) = operand {
                normalize_expr(op);
            }
            for (w, t) in branches {
                normalize_expr(w);
                normalize_expr(t);
            }
            if let Some(el) = else_branch {
                normalize_expr(el);
            }
        }
        Expr::InList { expr, list, .. } => {
            normalize_expr(expr);
            for item in list.iter_mut() {
                normalize_expr(item);
            }
            list.sort_by_key(print_expr);
        }
        Expr::InSubquery { expr, subquery, .. } => {
            normalize_expr(expr);
            normalize_in_place(subquery);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            normalize_expr(expr);
            normalize_expr(low);
            normalize_expr(high);
        }
        Expr::Like { expr, pattern, .. } => {
            normalize_expr(expr);
            normalize_expr(pattern);
        }
        Expr::IsNull { expr, .. } => normalize_expr(expr),
        Expr::Exists { subquery, .. } => normalize_in_place(subquery),
        Expr::Subquery(q) => normalize_in_place(q),
    }
    // Constant folding, after children are canonical. A fold either
    // yields a literal or an already-folded child, so this terminates in
    // at most two steps per node.
    while let Some(folded) = crate::flow::fold_expr(e) {
        *e = folded;
    }
}

fn sort_conjuncts(e: Expr) -> Expr {
    let mut parts: Vec<Expr> = e.conjuncts().into_iter().cloned().collect();
    if parts.len() <= 1 {
        return e;
    }
    parts.sort_by_key(print_expr);
    Expr::conjoin(parts).expect("non-empty conjunct list")
}

fn lower(s: &mut String) {
    if s.chars().any(|c| c.is_ascii_uppercase()) {
        *s = s.to_ascii_lowercase();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn eq(a: &str, b: &str) -> bool {
        structurally_equal(&parse_query(a).unwrap(), &parse_query(b).unwrap())
    }

    #[test]
    fn case_insensitive_identifiers() {
        assert!(eq("SELECT Name FROM Singer", "SELECT name FROM singer"));
    }

    #[test]
    fn conjunct_order_irrelevant() {
        assert!(eq(
            "SELECT * FROM t WHERE a = 1 AND b = 2",
            "SELECT * FROM t WHERE b = 2 AND a = 1"
        ));
    }

    #[test]
    fn literal_side_irrelevant() {
        assert!(eq(
            "SELECT * FROM t WHERE 30 < age",
            "SELECT * FROM t WHERE age > 30"
        ));
    }

    #[test]
    fn column_eq_commutes() {
        assert!(eq(
            "SELECT * FROM a JOIN b ON a.id = b.aid",
            "SELECT * FROM a JOIN b ON b.aid = a.id"
        ));
    }

    #[test]
    fn in_list_order_irrelevant() {
        assert!(eq(
            "SELECT * FROM t WHERE x IN (3, 1, 2)",
            "SELECT * FROM t WHERE x IN (1, 2, 3)"
        ));
    }

    #[test]
    fn different_predicates_differ() {
        assert!(!eq(
            "SELECT * FROM t WHERE a = 1",
            "SELECT * FROM t WHERE a = 2"
        ));
        assert!(!eq("SELECT a FROM t", "SELECT b FROM t"));
        assert!(!eq(
            "SELECT a FROM t ORDER BY a",
            "SELECT a FROM t ORDER BY a DESC"
        ));
    }

    #[test]
    fn subqueries_normalize_recursively() {
        assert!(eq(
            "SELECT * FROM t WHERE x IN (SELECT Y FROM S WHERE b = 2 AND a = 1)",
            "SELECT * FROM t WHERE x IN (SELECT y FROM s WHERE a = 1 AND b = 2)"
        ));
    }

    #[test]
    fn normalization_is_idempotent() {
        let q = parse_query(
            "SELECT Name FROM Singer WHERE 30 < Age AND City IN ('b', 'a') ORDER BY Name",
        )
        .unwrap();
        let n1 = normalize_query(&q);
        let n2 = normalize_query(&n1);
        assert_eq!(n1, n2);
    }

    #[test]
    fn constant_folding_in_normalization() {
        assert!(eq(
            "SELECT a FROM t WHERE a > 1 + 1",
            "SELECT a FROM t WHERE a > 2"
        ));
        assert!(eq(
            "SELECT a FROM t WHERE NOT TRUE",
            "SELECT a FROM t WHERE FALSE"
        ));
        assert!(eq(
            "SELECT a FROM t WHERE a > 1 AND TRUE",
            "SELECT a FROM t WHERE a > 1"
        ));
        // Unsound folds are not applied: division by zero stays put…
        assert!(!eq(
            "SELECT a FROM t WHERE a > 1 / 0",
            "SELECT a FROM t WHERE a > 1"
        ));
        // …and NULL comparisons are not rewritten.
        assert!(!eq(
            "SELECT a FROM t WHERE a = NULL",
            "SELECT a FROM t WHERE FALSE"
        ));
    }

    #[test]
    fn folding_after_conjunct_sort_is_idempotent() {
        // Sorting moves FALSE into absorbing position; the post-sort fold
        // pass must collapse it in the first normalization already.
        let q = parse_query("SELECT a FROM t WHERE a > 1 AND FALSE AND b < 2").unwrap();
        let n1 = normalize_query(&q);
        let n2 = normalize_query(&n1);
        assert_eq!(n1, n2);
        assert_eq!(
            n1.core.where_clause,
            Some(Expr::Literal(Literal::Bool(false)))
        );
    }

    #[test]
    fn string_literal_case_is_preserved() {
        // Data values must not be case-folded.
        assert!(!eq(
            "SELECT * FROM t WHERE name = 'Alice'",
            "SELECT * FROM t WHERE name = 'alice'"
        ));
    }
}
