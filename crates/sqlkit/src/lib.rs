//! # fisql-sqlkit
//!
//! SQL substrate for the FISQL reproduction: lexer, parser, AST,
//! span-tracking pretty-printer, structural normalization, clause-level
//! diff, and edit application.
//!
//! The crate is self-contained (no engine dependency) so that every layer
//! above it — the relational engine, the benchmark generator, the
//! simulated LLM, and FISQL itself — speaks one AST.
//!
//! ## Quick tour
//!
//! ```
//! use fisql_sqlkit::{parse_query, print_query, diff_queries, apply_edits};
//!
//! let predicted = parse_query(
//!     "SELECT COUNT(*) FROM hkg_dim_segment \
//!      WHERE createdTime >= '2023-01-01' AND createdTime < '2023-02-01'",
//! ).unwrap();
//! let gold = parse_query(
//!     "SELECT COUNT(*) FROM hkg_dim_segment \
//!      WHERE createdTime >= '2024-01-01' AND createdTime < '2024-02-01'",
//! ).unwrap();
//!
//! // The paper's Figure 4 example: the user feedback "we are in 2024"
//! // corresponds to two Edit-type operations on the WHERE clause.
//! let edits = diff_queries(&predicted, &gold);
//! assert_eq!(edits.len(), 2);
//!
//! let fixed = apply_edits(&fisql_sqlkit::normalize_query(&predicted), &edits).unwrap();
//! assert!(fisql_sqlkit::structurally_equal(&fixed, &gold));
//! # let _ = print_query(&fixed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod canon;
pub mod check;
pub mod diff;
pub mod edit;
pub mod error;
pub mod flow;
pub mod lexer;
pub mod locate;
pub mod normalize;
pub mod parser;
pub mod printer;
pub mod repair;
pub mod span;
pub mod token;

pub use ast::{
    BinOp, ClausePath, ColumnRef, Expr, FromClause, Func, Join, JoinKind, LimitClause, Literal,
    OrderItem, Query, SelectCore, SelectItem, SetOp, TableFactor, UnaryOp,
};
pub use canon::{canon_fingerprint, canonicalize, canonically_equivalent, fnv64};
pub use check::{
    check_query, edit_distance, nearest_name, render_report, repair_query, ColType, ColumnInfo,
    DiagCode, Diagnostic, FkInfo, SchemaInfo, Severity, TableInfo,
};
pub use diff::{diff_queries, realized_classes, same_clause_family, EditOp, OpClass};
pub use edit::{apply_edit, apply_edits, EditError};
pub use error::{ParseError, ParseResult};
pub use flow::{
    analyze_conjunction, conjunct_truth, output_arity, output_facts, provably_empty,
    provably_equivalent, query_bounds, CardBounds, ConjunctTruth, OutputFacts, PredicateFacts,
    Provenance,
};
pub use locate::{literal_year, locate_faults, FaultKind, FaultSite, FeedbackCues, LocateOptions};
pub use normalize::{normalize_query, structurally_equal};
pub use parser::{parse_expr, parse_query};
pub use printer::{print_expr, print_query, print_query_spanned, SpannedSql};
pub use repair::{
    enumerate_repairs, is_structure_preserving, prune_candidates, PruneOutcome, RepairCandidate,
};
pub use span::Span;
