//! One test per diagnostic code of `fisql_sqlkit::check`, each asserting
//! the span anchors to the exact offending atom of the canonically
//! printed SQL.

use fisql_sqlkit::ast::{Expr, Func, SelectCore, SelectItem};
use fisql_sqlkit::check::{
    check_query, ColType, DiagCode, Diagnostic, FkInfo, SchemaInfo, Severity, TableInfo,
};
use fisql_sqlkit::{parse_query, print_query, Query};

fn schema() -> SchemaInfo {
    let mut singer = TableInfo::new(
        "singer",
        vec![
            ("singer_id", ColType::Int),
            ("name", ColType::Text),
            ("age", ColType::Int),
            ("country", ColType::Text),
        ],
    );
    singer.primary_key = Some("singer_id".into());
    let mut concert = TableInfo::new(
        "concert",
        vec![
            ("concert_id", ColType::Int),
            ("singer_id", ColType::Int),
            ("venue", ColType::Text),
            ("concert_date", ColType::Date),
        ],
    );
    concert.primary_key = Some("concert_id".into());
    concert.foreign_keys.push(FkInfo {
        column: "singer_id".into(),
        ref_table: "singer".into(),
        ref_column: "singer_id".into(),
    });
    SchemaInfo::new(vec![singer, concert])
}

/// Checks `sql` and returns `(printed_sql, diagnostics)`.
fn check(sql: &str) -> (String, Vec<Diagnostic>) {
    let q = parse_query(sql).unwrap();
    check_ast(&q)
}

fn check_ast(q: &Query) -> (String, Vec<Diagnostic>) {
    (print_query(q), check_query(q, &schema()))
}

/// The first diagnostic with `code`, or a panic listing what was found.
fn find(diags: &[Diagnostic], code: DiagCode) -> &Diagnostic {
    diags
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("no {code:?} in {diags:?}"))
}

#[test]
fn unknown_table_spans_the_table_name() {
    let (sql, diags) = check("SELECT name FROM singerz");
    let d = find(&diags, DiagCode::UnknownTable);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.span.slice(&sql), "singerz");
    assert!(d.hint.as_deref().unwrap().contains("singer"), "{d:?}");
}

#[test]
fn unknown_column_spans_the_column() {
    let (sql, diags) = check("SELECT wrong_col FROM singer");
    let d = find(&diags, DiagCode::UnknownColumn);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.span.slice(&sql), "wrong_col");
}

#[test]
fn unknown_column_hints_nearest_name() {
    let (_, diags) = check("SELECT nme FROM singer");
    let d = find(&diags, DiagCode::UnknownColumn);
    assert!(d.hint.as_deref().unwrap().contains("name"), "{d:?}");
}

#[test]
fn unknown_column_hints_other_table_when_name_is_real() {
    // `venue` is a real column — of concert, not singer; the hint should
    // steer toward the join rather than a rename.
    let (_, diags) = check("SELECT venue FROM singer");
    let d = find(&diags, DiagCode::UnknownColumn);
    assert!(d.hint.as_deref().unwrap().contains("concert"), "{d:?}");
}

#[test]
fn ambiguous_column_spans_the_reference() {
    let (sql, diags) = check(
        "SELECT singer_id FROM singer JOIN concert \
         ON singer.singer_id = concert.singer_id",
    );
    let d = find(&diags, DiagCode::AmbiguousColumn);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.span.slice(&sql), "singer_id");
    // The span is the SELECT item, not the ON references.
    assert_eq!(d.span.start, sql.find("singer_id").unwrap());
    let hint = d.hint.as_deref().unwrap();
    assert!(hint.contains("singer.singer_id") && hint.contains("concert.singer_id"));
}

#[test]
fn duplicate_alias_is_an_error() {
    let (_, diags) = check(
        "SELECT singer.name FROM singer JOIN singer \
         ON singer.singer_id = singer.singer_id",
    );
    let d = find(&diags, DiagCode::DuplicateAlias);
    assert_eq!(d.severity, Severity::Error);
}

#[test]
fn aggregate_in_where_spans_the_call() {
    let (sql, diags) = check("SELECT name FROM singer WHERE COUNT(*) > 1");
    let d = find(&diags, DiagCode::AggregateInWhere);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.span.slice(&sql), "COUNT");
    assert!(d.span.start > sql.find("WHERE").unwrap());
}

#[test]
fn nested_aggregate_spans_the_inner_call() {
    let (sql, diags) = check("SELECT MAX(SUM(age)) FROM singer");
    let d = find(&diags, DiagCode::NestedAggregate);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.span.slice(&sql), "SUM");
}

#[test]
fn misplaced_wildcard_outside_count() {
    // SUM(*) is unrepresentable in the parser's grammar for good reason;
    // build the AST directly.
    let q = Query::select(
        vec![SelectItem::expr(Expr::call(
            Func::Sum,
            vec![Expr::Wildcard],
        ))],
        fisql_sqlkit::ast::FromClause::table("singer"),
    );
    let (sql, diags) = check_ast(&q);
    let d = find(&diags, DiagCode::MisplacedWildcard);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.span.slice(&sql), "*");
}

#[test]
fn select_star_without_from_is_flagged() {
    let q = Query::from_core(SelectCore {
        distinct: false,
        items: vec![SelectItem::Wildcard],
        from: None,
        where_clause: None,
        group_by: Vec::new(),
        having: None,
    });
    let (sql, diags) = check_ast(&q);
    let d = find(&diags, DiagCode::MisplacedWildcard);
    assert_eq!(d.span.slice(&sql), "*");
}

#[test]
fn bad_arity_spans_the_function() {
    let (sql, diags) = check("SELECT SUBSTR(name) FROM singer");
    let d = find(&diags, DiagCode::BadArity);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.span.slice(&sql), "SUBSTR");
}

#[test]
fn extra_argument_is_a_warning() {
    let (sql, diags) = check("SELECT ABS(age, 2) FROM singer");
    let d = find(&diags, DiagCode::ExtraArgument);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.span.slice(&sql), "ABS");
}

#[test]
fn bad_arg_type_on_numeric_aggregate_over_text() {
    let (sql, diags) = check("SELECT SUM(name) FROM singer");
    let d = find(&diags, DiagCode::BadArgType);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.span.slice(&sql), "SUM");
}

#[test]
fn type_mismatch_spans_the_compared_column() {
    let (sql, diags) = check("SELECT name FROM singer WHERE age > 'tall'");
    let d = find(&diags, DiagCode::TypeMismatch);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.span.slice(&sql), "age");
    assert!(d.span.start > sql.find("WHERE").unwrap());
}

#[test]
fn date_column_compares_with_string_literals_cleanly() {
    // Dates are ISO strings in the engine; this must NOT be a mismatch.
    let (_, diags) = check("SELECT venue FROM concert WHERE concert_date >= '2024-01-01'");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn ungrouped_column_spans_the_bare_column() {
    let (sql, diags) = check("SELECT name, COUNT(*) FROM singer GROUP BY country");
    let d = find(&diags, DiagCode::UngroupedColumn);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.span.slice(&sql), "name");
    assert!(d.hint.is_some());
}

#[test]
fn grouped_columns_are_not_flagged() {
    let (_, diags) = check("SELECT country, COUNT(*) FROM singer GROUP BY country");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn having_without_aggregate_is_linted() {
    let mut core = SelectCore::new(
        vec![SelectItem::expr(Expr::col("name"))],
        fisql_sqlkit::ast::FromClause::table("singer"),
    );
    core.having = Some(Expr::binary(
        Expr::col("age"),
        fisql_sqlkit::BinOp::Gt,
        Expr::num(30),
    ));
    let (sql, diags) = check_ast(&Query::from_core(core));
    let d = find(&diags, DiagCode::HavingWithoutAggregate);
    assert_eq!(d.severity, Severity::Warning);
    assert!(sql[d.span.start..d.span.end].contains("HAVING"), "{sql}");
}

#[test]
fn disconnected_join_spans_the_condition_and_hints_fk() {
    let (sql, diags) = check(
        "SELECT singer.name FROM singer JOIN concert \
         ON singer.singer_id = singer.age",
    );
    let d = find(&diags, DiagCode::DisconnectedJoin);
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.span.start > sql.find("ON").unwrap());
    assert_eq!(
        d.hint.as_deref().unwrap(),
        "try ON singer.singer_id = concert.singer_id"
    );
}

#[test]
fn set_op_arity_mismatch_is_an_error() {
    let (sql, diags) = check("SELECT name FROM singer UNION SELECT name, age FROM singer");
    let d = find(&diags, DiagCode::SetOpArity);
    assert_eq!(d.severity, Severity::Error);
    assert!(!d.span.slice(&sql).is_empty());
    assert!(d.message.contains('1') && d.message.contains('2'), "{d:?}");
}

#[test]
fn subquery_arity_flags_wide_in_subqueries() {
    let (sql, diags) = check(
        "SELECT name FROM singer WHERE singer_id IN \
         (SELECT singer_id, concert_id FROM concert)",
    );
    let d = find(&diags, DiagCode::SubqueryArity);
    assert_eq!(d.severity, Severity::Error);
    assert!(!d.span.slice(&sql).is_empty());
}

#[test]
fn order_by_after_set_op_must_name_an_output_column() {
    let (sql, diags) =
        check("SELECT name FROM singer UNION SELECT country FROM singer ORDER BY age");
    let d = find(&diags, DiagCode::OrderByTarget);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.span.slice(&sql), "age");
    assert!(d.span.start > sql.find("ORDER BY").unwrap());
}

#[test]
fn out_of_range_ordinal_in_simple_query_is_a_warning() {
    let (_, diags) = check("SELECT name FROM singer ORDER BY 5");
    let d = find(&diags, DiagCode::OrderByTarget);
    assert_eq!(d.severity, Severity::Warning);
}

#[test]
fn limit_zero_is_linted() {
    let (sql, diags) = check("SELECT name FROM singer LIMIT 0");
    let d = find(&diags, DiagCode::LimitZero);
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.span.slice(&sql).contains("LIMIT"), "{sql}");
}

#[test]
fn order_by_output_alias_resolves() {
    let (_, diags) = check("SELECT COUNT(*) AS n FROM singer GROUP BY country ORDER BY n DESC");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn correlated_subquery_resolves_against_outer_scope() {
    let (_, diags) = check(
        "SELECT name FROM singer WHERE EXISTS \
         (SELECT concert_id FROM concert WHERE concert.singer_id = singer.singer_id)",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn derived_table_columns_resolve_by_alias_and_name() {
    let (_, diags) = check(
        "SELECT s.name FROM (SELECT name, age FROM singer WHERE age > 20) AS s \
         WHERE s.age < 60",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn errors_sort_before_warnings() {
    let (_, diags) = check("SELECT wrong_col FROM singer WHERE age > 'x' LIMIT 0");
    assert!(!diags.is_empty());
    let first_warning = diags.iter().position(|d| !d.is_error());
    let last_error = diags.iter().rposition(|d| d.is_error());
    if let (Some(w), Some(e)) = (first_warning, last_error) {
        assert!(e < w, "{diags:?}");
    }
}
