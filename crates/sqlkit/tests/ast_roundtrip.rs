//! Property tests over *arbitrary* ASTs (not just corpus-generated ones):
//! the printer must emit text the parser maps back to the identical tree,
//! normalization must be idempotent, and spans must cover the rendered
//! text.

use fisql_sqlkit::ast::*;
use fisql_sqlkit::{normalize_query, parse_query, print_query, print_query_spanned};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// AST generators
// ---------------------------------------------------------------------------

fn ident() -> impl Strategy<Value = String> {
    // Identifiers that are not keywords: letter prefix + alnum tail.
    "[a-z][a-z0-9_]{0,8}".prop_filter("not a keyword", |s| {
        fisql_sqlkit::token::Keyword::from_ident(s).is_none() && Func::from_name(s).is_none()
    })
}

fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        any::<i32>().prop_map(|n| Literal::Number(n as i64)),
        (-1000i64..1000, 1u32..100).prop_map(|(n, d)| Literal::Float(n as f64 / d as f64)),
        "[ -~&&[^'\\\\]]{0,12}".prop_map(Literal::String),
        any::<bool>().prop_map(Literal::Bool),
        Just(Literal::Null),
    ]
}

fn column_ref() -> impl Strategy<Value = ColumnRef> {
    (proptest::option::of(ident()), ident()).prop_map(|(t, c)| ColumnRef {
        table: t,
        column: c,
    })
}

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        column_ref().prop_map(Expr::Column),
        literal().prop_map(Expr::Literal),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            // Binary ops.
            (
                inner.clone(),
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Eq),
                    Just(BinOp::NotEq),
                    Just(BinOp::Lt),
                    Just(BinOp::GtEq),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                ],
                inner.clone()
            )
                .prop_map(|(l, op, r)| Expr::binary(l, op, r)),
            // NOT.
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
            }),
            // Aggregate / scalar calls.
            (inner.clone(), any::<bool>()).prop_map(|(e, d)| Expr::Call {
                func: Func::Max,
                distinct: d,
                args: vec![e],
            }),
            inner.clone().prop_map(|e| Expr::call(Func::Abs, vec![e])),
            // IN list.
            (
                inner.clone(),
                proptest::collection::vec(leaf_expr(), 1..4),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated,
                }),
            // BETWEEN.
            (inner.clone(), leaf_expr(), leaf_expr(), any::<bool>()).prop_map(
                |(e, lo, hi, negated)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated,
                }
            ),
            // LIKE.
            (inner.clone(), "[a-z%_]{1,6}", any::<bool>()).prop_map(|(e, pat, negated)| {
                Expr::Like {
                    expr: Box::new(e),
                    pattern: Box::new(Expr::str(pat)),
                    negated,
                }
            }),
            // IS NULL.
            (inner, any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated,
            }),
        ]
    })
}

fn select_item() -> impl Strategy<Value = SelectItem> {
    prop_oneof![
        5 => (arb_expr(), proptest::option::of(ident()))
            .prop_map(|(expr, alias)| SelectItem::Expr { expr, alias }),
        1 => Just(SelectItem::Wildcard),
    ]
}

fn order_item() -> impl Strategy<Value = OrderItem> {
    (column_ref().prop_map(Expr::Column), any::<bool>())
        .prop_map(|(expr, desc)| OrderItem { expr, desc })
}

fn from_clause() -> impl Strategy<Value = FromClause> {
    (
        ident(),
        proptest::option::of(ident()),
        proptest::collection::vec(
            (
                prop_oneof![
                    Just(JoinKind::Inner),
                    Just(JoinKind::Left),
                    Just(JoinKind::Cross)
                ],
                ident(),
                proptest::option::of((column_ref(), column_ref())),
            ),
            0..3,
        ),
    )
        .prop_map(|(base, alias, joins)| FromClause {
            base: TableFactor::Table { name: base, alias },
            joins: joins
                .into_iter()
                .map(|(kind, table, on)| Join {
                    kind,
                    factor: TableFactor::table(table),
                    constraint: on
                        .map(|(a, b)| Expr::binary(Expr::Column(a), BinOp::Eq, Expr::Column(b))),
                })
                .collect(),
        })
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        any::<bool>(),
        proptest::collection::vec(select_item(), 1..4),
        proptest::option::of(from_clause()),
        proptest::option::of(arb_expr()),
        proptest::collection::vec(column_ref().prop_map(Expr::Column), 0..2),
        proptest::option::of(arb_expr()),
        proptest::collection::vec(order_item(), 0..2),
        proptest::option::of((0u64..100, proptest::option::of(0u64..20))),
    )
        .prop_map(
            |(distinct, items, from, where_clause, group_by, having, order_by, limit)| Query {
                core: SelectCore {
                    distinct,
                    items,
                    from,
                    where_clause,
                    having: if group_by.is_empty() { None } else { having },
                    group_by,
                },
                compound: Vec::new(),
                order_by,
                limit: limit.map(|(count, offset)| LimitClause { count, offset }),
            },
        )
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_roundtrip(q in arb_query()) {
        let printed = print_query(&q);
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("printed SQL failed to parse:\n{printed}\n{e}"));
        prop_assert_eq!(&reparsed, &q, "roundtrip mismatch for:\n{}", printed);
    }

    #[test]
    fn normalize_is_idempotent_on_arbitrary_queries(q in arb_query()) {
        let n1 = normalize_query(&q);
        let n2 = normalize_query(&n1);
        prop_assert_eq!(n1, n2);
    }

    #[test]
    fn normalized_queries_still_roundtrip(q in arb_query()) {
        let n = normalize_query(&q);
        let printed = print_query(&n);
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("normalized SQL failed to parse:\n{printed}\n{e}"));
        prop_assert_eq!(normalize_query(&reparsed), n);
    }

    #[test]
    fn spans_are_in_bounds_and_resolvable(q in arb_query()) {
        let spanned = print_query_spanned(&q);
        for (path, span) in &spanned.spans {
            prop_assert!(span.end <= spanned.text.len(), "span {path} out of bounds");
            prop_assert!(span.start <= span.end);
            // Every recorded span resolves back to *some* clause.
            if !span.is_empty() {
                prop_assert!(spanned.clause_at(*span).is_some());
            }
        }
    }

    #[test]
    fn expr_printer_roundtrips(e in arb_expr()) {
        let printed = fisql_sqlkit::print_expr(&e);
        let reparsed = fisql_sqlkit::parse_expr(&printed)
            .unwrap_or_else(|err| panic!("printed expr failed to parse:\n{printed}\n{err}"));
        prop_assert_eq!(&reparsed, &e, "expr roundtrip mismatch for: {}", printed);
    }

    #[test]
    fn diff_of_identical_queries_is_empty(q in arb_query()) {
        prop_assert!(fisql_sqlkit::diff_queries(&q, &q).is_empty());
    }

    #[test]
    fn lexer_never_panics_on_arbitrary_input(s in "\\PC{0,64}") {
        let _ = fisql_sqlkit::lexer::lex(&s);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,64}") {
        let _ = parse_query(&s);
    }

    #[test]
    fn parser_never_panics_on_sqlish_input(
        s in "(SELECT|FROM|WHERE|JOIN|ON|AND|OR|NOT|IN|LIKE|GROUP BY|ORDER BY|LIMIT|[a-z]{1,4}|[0-9]{1,3}|'[a-z]{0,3}'|[(),.*=<>]| ){1,24}"
    ) {
        let _ = parse_query(&s);
    }
}
