//! Natural-language explanation and reformulation generation.
//!
//! The paper's Assistant returns, alongside the execution result, (b) a
//! reformulation of the user query — the Assistant's understanding — and
//! (c) a step-by-step explanation of the SQL (Figure 4: "First, consider
//! all the segments. Then, keep only those segments that were created
//! after 2023-01-01 …"). Both are part of the observable surface the user
//! grounds feedback on.

use fisql_sqlkit::ast::*;
use fisql_sqlkit::print_expr;

/// Generates the Figure 4-style step-by-step explanation of `query`.
pub fn explain_query(query: &Query) -> String {
    let mut steps: Vec<String> = Vec::new();
    let core = &query.core;

    if let Some(from) = &core.from {
        steps.push(format!(
            "First, consider all the {}.",
            pluralize(&humanize(from.base.binding_name()))
        ));
        for join in &from.joins {
            let mut s = format!(
                "Combine them with the {} table",
                humanize(join.factor.binding_name())
            );
            if let Some(on) = &join.constraint {
                s.push_str(&format!(" where {}", humanize_expr(on)));
            }
            s.push('.');
            steps.push(s);
        }
    }
    if let Some(w) = &core.where_clause {
        for conj in w.conjuncts() {
            steps.push(format!(
                "Then, keep only those rows where {}.",
                humanize_expr(conj)
            ));
        }
    }
    if !core.group_by.is_empty() {
        steps.push(format!(
            "Group the rows by {}.",
            core.group_by
                .iter()
                .map(|e| humanize(&print_expr(e)))
                .collect::<Vec<_>>()
                .join(" and ")
        ));
    }
    if let Some(h) = &core.having {
        steps.push(format!("Keep only the groups where {}.", humanize_expr(h)));
    }
    // Projection step.
    let proj = describe_projection(core);
    steps.push(format!("Finally, {proj}."));

    if !query.order_by.is_empty() {
        let o = &query.order_by[0];
        steps.push(format!(
            "Sort the results by {} in {} order.",
            humanize(&print_expr(&o.expr)),
            if o.desc { "descending" } else { "ascending" }
        ));
    }
    if let Some(l) = &query.limit {
        steps.push(format!("Keep only the first {} row(s).", l.count));
    }
    if !query.compound.is_empty() {
        steps.push(format!(
            "Combine with {} additional result set(s).",
            query.compound.len()
        ));
    }

    steps
        .iter()
        .map(|s| format!("- {s}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Generates the one-line reformulation ("Finds the count of segments
/// created in January 2023.").
pub fn reformulate(query: &Query) -> String {
    let core = &query.core;
    let what = describe_projection(core);
    let table = core
        .from
        .as_ref()
        .map(|f| pluralize(&humanize(f.base.binding_name())))
        .unwrap_or_else(|| "values".to_string());
    let mut s = format!("{} from the {table}", capitalize(&what));
    if let Some(w) = &core.where_clause {
        let conds: Vec<String> = w.conjuncts().iter().map(|c| humanize_expr(c)).collect();
        s.push_str(&format!(" where {}", conds.join(" and ")));
    }
    s.push('.');
    s
}

fn describe_projection(core: &SelectCore) -> String {
    let parts: Vec<String> = core
        .items
        .iter()
        .map(|item| match item {
            SelectItem::Wildcard => "all columns".to_string(),
            SelectItem::QualifiedWildcard(t) => format!("all {} columns", humanize(t)),
            SelectItem::Expr { expr, .. } => match expr {
                Expr::Call {
                    func,
                    args,
                    distinct,
                } => {
                    let arg = args
                        .first()
                        .map(|a| match a {
                            Expr::Wildcard => "rows".to_string(),
                            other => humanize(&print_expr(other)),
                        })
                        .unwrap_or_else(|| "rows".to_string());
                    let d = if *distinct { "distinct " } else { "" };
                    match func {
                        Func::Count => format!("count of {d}{arg}"),
                        Func::Sum => format!("total {arg}"),
                        Func::Avg => format!("average {arg}"),
                        Func::Min => format!("minimum {arg}"),
                        Func::Max => format!("maximum {arg}"),
                        other => format!("{} of {arg}", other.as_str().to_lowercase()),
                    }
                }
                other => humanize(&print_expr(other)),
            },
        })
        .collect();
    format!("return the {}", parts.join(", "))
}

fn humanize_expr(e: &Expr) -> String {
    humanize(&print_expr(e))
}

fn humanize(ident: &str) -> String {
    ident.replace('_', " ")
}

fn pluralize(noun: &str) -> String {
    if noun.ends_with('s') {
        noun.to_string()
    } else {
        format!("{noun}s")
    }
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisql_sqlkit::parse_query;

    #[test]
    fn figure4_style_explanation() {
        let q = parse_query(
            "SELECT COUNT(*) FROM hkg_dim_segment \
             WHERE createdTime >= '2023-01-01' AND createdTime < '2023-02-01'",
        )
        .unwrap();
        let text = explain_query(&q);
        assert!(
            text.contains("First, consider all the hkg dim segments."),
            "{text}"
        );
        assert!(text.contains("createdTime >= '2023-01-01'"), "{text}");
        assert!(text.contains("count of rows"), "{text}");
    }

    #[test]
    fn explanation_covers_joins_groups_order_limit() {
        let q = parse_query(
            "SELECT country, COUNT(*) FROM singer JOIN concert ON singer.singer_id = concert.singer_id \
             WHERE age > 30 GROUP BY country HAVING COUNT(*) > 2 ORDER BY country ASC LIMIT 3",
        )
        .unwrap();
        let text = explain_query(&q);
        for needle in [
            "Combine them with the concert table",
            "keep only those rows where age > 30",
            "Group the rows by country",
            "groups where COUNT(*) > 2",
            "ascending order",
            "first 3 row(s)",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn reformulation_is_single_sentence() {
        let q = parse_query("SELECT COUNT(*) FROM singer WHERE age > 30").unwrap();
        let r = reformulate(&q);
        assert!(r.starts_with("Return the count of rows"), "{r}");
        assert!(r.ends_with('.'));
        assert!(r.contains("age > 30"));
    }

    #[test]
    fn wildcard_projection_described() {
        let q = parse_query("SELECT * FROM singer").unwrap();
        assert!(explain_query(&q).contains("all columns"));
    }
}
