//! Write-ahead run journal: crash-safe persistence for per-case verdicts.
//!
//! The evaluation runner appends one record per finished case *before*
//! that case's outcome is merged into the report, so a killed process
//! loses at most the cases that were mid-flight. A resumed run replays
//! the journal, skips every recorded case, and — because per-case work
//! is pure and order-independent (see [`crate::runner`]) — produces a
//! report bit-identical to an uninterrupted run at any worker count.
//!
//! # On-disk format
//!
//! ```text
//! header:  magic "FJNL" | version u32 LE | fingerprint u64 LE | n_cases u64 LE
//! record:  body_len u32 LE | fnv1a32(body) u32 LE | body
//! body:    case_idx u64 LE | serde_json payload
//! ```
//!
//! The fingerprint binds a journal to one experiment: configuration
//! (minus the worker count, which never affects the report) plus a
//! digest of the case set. Resuming against a journal written by a
//! different experiment is refused rather than silently merged.
//!
//! Records are self-checking: opening a journal validates each record's
//! length and checksum in order and truncates the file at the first
//! invalid byte — a torn tail from a crash mid-append costs exactly the
//! cases after the intact prefix, never the whole file.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::str::FromStr;

/// The four magic bytes opening every journal file.
pub const MAGIC: [u8; 4] = *b"FJNL";

/// On-disk format version.
pub const VERSION: u32 = 1;

/// Fixed header length in bytes: magic + version + fingerprint + n_cases.
pub const HEADER_LEN: usize = 4 + 4 + 8 + 8;

/// Records longer than this are treated as torn (a crash can leave an
/// arbitrary length field; no real verdict payload approaches this).
const MAX_RECORD_LEN: usize = 16 << 20;

/// Under [`FsyncPolicy::Batch`], sync after this many appends.
const BATCH_EVERY: usize = 32;

/// When (and whether) journal appends are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Never fsync — fastest; a power loss may drop buffered records
    /// (the checksummed framing still recovers the intact prefix).
    Never,
    /// Fsync after every record — maximum durability, slowest.
    EachRecord,
    /// Fsync every [`BATCH_EVERY`] records and once at the end of the
    /// run — the default durability/throughput trade-off.
    #[default]
    Batch,
}

impl FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "never" => Ok(FsyncPolicy::Never),
            "each" => Ok(FsyncPolicy::EachRecord),
            "batch" => Ok(FsyncPolicy::Batch),
            other => Err(format!(
                "unknown fsync policy {other:?} (expected never, each, or batch)"
            )),
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FsyncPolicy::Never => "never",
            FsyncPolicy::EachRecord => "each",
            FsyncPolicy::Batch => "batch",
        })
    }
}

/// An append-only, checksummed journal of per-case outcome records.
///
/// Generic over the payload (the runner journals
/// [`crate::runner::CaseOutcome`]); any serde-serializable type works,
/// which keeps the format unit-testable in isolation.
#[derive(Debug)]
pub struct RunJournal {
    file: File,
    policy: FsyncPolicy,
    appended_since_sync: usize,
}

impl RunJournal {
    /// Creates (or truncates) the journal at `path` and writes its
    /// header. The header is flushed immediately under any policy other
    /// than [`FsyncPolicy::Never`], so a resumable file exists on disk
    /// before the first case finishes.
    pub fn create(
        path: &Path,
        fingerprint: u64,
        n_cases: u64,
        policy: FsyncPolicy,
    ) -> io::Result<RunJournal> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&fingerprint.to_le_bytes());
        header.extend_from_slice(&n_cases.to_le_bytes());
        file.write_all(&header)?;
        let mut journal = RunJournal {
            file,
            policy,
            appended_since_sync: 0,
        };
        journal.sync()?;
        Ok(journal)
    }

    /// Opens an existing journal for resumption: validates the header
    /// against this run's `fingerprint` and `n_cases`, decodes every
    /// intact record in order, truncates any torn or corrupt tail, and
    /// returns the journal positioned for further appends together with
    /// the recovered `(case_idx, payload)` records.
    ///
    /// A fingerprint or case-count mismatch is an error — the journal
    /// belongs to a different experiment and resuming from it would
    /// silently corrupt the report.
    pub fn open_resume<T: serde::de::DeserializeOwned>(
        path: &Path,
        fingerprint: u64,
        n_cases: u64,
        policy: FsyncPolicy,
    ) -> io::Result<(RunJournal, Vec<(u64, T)>)> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.len() < HEADER_LEN {
            return Err(invalid("journal shorter than its header"));
        }
        if bytes[..4] != MAGIC {
            return Err(invalid("not a FISQL run journal (bad magic)"));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(invalid(&format!(
                "journal format version {version} (this build reads {VERSION})"
            )));
        }
        let found_fp = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        if found_fp != fingerprint {
            return Err(invalid(&format!(
                "journal fingerprint {found_fp:#018x} does not match this run \
                 ({fingerprint:#018x}) — refusing to resume a different experiment"
            )));
        }
        let found_n = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        if found_n != n_cases {
            return Err(invalid(&format!(
                "journal was written for {found_n} cases, this run has {n_cases}"
            )));
        }

        let mut records = Vec::new();
        let mut offset = HEADER_LEN;
        while bytes.len() - offset >= 8 {
            let body_len =
                u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
            let checksum = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
            if !(8..=MAX_RECORD_LEN).contains(&body_len) || offset + 8 + body_len > bytes.len() {
                break; // torn tail
            }
            let body = &bytes[offset + 8..offset + 8 + body_len];
            if fnv1a_32(body) != checksum {
                break; // corrupt record: keep the intact prefix only
            }
            let case_idx = u64::from_le_bytes(body[..8].try_into().unwrap());
            let Ok(payload) = serde_json::from_slice::<T>(&body[8..]) else {
                break;
            };
            records.push((case_idx, payload));
            offset += 8 + body_len;
        }

        // Drop everything past the last intact record so future appends
        // start from a clean end-of-file.
        file.set_len(offset as u64)?;
        file.seek(SeekFrom::End(0))?;
        Ok((
            RunJournal {
                file,
                policy,
                appended_since_sync: 0,
            },
            records,
        ))
    }

    /// Appends one record. Flushes according to the configured
    /// [`FsyncPolicy`].
    pub fn append<T: serde::Serialize>(&mut self, case_idx: u64, payload: &T) -> io::Result<()> {
        let json = serde_json::to_vec(payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let mut body = Vec::with_capacity(8 + json.len());
        body.extend_from_slice(&case_idx.to_le_bytes());
        body.extend_from_slice(&json);
        let mut frame = Vec::with_capacity(8 + body.len());
        frame.extend_from_slice(
            &u32::try_from(body.len())
                .expect("record fits u32")
                .to_le_bytes(),
        );
        frame.extend_from_slice(&fnv1a_32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        self.file.write_all(&frame)?;
        self.appended_since_sync += 1;
        match self.policy {
            FsyncPolicy::Never => {}
            FsyncPolicy::EachRecord => self.sync()?,
            FsyncPolicy::Batch => {
                if self.appended_since_sync >= BATCH_EVERY {
                    self.sync()?;
                }
            }
        }
        Ok(())
    }

    /// Flushes pending appends to stable storage (no-op under
    /// [`FsyncPolicy::Never`]). The runner calls this once after the
    /// last case so a clean shutdown is always fully durable under
    /// [`FsyncPolicy::Batch`].
    pub fn sync(&mut self) -> io::Result<()> {
        if self.policy == FsyncPolicy::Never {
            return Ok(());
        }
        self.appended_since_sync = 0;
        self.file.sync_data()
    }
}

fn invalid(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}

/// 32-bit FNV-1a over `bytes` — the per-record checksum.
pub fn fnv1a_32(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Incremental 64-bit FNV-1a hasher — the run fingerprint.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::path::PathBuf;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Payload {
        v: u64,
        s: String,
    }

    fn payload(i: u64) -> Payload {
        Payload {
            v: i * 7,
            s: format!("record-{i}"),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("fisql-journal-{}-{name}.fjnl", std::process::id()))
    }

    fn write_three(path: &std::path::Path, policy: FsyncPolicy) {
        let mut j = RunJournal::create(path, 0xFEED, 3, policy).unwrap();
        for i in 0..3 {
            j.append(i, &payload(i)).unwrap();
        }
        j.sync().unwrap();
    }

    #[test]
    fn roundtrip_create_append_reopen() {
        let path = tmp("roundtrip");
        write_three(&path, FsyncPolicy::EachRecord);
        let (_, records): (_, Vec<(u64, Payload)>) =
            RunJournal::open_resume(&path, 0xFEED, 3, FsyncPolicy::Batch).unwrap();
        assert_eq!(records.len(), 3);
        for (i, (idx, p)) in records.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(p, &payload(i as u64));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn appends_after_resume_extend_the_journal() {
        let path = tmp("extend");
        write_three(&path, FsyncPolicy::Batch);
        let (mut j, records): (_, Vec<(u64, Payload)>) =
            RunJournal::open_resume(&path, 0xFEED, 3, FsyncPolicy::Batch).unwrap();
        assert_eq!(records.len(), 3);
        drop(records);
        j.append(3, &payload(3)).unwrap();
        j.sync().unwrap();
        drop(j);
        let (_, records): (_, Vec<(u64, Payload)>) =
            RunJournal::open_resume(&path, 0xFEED, 3, FsyncPolicy::Batch).unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(records[3], (3, payload(3)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_and_case_count_mismatches_are_refused() {
        let path = tmp("mismatch");
        write_three(&path, FsyncPolicy::Never);
        let wrong_fp =
            RunJournal::open_resume::<Payload>(&path, 0xBAD, 3, FsyncPolicy::Batch).unwrap_err();
        assert!(wrong_fp.to_string().contains("fingerprint"), "{wrong_fp}");
        let wrong_n =
            RunJournal::open_resume::<Payload>(&path, 0xFEED, 4, FsyncPolicy::Batch).unwrap_err();
        assert!(wrong_n.to_string().contains("cases"), "{wrong_n}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_to_the_intact_prefix() {
        let path = tmp("torn");
        write_three(&path, FsyncPolicy::Never);
        // Simulate a crash mid-append: a frame header promising more
        // bytes than the file holds.
        let mut bytes = std::fs::read(&path).unwrap();
        let intact_len = bytes.len();
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.extend_from_slice(&[0xAB; 7]);
        std::fs::write(&path, &bytes).unwrap();
        let (_, records): (_, Vec<(u64, Payload)>) =
            RunJournal::open_resume(&path, 0xFEED, 3, FsyncPolicy::Batch).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            intact_len as u64,
            "torn tail should be truncated away"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_keeps_only_the_prefix_before_it() {
        let path = tmp("corrupt");
        write_three(&path, FsyncPolicy::Never);
        // Flip a byte inside the *last* record's body: the first two
        // records are intact and must survive.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, records): (_, Vec<(u64, Payload)>) =
            RunJournal::open_resume(&path, 0xFEED, 3, FsyncPolicy::Batch).unwrap();
        assert_eq!(records.len(), 2, "intact prefix before the corrupt record");
        assert_eq!(records[1], (1, payload(1)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_journal_resumes_with_no_records() {
        let path = tmp("empty");
        drop(RunJournal::create(&path, 1, 10, FsyncPolicy::Batch).unwrap());
        let (_, records): (_, Vec<(u64, Payload)>) =
            RunJournal::open_resume(&path, 1, 10, FsyncPolicy::Batch).unwrap();
        assert!(records.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_policy_parses_from_flag_values() {
        assert_eq!("never".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Never);
        assert_eq!(
            "Each".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::EachRecord
        );
        assert_eq!("batch".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Batch);
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
    }
}
