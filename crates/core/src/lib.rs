//! # fisql-core
//!
//! FISQL — Feedback-Infused SQL generation (Menon et al., EDBT 2025) —
//! the paper's primary contribution: an interactive human-in-the-loop
//! NL2SQL correction pipeline.
//!
//! - [`assistant`]: the NL2SQL front end (§3.2) returning execution
//!   result, reformulation, step-by-step explanation, and SQL.
//! - [`interpret`]: grounding natural-language feedback onto clause-level
//!   edits of the previous query.
//! - [`pipeline`]: the two-step feedback incorporation (§3.3) with the
//!   routing and highlighting switches, plus the Query Rewrite baseline.
//! - [`refine`]: incremental query building (§5 future work).
//! - [`session`]: the chat surface (Figures 3-4).
//! - [`experiment`]: drivers regenerating the paper's evaluation (§4).
//! - [`runner`]: the parallel, sharded evaluation runner behind the
//!   [`CorrectionRun`] builder — bit-identical reports at any worker
//!   count, with per-case panic isolation and an optional stall
//!   watchdog.
//! - [`journal`]: the crash-safe write-ahead run journal that makes
//!   killed evaluations resumable without changing their reports.
//! - [`config`]: typed, validated configuration for the `fisql` entry
//!   points (`--eval`, `serve`, `load`).
//! - [`serve`]: the long-lived multi-session daemon — wire protocol,
//!   admission control, journal-backed session store, server, client,
//!   and deterministic load generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod assistant;
pub mod config;
pub mod experiment;
pub mod explain;
pub mod interpret;
mod isolate;
pub mod journal;
pub mod pipeline;
pub mod refine;
pub mod runner;
pub mod semcache;
pub mod serve;
pub mod session;

pub use analysis::{analyze_round, ErrorAnalysis, FailureCause};
pub use assistant::{Assistant, AssistantTurn};
pub use config::{chaos_stack, ConfigError, EvalConfig, LoadConfig, ServeConfig};
pub use experiment::{zero_shot_report, AnnotatedCase, CorrectionReport, ErrorCase};
pub use explain::{explain_query, reformulate};
pub use interpret::{interpret, interpret_candidates, Candidate, Interpretation};
pub use journal::{FsyncPolicy, RunJournal};
pub use pipeline::{
    gate_candidate, incorporate, try_incorporate, ConformanceReport, GateOutcome,
    IncorporateContext, IncorporateOutcome, SearchReport, Strategy,
};
pub use refine::{QueryBuilder, RefineError, RefineStep};
pub use runner::{
    run_fingerprint, workers_from_env, CaseOutcome, CaseVerdict, CorrectionRun, ExperimentConfig,
    RunMetrics,
};
pub use semcache::{CacheStats, SemanticCache};
pub use serve::{
    run_chaos, run_load, ChaosBehavior, ChaosConfig, ChaosReport, ClientTurn, Connected,
    LoadReport, ServeClient, ServeSummary, Server, ServerHandle, ServerStats, SessionStore,
    StoreOptions,
};
pub use session::{render_events, Session, SessionEvent};
