//! Feedback interpretation: mapping a natural-language feedback utterance
//! onto clause-level edits of the previous SQL query.
//!
//! This is the understanding half of FISQL's §3.3 pipeline. The utterance
//! is parsed with generic machinery — entity linking against the schema,
//! literal extraction, keyword cues — *not* by inverting the simulated
//! user's templates, so vague feedback genuinely is harder to ground than
//! specific feedback:
//!
//! 1. tokenize; extract years, numbers, quoted strings, direction words;
//! 2. link mentions to schema tables/columns (longest-match, plural-
//!    tolerant);
//! 3. generate candidate edits against the predicted query's clauses;
//! 4. filter by the routed feedback type (when routing is enabled) and by
//!    the user's highlight (when present);
//! 5. choose: a unique candidate is applied; ambiguity forces a sampled
//!    choice (which can be wrong); zero candidates is an interpretation
//!    failure — the paper's error cause (b).

use fisql_engine::Database;
use fisql_sqlkit::ast::*;
use fisql_sqlkit::{parse_expr, print_query_spanned, EditOp, OpClass, Span};
use rand::Rng;

/// One candidate interpretation.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The edits to apply (usually one; the year-shift pattern needs
    /// several).
    pub edits: Vec<EditOp>,
    /// The feedback class this candidate embodies.
    pub class: OpClass,
    /// A short label for diagnostics.
    pub label: &'static str,
}

/// The interpretation outcome.
#[derive(Debug, Clone)]
pub struct Interpretation {
    /// Chosen edits (empty = interpretation failure).
    pub edits: Vec<EditOp>,
    /// How many candidates survived filtering (diagnostics: 0 = failure,
    /// 1 = grounded, >1 = ambiguous, resolved by sampling).
    pub candidates: usize,
    /// Label of the chosen candidate.
    pub label: &'static str,
}

/// Interprets `text` against `predicted` (which must be normalized — the
/// pipeline normalizes before diffing/editing).
///
/// `routed` is the classified feedback type (None for the −Routing
/// ablation); `highlight` is the user's optional span over the rendered
/// predicted SQL.
pub fn interpret(
    text: &str,
    predicted: &Query,
    db: &Database,
    routed: Option<OpClass>,
    highlight: Option<Span>,
    rng: &mut impl Rng,
) -> Interpretation {
    let mut candidates = interpret_candidates(text, predicted, db, routed, highlight);
    match candidates.len() {
        0 => Interpretation {
            edits: vec![],
            candidates: 0,
            label: "none",
        },
        n => {
            let pick = if n == 1 { 0 } else { rng.gen_range(0..n) };
            let chosen = candidates.swap_remove(pick);
            Interpretation {
                edits: chosen.edits,
                candidates: n,
                label: chosen.label,
            }
        }
    }
}

/// Builds the full filtered candidate pool for `text` against
/// `predicted`, without sampling: cue extraction, candidate generation,
/// then the routing and highlight filters (each applied only when it
/// leaves at least one survivor).
///
/// [`interpret`] samples one candidate from this pool; the search-refine
/// strategy instead keeps the whole pool and scores every member
/// statically.
pub fn interpret_candidates(
    text: &str,
    predicted: &Query,
    db: &Database,
    routed: Option<OpClass>,
    highlight: Option<Span>,
) -> Vec<Candidate> {
    let cues = Cues::extract(text, predicted, db);
    let mut candidates = generate_candidates(&cues, predicted, db);

    // Routing filter: keep type-consistent candidates when any survive.
    if let Some(class) = routed {
        let filtered: Vec<Candidate> = candidates
            .iter()
            .filter(|c| c.class == class)
            .cloned()
            .collect();
        if !filtered.is_empty() {
            candidates = filtered;
        }
    }

    // Highlight filter: keep candidates touching the highlighted clause.
    if let Some(hl) = highlight {
        let spanned = print_query_spanned(predicted);
        if let Some(target) = spanned.clause_at(hl).cloned() {
            let filtered: Vec<Candidate> = candidates
                .iter()
                .filter(|c| {
                    c.edits
                        .iter()
                        .any(|e| clause_compatible(&e.clause(), &target))
                })
                .cloned()
                .collect();
            if !filtered.is_empty() {
                candidates = filtered;
            }
        }
    }
    candidates
}

/// Two clause paths are compatible when equal or when one is the WHERE
/// umbrella of the other (a predicate highlight grounds a WHERE edit).
fn clause_compatible(a: &ClausePath, b: &ClausePath) -> bool {
    if a == b {
        return true;
    }
    let where_ish = |c: &ClausePath| matches!(c, ClausePath::Where | ClausePath::WherePredicate(_));
    let select_ish =
        |c: &ClausePath| matches!(c, ClausePath::SelectList | ClausePath::SelectItem(_));
    let from_ish = |c: &ClausePath| matches!(c, ClausePath::From | ClausePath::Join(_));
    (where_ish(a) && where_ish(b))
        || (select_ish(a) && select_ish(b))
        || (from_ish(a) && from_ish(b))
}

// ---------------------------------------------------------------------------
// Cue extraction
// ---------------------------------------------------------------------------

/// Everything the interpreter could extract from the utterance.
#[derive(Debug, Clone)]
struct Cues {
    /// Original-case text (string literals must keep their case).
    raw: String,
    lower: String,
    years: Vec<i64>,
    numbers: Vec<i64>,
    /// Decimal values mentioned ("49.21").
    floats: Vec<f64>,
    quoted: Vec<String>,
    /// Columns mentioned, linked to `(table, column)` pairs from tables
    /// in the predicted query first, then the whole schema.
    columns: Vec<(String, String)>,
    /// Tables mentioned.
    tables: Vec<String>,
    ascending: bool,
    descending: bool,
}

impl Cues {
    fn extract(text: &str, predicted: &Query, db: &Database) -> Cues {
        let lower = text.to_lowercase();
        let mut years = Vec::new();
        let mut numbers = Vec::new();
        let mut floats = Vec::new();
        // Numeric tokens, keeping interior dots so decimals survive
        // ("49.21" is one float, not two integers).
        for token in lower.split(|c: char| !c.is_ascii_digit() && c != '.') {
            let token = token.trim_matches('.');
            if token.is_empty() {
                continue;
            }
            if let Ok(n) = token.parse::<i64>() {
                if (1900..=2100).contains(&n) && token.len() == 4 {
                    years.push(n);
                } else {
                    numbers.push(n);
                }
            } else if let Ok(x) = token.parse::<f64>() {
                floats.push(x);
            }
        }
        let quoted: Vec<String> = extract_quoted(text);

        // Column linking: longest humanized names first so "song name"
        // wins over "name".
        let query_tables = predicted.all_table_names();
        let mut all_cols: Vec<(String, String, String)> = Vec::new(); // (table, column, humanized)
        for t in &db.tables {
            let in_query = query_tables.iter().any(|n| n.eq_ignore_ascii_case(&t.name));
            for c in &t.columns {
                let human = c.name.replace('_', " ").to_lowercase();
                // Columns of tables in the query get priority via a sort
                // key below; others remain linkable (the user may name a
                // column the query *should* use).
                all_cols.push((
                    t.name.clone(),
                    c.name.clone(),
                    format!("{}{human}", if in_query { "" } else { "\u{1}" }),
                ));
            }
        }
        all_cols.sort_by(|a, b| {
            b.2.trim_start_matches('\u{1}')
                .len()
                .cmp(&a.2.trim_start_matches('\u{1}').len())
                .then(a.2.cmp(&b.2))
        });
        let mut masked = lower.clone();
        let mut columns = Vec::new();
        for (table, column, keyed) in &all_cols {
            let human = keyed.trim_start_matches('\u{1}');
            if human.len() < 3 {
                continue;
            }
            if let Some(pos) = find_word(&masked, human) {
                // Mask the matched region so substrings don't re-match.
                masked.replace_range(pos..pos + human.len(), &"\u{2}".repeat(human.len()));
                columns.push((table.clone(), column.clone()));
            } else if let Some(pos) = find_word(&masked, &format!("{human}s")) {
                masked.replace_range(pos..=(pos + human.len()), &"\u{2}".repeat(human.len() + 1));
                columns.push((table.clone(), column.clone()));
            }
        }

        let mut tables = Vec::new();
        for t in &db.tables {
            let human = t.name.replace('_', " ").to_lowercase();
            if find_word(&lower, &human).is_some()
                || find_word(&lower, &format!("{human}s")).is_some()
            {
                tables.push(t.name.clone());
            }
        }

        Cues {
            ascending: lower.contains("ascending") || lower.contains(" asc"),
            descending: lower.contains("descending") || lower.contains(" desc"),
            raw: text.to_string(),
            lower,
            years,
            numbers,
            floats,
            quoted,
            columns,
            tables,
        }
    }

    fn has(&self, cue: &str) -> bool {
        self.lower.contains(cue)
    }
}

fn extract_quoted(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find('\'') {
        let after = &rest[start + 1..];
        match after.find('\'') {
            Some(end) => {
                out.push(after[..end].to_string());
                rest = &after[end + 1..];
            }
            None => break,
        }
    }
    out
}

/// Finds `needle` in `haystack` at word boundaries.
fn find_word(haystack: &str, needle: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = haystack[from..].find(needle) {
        let pos = from + rel;
        let before_ok = pos == 0 || !haystack.as_bytes()[pos - 1].is_ascii_alphanumeric();
        let end = pos + needle.len();
        let after_ok = end >= haystack.len() || !haystack.as_bytes()[end].is_ascii_alphanumeric();
        if before_ok && after_ok {
            return Some(pos);
        }
        from = pos + 1;
        if from >= haystack.len() {
            break;
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Candidate generation
// ---------------------------------------------------------------------------

fn generate_candidates(cues: &Cues, predicted: &Query, db: &Database) -> Vec<Candidate> {
    let mut out: Vec<Candidate> = Vec::new();
    let conjuncts: Vec<Expr> = predicted
        .core
        .where_clause
        .as_ref()
        .map(|w| w.conjuncts().into_iter().cloned().collect())
        .unwrap_or_default();

    // --- Year shift -------------------------------------------------------
    if let Some(&year) = cues.years.first() {
        let mut edits = Vec::new();
        for (i, c) in conjuncts.iter().enumerate() {
            if let Some(replaced) = shift_years_in_expr(c, year) {
                edits.push(EditOp::ReplacePredicate {
                    index: i,
                    from: c.clone(),
                    to: replaced,
                });
            }
        }
        if !edits.is_empty() {
            out.push(Candidate {
                edits,
                class: OpClass::Edit,
                label: "year-shift",
            });
        }
    }

    // --- "X instead of Y" replacements -------------------------------------
    if cues.has("instead of") {
        // Column replacement in SELECT.
        let select_cols: Vec<(usize, &ColumnRef)> = predicted
            .core
            .items
            .iter()
            .enumerate()
            .filter_map(|(i, item)| match item {
                SelectItem::Expr {
                    expr: Expr::Column(c),
                    ..
                } => Some((i, c)),
                _ => None,
            })
            .collect();
        let mentioned_in_select: Vec<&(String, String)> = cues
            .columns
            .iter()
            .filter(|(_, col)| {
                select_cols
                    .iter()
                    .any(|(_, c)| c.column.eq_ignore_ascii_case(col))
            })
            .collect();
        let mentioned_outside: Vec<&(String, String)> = cues
            .columns
            .iter()
            .filter(|(_, col)| {
                !select_cols
                    .iter()
                    .any(|(_, c)| c.column.eq_ignore_ascii_case(col))
            })
            .collect();
        if let (Some((_, old_col)), Some((new_table, new_col))) =
            (mentioned_in_select.first(), mentioned_outside.first())
        {
            if let Some((idx, old_ref)) = select_cols
                .iter()
                .find(|(_, c)| c.column.eq_ignore_ascii_case(old_col))
            {
                let new_ref = if old_ref.table.is_some() {
                    ColumnRef::qualified(new_table.clone(), new_col.clone())
                } else {
                    ColumnRef::bare(new_col.clone())
                };
                out.push(Candidate {
                    edits: vec![EditOp::ReplaceSelectItem {
                        index: *idx,
                        from: predicted.core.items[*idx].clone(),
                        to: SelectItem::expr(Expr::Column(new_ref)),
                    }],
                    class: OpClass::Edit,
                    label: "select-replace",
                });
            }
        }
        // Table replacement.
        let q_tables = predicted.all_table_names();
        let old_t = cues
            .tables
            .iter()
            .find(|t| q_tables.iter().any(|q| q.eq_ignore_ascii_case(t)));
        let new_t = cues
            .tables
            .iter()
            .find(|t| !q_tables.iter().any(|q| q.eq_ignore_ascii_case(t)));
        if let (Some(old_t), Some(new_t)) = (old_t, new_t) {
            out.push(Candidate {
                edits: vec![EditOp::ReplaceTable {
                    from: old_t.clone(),
                    to: new_t.clone(),
                }],
                class: OpClass::Edit,
                label: "table-replace",
            });
        }
    }

    // --- Bare table redirection ("that information lives in X") -----------
    if (cues.has("lives in")
        || cues.has("look in")
        || cues.has("use the")
        || cues.has("wrong table"))
        && !cues.tables.is_empty()
    {
        let q_tables = predicted.all_table_names();
        if let Some(new_t) = cues
            .tables
            .iter()
            .find(|t| !q_tables.iter().any(|q| q.eq_ignore_ascii_case(t)))
        {
            if let Some(from) = q_tables.first() {
                out.push(Candidate {
                    edits: vec![EditOp::ReplaceTable {
                        from: from.clone(),
                        to: new_t.clone(),
                    }],
                    class: OpClass::Edit,
                    label: "table-redirect",
                });
            }
        }
    }

    // --- Removals -----------------------------------------------------------
    let removing = cues.has("do not")
        || cues.has("don't")
        || cues.has("no need")
        || cues.has("remove")
        || cues.has("without")
        || cues.has("omit")
        || cues.has("keep all");
    if removing {
        // Remove a select item by mentioned column.
        for (table, col) in &cues.columns {
            let _ = table;
            if let Some(idx) = predicted.core.items.iter().position(|item| {
                matches!(item, SelectItem::Expr { expr: Expr::Column(c), .. }
                    if c.column.eq_ignore_ascii_case(col))
            }) {
                out.push(Candidate {
                    edits: vec![EditOp::RemoveSelectItem {
                        index: idx,
                        item: predicted.core.items[idx].clone(),
                    }],
                    class: OpClass::Remove,
                    label: "select-remove",
                });
            }
            // Remove a predicate by mentioned column.
            if cues.has("filter") || cues.has("condition") || cues.has("only") || removing {
                if let Some(idx) = conjuncts.iter().position(|c| {
                    c.columns()
                        .iter()
                        .any(|cr| cr.column.eq_ignore_ascii_case(col))
                }) {
                    out.push(Candidate {
                        edits: vec![EditOp::RemovePredicate {
                            index: idx,
                            pred: conjuncts[idx].clone(),
                        }],
                        class: OpClass::Remove,
                        label: "predicate-remove",
                    });
                }
            }
        }
        // Remove ORDER BY.
        if (cues.has("sort") || cues.has("order")) && !predicted.order_by.is_empty() {
            out.push(Candidate {
                edits: vec![EditOp::SetOrderBy {
                    from: predicted.order_by.clone(),
                    to: vec![],
                }],
                class: OpClass::Remove,
                label: "order-remove",
            });
        }
        // Remove LIMIT ("show all rows").
        if (cues.has("all rows") || cues.has("not just a few") || cues.has("limit"))
            && predicted.limit.is_some()
        {
            out.push(Candidate {
                edits: vec![EditOp::SetLimit {
                    from: predicted.limit,
                    to: None,
                }],
                class: OpClass::Remove,
                label: "limit-remove",
            });
        }
        // Remove a join.
        if let Some(from) = &predicted.core.from {
            for t in &cues.tables {
                if let Some(idx) = from.joins.iter().position(|j| {
                    j.factor.binding_name().eq_ignore_ascii_case(t)
                        || matches!(&j.factor, TableFactor::Table { name, .. } if name.eq_ignore_ascii_case(t))
                }) {
                    out.push(Candidate {
                        edits: vec![EditOp::RemoveJoin {
                            index: idx,
                            join: from.joins[idx].clone(),
                        }],
                        class: OpClass::Remove,
                        label: "join-remove",
                    });
                }
            }
        }
        // Keep duplicates.
        if cues.has("duplicate") && predicted.core.distinct {
            out.push(Candidate {
                edits: vec![EditOp::SetDistinct { distinct: false }],
                class: OpClass::Remove,
                label: "distinct-remove",
            });
        }
        // Keep all groups (remove HAVING).
        if cues.has("all groups") && predicted.core.having.is_some() {
            out.push(Candidate {
                edits: vec![EditOp::SetHaving {
                    from: predicted.core.having.clone(),
                    to: None,
                }],
                class: OpClass::Remove,
                label: "having-remove",
            });
        }
    }

    // --- Ordering additions/changes -----------------------------------------
    if (cues.has("order") || cues.has("sort")) && !removing {
        let desc = cues.descending && !cues.ascending;
        let expr = cues
            .columns
            .first()
            .map(|(_, c)| column_like_in_query(predicted, c))
            .unwrap_or_else(|| first_projected_expr(predicted));
        if let Some(expr) = expr {
            out.push(Candidate {
                edits: vec![EditOp::SetOrderBy {
                    from: predicted.order_by.clone(),
                    to: vec![OrderItem { expr, desc }],
                }],
                class: if predicted.order_by.is_empty() {
                    OpClass::Add
                } else {
                    OpClass::Edit
                },
                label: "order-set",
            });
        }
    }

    // --- LIMIT ("top N") -----------------------------------------------------
    if (cues.has("top") || cues.has("limit") || cues.has("first")) && !removing {
        if let Some(&n) = cues.numbers.first() {
            if n > 0 {
                out.push(Candidate {
                    edits: vec![EditOp::SetLimit {
                        from: predicted.limit,
                        to: Some(LimitClause::new(n as u64)),
                    }],
                    class: if predicted.limit.is_none() {
                        OpClass::Add
                    } else {
                        OpClass::Edit
                    },
                    label: "limit-set",
                });
            }
        }
    }

    // --- DISTINCT additions ---------------------------------------------------
    if (cues.has("duplicate") || cues.has("distinct") || cues.has("unique"))
        && !predicted.core.distinct
        && (cues.has("remove duplicate")
            || cues.has("without duplicate")
            || cues.has("distinct")
            || cues.has("unique"))
    {
        out.push(Candidate {
            edits: vec![EditOp::SetDistinct { distinct: true }],
            class: OpClass::Add,
            label: "distinct-add",
        });
    }

    // --- Predicate additions ("only include rows where ...") ------------------
    if cues.has("only include")
        || cues.has("only keep")
        || cues.has("only count")
        || cues.has("restrict")
    {
        if let Some(pred) = build_predicate(cues, predicted, db) {
            if cues.has("groups") && !predicted.core.group_by.is_empty() {
                out.push(Candidate {
                    edits: vec![EditOp::SetHaving {
                        from: predicted.core.having.clone(),
                        to: Some(pred),
                    }],
                    class: if predicted.core.having.is_none() {
                        OpClass::Add
                    } else {
                        OpClass::Edit
                    },
                    label: "having-set",
                });
            } else {
                out.push(Candidate {
                    edits: vec![EditOp::AddPredicate { pred }],
                    class: OpClass::Add,
                    label: "predicate-add",
                });
            }
        }
    }

    // --- "also show the X" ------------------------------------------------------
    if (cues.has("also show")
        || cues.has("also give")
        || cues.has("as well")
        || cues.has("add the"))
        && !removing
    {
        if let Some((table, col)) = cues.columns.first() {
            let already = predicted.core.items.iter().any(|item| {
                matches!(item, SelectItem::Expr { expr: Expr::Column(c), .. }
                    if c.column.eq_ignore_ascii_case(col))
            });
            if !already {
                let qualified = predicted
                    .core
                    .from
                    .as_ref()
                    .map(|f| !f.joins.is_empty())
                    .unwrap_or(false);
                let expr = if qualified {
                    Expr::qcol(table.clone(), col.clone())
                } else {
                    Expr::col(col.clone())
                };
                out.push(Candidate {
                    edits: vec![EditOp::AddSelectItem {
                        item: SelectItem::expr(expr),
                    }],
                    class: OpClass::Add,
                    label: "select-add",
                });
            }
        }
    }

    // --- Join additions ("bring in the X information") ---------------------------
    if cues.has("bring in")
        || cues.has("need to include")
        || cues.has("need the")
        || cues.has("join")
    {
        let q_tables = predicted.all_table_names();
        for t in &cues.tables {
            if q_tables.iter().any(|q| q.eq_ignore_ascii_case(t)) {
                continue;
            }
            if let Some(join) = fk_join(db, &q_tables, t) {
                out.push(Candidate {
                    edits: vec![EditOp::AddJoin { join }],
                    class: OpClass::Add,
                    label: "join-add",
                });
            }
        }
    }

    // --- Generic predicate replacement ("change A to B" / "should be B") ------
    if cues.has("change") || cues.has("should be") || cues.has("condition") {
        if let Some(new_pred) = build_predicate(cues, predicted, db) {
            let new_cols = new_pred.columns();
            // Prefer a conjunct on the same column; failing that, a
            // conjunct on any *mentioned* column ("change song name = 'x'
            // to name = 'x'" mentions both), which distinguishes a
            // replacement from an addition.
            let target = conjuncts
                .iter()
                .enumerate()
                .find(|(_, c)| {
                    c.columns().iter().any(|cr| {
                        new_cols
                            .iter()
                            .any(|nc| nc.column.eq_ignore_ascii_case(&cr.column))
                    })
                })
                .or_else(|| {
                    if !cues.has("change") {
                        return None;
                    }
                    conjuncts.iter().enumerate().find(|(_, c)| {
                        c.columns().iter().any(|cr| {
                            cues.columns
                                .iter()
                                .any(|(_, col)| col.eq_ignore_ascii_case(&cr.column))
                        })
                    })
                });
            let edit = match target {
                Some((idx, c)) => EditOp::ReplacePredicate {
                    index: idx,
                    from: c.clone(),
                    to: new_pred,
                },
                None => EditOp::AddPredicate { pred: new_pred },
            };
            let class = match &edit {
                EditOp::AddPredicate { .. } => OpClass::Add,
                _ => OpClass::Edit,
            };
            out.push(Candidate {
                edits: vec![edit],
                class,
                label: "predicate-set",
            });
        }
    }

    // --- Group-by ("break it down by X") ---------------------------------------
    if cues.has("break it down") || cues.has("group by") || cues.has("for each") {
        if let Some((_, col)) = cues.columns.first() {
            if let Some(expr) = column_like_in_query(predicted, col) {
                out.push(Candidate {
                    edits: vec![EditOp::SetGroupBy {
                        from: predicted.core.group_by.clone(),
                        to: vec![expr],
                    }],
                    class: if predicted.core.group_by.is_empty() {
                        OpClass::Add
                    } else {
                        OpClass::Edit
                    },
                    label: "group-set",
                });
            }
        }
    }

    // --- Value-only replacement ("it should be 'active'" / "change to 500") ----
    // A terse correction naming only the new value must be grounded to a
    // conjunct. Every literal-bearing conjunct of a compatible type is a
    // candidate — this is where grounding genuinely gets ambiguous and a
    // highlight earns its keep (Table 3).
    if cues.has("should be") || cues.has("change to") || cues.has("it should") {
        let has_specific = out.iter().any(|c| c.label == "predicate-set");
        if !has_specific {
            for (i, c) in conjuncts.iter().enumerate() {
                if let Some(swapped) = swap_literal(c, cues) {
                    out.push(Candidate {
                        edits: vec![EditOp::ReplacePredicate {
                            index: i,
                            from: c.clone(),
                            to: swapped,
                        }],
                        class: OpClass::Edit,
                        label: "literal-swap",
                    });
                }
            }
        }
    }

    // --- Aggregate replacement ("I wanted the average age, not the total") -----
    if let Some(target_func) = mentioned_aggregate(&cues.lower) {
        for (i, item) in predicted.core.items.iter().enumerate() {
            if let SelectItem::Expr {
                expr:
                    Expr::Call {
                        func,
                        distinct,
                        args,
                    },
                alias,
            } = item
            {
                if func.is_aggregate() && *func != target_func {
                    let new_args = if target_func == Func::Count && args.is_empty() {
                        vec![Expr::Wildcard]
                    } else {
                        args.clone()
                    };
                    out.push(Candidate {
                        edits: vec![EditOp::ReplaceSelectItem {
                            index: i,
                            from: item.clone(),
                            to: SelectItem::Expr {
                                expr: Expr::Call {
                                    func: target_func,
                                    distinct: *distinct,
                                    args: new_args,
                                },
                                alias: alias.clone(),
                            },
                        }],
                        class: OpClass::Edit,
                        label: "agg-replace",
                    });
                }
            }
        }
    }

    // --- Extremum flip ("youngest" vs "oldest") ---------------------------------
    if cues.has("youngest")
        || cues.has("oldest")
        || cues.has("smallest")
        || cues.has("largest")
        || cues.has("minimum")
        || cues.has("maximum")
        || cues.has("lowest")
        || cues.has("highest")
    {
        for (i, c) in conjuncts.iter().enumerate() {
            if let Some(flipped) = flip_extremum(c) {
                out.push(Candidate {
                    edits: vec![EditOp::ReplacePredicate {
                        index: i,
                        from: c.clone(),
                        to: flipped,
                    }],
                    class: OpClass::Edit,
                    label: "extremum-flip",
                });
            }
        }
        // Or a direction flip on ORDER BY.
        if !predicted.order_by.is_empty() {
            let wants_min = cues.has("youngest")
                || cues.has("smallest")
                || cues.has("minimum")
                || cues.has("lowest");
            let mut to = predicted.order_by.clone();
            to[0].desc = !wants_min;
            if to != predicted.order_by {
                out.push(Candidate {
                    edits: vec![EditOp::SetOrderBy {
                        from: predicted.order_by.clone(),
                        to,
                    }],
                    class: OpClass::Edit,
                    label: "order-flip",
                });
            }
        }
    }

    out
}

/// Replaces the literal of a simple comparison conjunct with the value
/// the cues mention, when the types are compatible and the value differs.
fn swap_literal(conjunct: &Expr, cues: &Cues) -> Option<Expr> {
    let Expr::Binary { left, op, right } = conjunct else {
        return None;
    };
    let Expr::Literal(old) = right.as_ref() else {
        return None;
    };
    let new_lit = match old {
        Literal::String(s) => {
            let q = cues.quoted.first()?;
            if q == s {
                return None;
            }
            Literal::String(q.clone())
        }
        Literal::Number(n) => {
            let &v = cues.numbers.first().or(cues.years.first())?;
            if v == *n {
                return None;
            }
            Literal::Number(v)
        }
        Literal::Float(x) => {
            let v = cues
                .floats
                .first()
                .copied()
                .or_else(|| cues.numbers.first().map(|&n| n as f64))?;
            if (v - x).abs() < f64::EPSILON {
                return None;
            }
            Literal::Float(v)
        }
        _ => return None,
    };
    Some(Expr::Binary {
        left: left.clone(),
        op: *op,
        right: Box::new(Expr::Literal(new_lit)),
    })
}

/// Replaces every year inside date-string or year-number literals of `e`
/// with `year`; returns None when nothing changed.
fn shift_years_in_expr(e: &Expr, year: i64) -> Option<Expr> {
    let mut changed = false;
    let mut out = e.clone();
    out.walk_mut(&mut |node| {
        if let Expr::Literal(l) = node {
            match l {
                Literal::String(s) if s.len() >= 4 => {
                    if let Ok(y) = s[..4].parse::<i64>() {
                        if (1900..=2100).contains(&y) && y != year {
                            *s = format!("{year:04}{}", &s[4..]);
                            changed = true;
                        }
                    }
                }
                Literal::Number(n) if (1900..=2100).contains(n) && *n != year => {
                    *n = year;
                    changed = true;
                }
                _ => {}
            }
        }
    });
    changed.then_some(out)
}

/// Builds a predicate from the cues: prefer re-parsing the tail after a
/// connective phrase; fall back to (column, comparator, value) assembly.
fn build_predicate(cues: &Cues, predicted: &Query, db: &Database) -> Option<Expr> {
    // Try structural parse of the tail after "where"/"should be"/"to ".
    // Markers are located case-insensitively, but the tail is sliced from
    // the original text: string literals must keep their case
    // (`status = 'Active'`, not `'active'`).
    let searchable = cues.raw.to_ascii_lowercase();
    for marker in ["rows where ", "groups where ", "should be ", " to "] {
        if let Some(pos) = searchable.find(marker) {
            let tail = cues.raw[pos + marker.len()..].trim_end_matches(['.', '?']);
            if let Some(expr) = parse_delinked(tail, db) {
                // Only accept predicate-shaped expressions; "change to
                // 2024" should not yield a bare literal here.
                if is_predicate_shaped(&expr) {
                    return Some(expr);
                }
            }
        }
    }
    // Assembly: mentioned column + value (+ comparator words).
    let (_, col) = cues.columns.first()?;
    let col_expr = column_like_in_query(predicted, col).unwrap_or_else(|| Expr::col(col.clone()));
    let value = if let Some(q) = cues.quoted.first() {
        Expr::str(q.clone())
    } else if let Some(&n) = cues.numbers.first().or(cues.years.first()) {
        Expr::num(n)
    } else if let Some(&x) = cues.floats.first() {
        Expr::Literal(Literal::Float(x))
    } else {
        return None;
    };
    let op = if cues.has("greater than") || cues.has("more than") {
        BinOp::Gt
    } else if cues.has("less than") || cues.has("fewer than") {
        BinOp::Lt
    } else if cues.has("at least") {
        BinOp::GtEq
    } else if cues.has("at most") {
        BinOp::LtEq
    } else {
        BinOp::Eq
    };
    Some(Expr::binary(col_expr, op, value))
}

/// The aggregate function the text names first, if any. "I wanted the
/// average age, not the total" resolves to the *first*-mentioned
/// aggregate (the corrected one in the natural phrasing).
fn mentioned_aggregate(lower: &str) -> Option<Func> {
    const WORDS: &[(&str, Func)] = &[
        ("number of", Func::Count),
        ("count", Func::Count),
        ("how many", Func::Count),
        ("total", Func::Sum),
        ("sum", Func::Sum),
        ("average", Func::Avg),
        ("mean", Func::Avg),
        ("minimum", Func::Min),
        ("smallest", Func::Min),
        ("maximum", Func::Max),
        ("largest", Func::Max),
    ];
    // Word-boundary matching: "country" must not register as "count",
    // nor "meant" as "mean".
    WORDS
        .iter()
        .filter_map(|(w, f)| find_word(lower, w).map(|pos| (pos, *f)))
        .min_by_key(|(pos, _)| *pos)
        .map(|(_, f)| f)
}

/// Whether an expression can serve as a WHERE conjunct.
fn is_predicate_shaped(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Binary { .. }
            | Expr::Like { .. }
            | Expr::Between { .. }
            | Expr::InList { .. }
            | Expr::InSubquery { .. }
            | Expr::IsNull { .. }
            | Expr::Exists { .. }
            | Expr::Unary { .. }
    )
}

/// Re-links humanized identifiers in `text` back to schema identifiers,
/// then attempts to parse the result as an expression. This is the
/// schema-linking step a real NL2SQL model performs when reading feedback
/// that mentions "song release year" for `song_release_year`.
fn parse_delinked(text: &str, db: &Database) -> Option<Expr> {
    let mut delinked = text.to_string();
    let mut idents: Vec<&str> = Vec::new();
    for t in &db.tables {
        idents.push(&t.name);
        for c in &t.columns {
            idents.push(&c.name);
        }
    }
    idents.sort_by_key(|i| std::cmp::Reverse(i.len()));
    for ident in idents {
        let human = ident.replace('_', " ").to_lowercase();
        if human.contains(' ') {
            // Match case-insensitively but replace in the original-case
            // string (byte offsets coincide under ASCII lowering).
            loop {
                let shadow = delinked.to_ascii_lowercase();
                let Some(pos) = find_word(&shadow, &human) else {
                    break;
                };
                delinked.replace_range(pos..pos + human.len(), ident);
            }
        }
    }
    // "count(*)" style words survive; try the parse.
    parse_expr(&delinked).ok()
}

/// The expression form of a column as it would appear in the predicted
/// query's dialect (qualified iff the query joins).
fn column_like_in_query(predicted: &Query, column: &str) -> Option<Expr> {
    // Prefer an exact existing reference.
    let mut found: Option<Expr> = None;
    let mut visit = |e: &Expr| {
        if found.is_some() {
            return;
        }
        if let Expr::Column(c) = e {
            if c.column.eq_ignore_ascii_case(column) {
                found = Some(Expr::Column(c.clone()));
            }
        }
    };
    for item in &predicted.core.items {
        if let SelectItem::Expr { expr, .. } = item {
            expr.walk(&mut visit);
        }
    }
    if let Some(w) = &predicted.core.where_clause {
        w.walk(&mut visit);
    }
    if found.is_some() {
        return found;
    }
    Some(Expr::col(column.to_string()))
}

fn first_projected_expr(predicted: &Query) -> Option<Expr> {
    predicted.core.items.iter().find_map(|item| match item {
        SelectItem::Expr { expr, .. } => Some(expr.clone()),
        _ => None,
    })
}

/// Flips a `col = (SELECT MIN(col) ...)` extremum subquery to MAX (or
/// vice versa).
fn flip_extremum(e: &Expr) -> Option<Expr> {
    let Expr::Binary { left, op, right } = e else {
        return None;
    };
    if *op != BinOp::Eq {
        return None;
    }
    let Expr::Subquery(sub) = right.as_ref() else {
        return None;
    };
    let mut flipped = (**sub).clone();
    let mut changed = false;
    for item in &mut flipped.core.items {
        if let SelectItem::Expr {
            expr: Expr::Call { func, .. },
            ..
        } = item
        {
            match func {
                Func::Min => {
                    *func = Func::Max;
                    changed = true;
                }
                Func::Max => {
                    *func = Func::Min;
                    changed = true;
                }
                _ => {}
            }
        }
    }
    changed.then(|| Expr::Binary {
        left: left.clone(),
        op: BinOp::Eq,
        right: Box::new(Expr::Subquery(Box::new(flipped))),
    })
}

/// Finds a foreign-key join between any already-present table and
/// `target`.
fn fk_join(db: &Database, present: &[String], target: &str) -> Option<Join> {
    let t = db.table(target)?;
    // target has an FK to a present table …
    for fk in &t.foreign_keys {
        if present
            .iter()
            .any(|p| p.eq_ignore_ascii_case(&fk.ref_table))
        {
            let ref_table = db.table(&fk.ref_table)?;
            return Some(Join {
                kind: JoinKind::Inner,
                factor: TableFactor::table(t.name.clone()),
                constraint: Some(Expr::binary(
                    Expr::qcol(
                        ref_table.name.clone(),
                        ref_table.columns[fk.ref_column].name.clone(),
                    ),
                    BinOp::Eq,
                    Expr::qcol(t.name.clone(), t.columns[fk.column].name.clone()),
                )),
            });
        }
    }
    // … or a present table has an FK to target.
    for p in present {
        let pt = db.table(p)?;
        for fk in &pt.foreign_keys {
            if fk.ref_table.eq_ignore_ascii_case(target) {
                return Some(Join {
                    kind: JoinKind::Inner,
                    factor: TableFactor::table(t.name.clone()),
                    constraint: Some(Expr::binary(
                        Expr::qcol(pt.name.clone(), pt.columns[fk.column].name.clone()),
                        BinOp::Eq,
                        Expr::qcol(t.name.clone(), t.columns[fk.ref_column].name.clone()),
                    )),
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisql_engine::{Column, DataType, Table};
    use fisql_sqlkit::{apply_edits, normalize_query, parse_query, structurally_equal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db() -> Database {
        let mut db = Database::new("d");
        let mut singer = Table::new(
            "singer",
            vec![
                Column::new("singer_id", DataType::Int),
                Column::new("name", DataType::Text),
                Column::new("song_name", DataType::Text),
                Column::new("song_release_year", DataType::Int),
                Column::new("age", DataType::Int),
                Column::new("description", DataType::Text),
                Column::new("status", DataType::Text),
            ],
        );
        singer.primary_key = Some(0);
        db.add_table(singer);
        let mut seg = Table::new(
            "hkg_dim_segment",
            vec![
                Column::new("segment_id", DataType::Int),
                Column::new("segment_name", DataType::Text),
                Column::new("createdTime", DataType::Date),
            ],
        );
        seg.primary_key = Some(0);
        db.add_table(seg);
        let mut concert = Table::new(
            "concert",
            vec![
                Column::new("concert_id", DataType::Int),
                Column::new("singer_id", DataType::Int),
                Column::new("year", DataType::Int),
            ],
        );
        concert.primary_key = Some(0);
        concert.foreign_keys.push(fisql_engine::ForeignKey {
            column: 1,
            ref_table: "singer".into(),
            ref_column: 0,
        });
        db.add_table(concert);
        db
    }

    fn run(text: &str, sql: &str, routed: Option<OpClass>) -> (Query, Interpretation) {
        let predicted = normalize_query(&parse_query(sql).unwrap());
        let mut rng = StdRng::seed_from_u64(7);
        let interp = interpret(text, &predicted, &db(), routed, None, &mut rng);
        let applied = apply_edits(&predicted, &interp.edits).unwrap_or(predicted);
        (applied, interp)
    }

    #[test]
    fn year_shift_we_are_in_2024() {
        let (fixed, interp) = run(
            "we are in 2024",
            "SELECT COUNT(*) FROM hkg_dim_segment \
             WHERE createdTime >= '2023-01-01' AND createdTime < '2023-02-01'",
            Some(OpClass::Edit),
        );
        assert_eq!(interp.label, "year-shift");
        let want = parse_query(
            "SELECT COUNT(*) FROM hkg_dim_segment \
             WHERE createdTime >= '2024-01-01' AND createdTime < '2024-02-01'",
        )
        .unwrap();
        assert!(structurally_equal(&fixed, &want));
    }

    #[test]
    fn figure7_song_name_instead_of_name() {
        let (fixed, interp) = run(
            "Provide song name instead of singer name",
            "SELECT name, song_release_year FROM singer \
             WHERE age = (SELECT MIN(age) FROM singer)",
            Some(OpClass::Edit),
        );
        assert_eq!(interp.label, "select-replace");
        let want = parse_query(
            "SELECT song_name, song_release_year FROM singer \
             WHERE age = (SELECT MIN(age) FROM singer)",
        )
        .unwrap();
        assert!(
            structurally_equal(&fixed, &want),
            "got {}",
            fisql_sqlkit::print_query(&fixed)
        );
    }

    #[test]
    fn do_not_give_descriptions() {
        let (fixed, _) = run(
            "do not give descriptions",
            "SELECT name, description FROM singer",
            Some(OpClass::Remove),
        );
        let want = parse_query("SELECT name FROM singer").unwrap();
        assert!(structurally_equal(&fixed, &want));
    }

    #[test]
    fn order_names_ascending() {
        let (fixed, _) = run(
            "order the names in ascending order.",
            "SELECT name FROM singer",
            Some(OpClass::Add),
        );
        let want = parse_query("SELECT name FROM singer ORDER BY name ASC").unwrap();
        assert!(
            structurally_equal(&fixed, &want),
            "got {}",
            fisql_sqlkit::print_query(&fixed)
        );
    }

    #[test]
    fn only_include_rows_where_status() {
        let (fixed, _) = run(
            "only include rows where status is 'active'",
            "SELECT COUNT(*) FROM singer",
            Some(OpClass::Add),
        );
        let want = parse_query("SELECT COUNT(*) FROM singer WHERE status = 'active'").unwrap();
        assert!(
            structurally_equal(&fixed, &want),
            "got {}",
            fisql_sqlkit::print_query(&fixed)
        );
    }

    #[test]
    fn top_n_limit() {
        let (fixed, _) = run(
            "only show the top 5",
            "SELECT name FROM singer ORDER BY age DESC",
            Some(OpClass::Add),
        );
        assert_eq!(fixed.limit, Some(LimitClause::new(5)));
    }

    #[test]
    fn remove_sorting() {
        let (fixed, _) = run(
            "no need to sort the results",
            "SELECT name FROM singer ORDER BY age ASC",
            Some(OpClass::Remove),
        );
        assert!(fixed.order_by.is_empty());
    }

    #[test]
    fn table_replacement() {
        let (fixed, _) = run(
            "use concert instead of singer",
            "SELECT year FROM singer",
            Some(OpClass::Edit),
        );
        assert!(fisql_sqlkit::print_query(&fixed).contains("FROM concert"));
    }

    #[test]
    fn extremum_flip_youngest() {
        let (fixed, interp) = run(
            "I asked about the youngest singer, not the oldest",
            "SELECT name FROM singer WHERE age = (SELECT MAX(age) FROM singer)",
            Some(OpClass::Edit),
        );
        assert_eq!(interp.label, "extremum-flip");
        assert!(fisql_sqlkit::print_query(&fixed).contains("MIN(age)"));
    }

    #[test]
    fn join_addition_via_fk() {
        let (fixed, _) = run(
            "you need to bring in the concert information",
            "SELECT name FROM singer",
            Some(OpClass::Add),
        );
        let sql = fisql_sqlkit::print_query(&fixed);
        assert!(sql.contains("JOIN concert"), "{sql}");
        assert!(
            sql.contains("singer.singer_id = concert.singer_id"),
            "{sql}"
        );
    }

    #[test]
    fn uninterpretable_feedback_fails_gracefully() {
        let (_, interp) = run(
            "hmm that looks odd somehow",
            "SELECT name FROM singer",
            Some(OpClass::Edit),
        );
        assert_eq!(interp.candidates, 0);
        assert!(interp.edits.is_empty());
    }

    #[test]
    fn routing_filter_prefers_matching_class() {
        // "change the year to 2024" on a query with both a year literal
        // and sortable output: routed Edit keeps the year-shift.
        let (_, interp) = run(
            "change the year to 2024",
            "SELECT name FROM concert WHERE year = 2023 ORDER BY name ASC",
            Some(OpClass::Edit),
        );
        assert_eq!(interp.label, "year-shift");
    }

    #[test]
    fn highlight_disambiguates() {
        // Feedback mentioning a column in both SELECT and WHERE is
        // ambiguous between select-remove and predicate-remove; a WHERE
        // highlight settles it.
        let predicted = normalize_query(
            &parse_query("SELECT name, status FROM singer WHERE status = 'x'").unwrap(),
        );
        let spanned = fisql_sqlkit::print_query_spanned(&predicted);
        let where_span = spanned.span_of(&ClausePath::WherePredicate(0)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let interp = interpret(
            "do not filter by status",
            &predicted,
            &db(),
            None,
            Some(where_span),
            &mut rng,
        );
        assert_eq!(interp.label, "predicate-remove");
    }

    #[test]
    fn change_condition_with_parsed_tail() {
        let (fixed, _) = run(
            "the condition should be age > 30",
            "SELECT name FROM singer WHERE age > 50",
            Some(OpClass::Edit),
        );
        let want = parse_query("SELECT name FROM singer WHERE age > 30").unwrap();
        assert!(
            structurally_equal(&fixed, &want),
            "got {}",
            fisql_sqlkit::print_query(&fixed)
        );
    }
}
