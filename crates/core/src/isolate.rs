//! Per-case panic isolation for the evaluation runner.
//!
//! One buggy case (or an injected backend panic) must not abort a run
//! that has hours of verdicts behind it. [`run_isolated`] runs a closure
//! under [`std::panic::catch_unwind`] and converts an unwind into an
//! `Err(message)` the caller records as a crashed-case outcome.
//!
//! The default panic hook prints a backtrace to stderr the moment the
//! panic fires — noisy and misleading when the panic is contained by
//! design. A process-wide chained hook (installed once, on first use)
//! suppresses that printing for panics raised inside an isolated
//! section, captures the message and location into a thread-local
//! instead, and delegates every other panic to the previous hook
//! unchanged.

use std::cell::{Cell, RefCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

thread_local! {
    /// Nesting depth of isolated sections on this thread (sessions may
    /// isolate a call that the runner already isolated).
    static ISOLATION_DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Message captured by the hook for the innermost in-flight panic.
    static CAPTURED_PANIC: RefCell<Option<String>> = const { RefCell::new(None) };
}

static HOOK: Once = Once::new();

fn install_hook() {
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if ISOLATION_DEPTH.with(Cell::get) == 0 {
                previous(info);
                return;
            }
            let message = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic payload of unknown type".to_string());
            let located = match info.location() {
                Some(location) => format!("{message} (at {location})"),
                None => message,
            };
            CAPTURED_PANIC.with(|c| *c.borrow_mut() = Some(located));
        }));
    });
}

/// Runs `f`, containing any panic it raises. Returns the closure's value
/// or the captured panic message (with source location when known).
pub(crate) fn run_isolated<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    install_hook();
    ISOLATION_DEPTH.with(|d| d.set(d.get() + 1));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    ISOLATION_DEPTH.with(|d| d.set(d.get() - 1));
    result.map_err(|payload| {
        CAPTURED_PANIC.with(RefCell::take).unwrap_or_else(|| {
            payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic payload of unknown type".to_string())
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_pass_through() {
        assert_eq!(run_isolated(|| 41 + 1), Ok(42));
    }

    #[test]
    fn panics_become_messages_with_location() {
        let err = run_isolated(|| -> u32 { panic!("boom {}", 7) }).unwrap_err();
        assert!(err.contains("boom 7"), "{err}");
        assert!(err.contains("isolate.rs"), "location missing: {err}");
    }

    #[test]
    fn nested_isolation_unwinds_to_the_inner_boundary() {
        let outer = run_isolated(|| {
            let inner = run_isolated(|| -> u32 { panic!("inner") });
            assert!(inner.unwrap_err().contains("inner"));
            // The outer section is still armed after the inner one pops.
            let second = run_isolated(|| -> u32 { panic!("second") });
            assert!(second.unwrap_err().contains("second"));
            5
        });
        assert_eq!(outer, Ok(5));
    }

    #[test]
    fn non_string_payloads_are_reported_generically() {
        let err = run_isolated(|| std::panic::panic_any(1234_i32)).unwrap_err();
        assert!(err.contains("unknown type"), "{err}");
    }
}
