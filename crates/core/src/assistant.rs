//! The Assistant: FISQL's NL2SQL front end (§3.2).
//!
//! For each question the Assistant retrieves query-relevant
//! demonstrations (RAG), prompts the model, executes the SQL against the
//! database, and returns the four outputs of the paper: (a) the execution
//! result, (b) a reformulation of the question, (c) a step-by-step NL
//! explanation, and (d) the SQL itself ("Show source").

use crate::explain::{explain_query, reformulate};
use fisql_engine::{Database, ResultSet};
use fisql_llm::{prompt, DemoStore, Demonstration, GenMode, GenRequest, SimLlm};
use fisql_spider::{Corpus, Example};
use fisql_sqlkit::{normalize_query, print_query, print_query_spanned, Query, SpannedSql};

/// One Assistant response.
#[derive(Debug, Clone)]
pub struct AssistantTurn {
    /// The generated query, normalized (the pipeline's working form).
    pub query: Query,
    /// Rendered SQL (the "Show source" view).
    pub sql_text: String,
    /// Rendered SQL with clause spans, for highlighting.
    pub spanned: SpannedSql,
    /// The Assistant's reformulation of the question.
    pub reformulation: String,
    /// Step-by-step explanation.
    pub explanation: String,
    /// Execution result or error message ("We found nothing for your
    /// query" style failures surface here).
    pub result: Result<ResultSet, String>,
    /// The full prompt that produced the query (fidelity/debugging).
    pub prompt: String,
    /// Diagnostic: error channels that fired in the simulated model.
    pub fired: Vec<&'static str>,
}

/// The Assistant configuration.
#[derive(Debug, Clone)]
pub struct Assistant {
    /// The backing (simulated) LLM.
    pub llm: SimLlm,
    /// RAG demonstration store.
    pub store: DemoStore,
    /// Demonstrations per prompt (0 = zero-shot, Figure 1).
    pub demos_k: usize,
}

impl Assistant {
    /// Builds an Assistant whose demonstration pool is sampled from the
    /// corpus itself (every fourth example — a stand-in for the paper's
    /// separate training split; retrieval never sees the example under
    /// evaluation because demos are keyed by question text and the
    /// simulated model only consumes the *count*).
    pub fn for_corpus(corpus: &Corpus, llm: SimLlm, demos_k: usize) -> Assistant {
        let demos: Vec<Demonstration> = corpus
            .examples
            .iter()
            .step_by(4)
            .map(|e| Demonstration {
                question: e.question.clone(),
                sql: print_query(&e.gold),
            })
            .collect();
        Assistant {
            llm,
            store: DemoStore::new(demos),
            demos_k,
        }
    }

    /// Answers `example` against `db`. `salt` distinguishes repeated
    /// generations (attempt number).
    pub fn answer(&self, db: &Database, example: &Example, salt: u64) -> AssistantTurn {
        let guard = fisql_engine::ExecLimits {
            max_rows: fisql_engine::ExecLimits::interactive().max_rows,
            deadline_ms: None,
        };
        self.answer_with(db, example, salt, |db, q| {
            fisql_engine::execute_with_limits(db, q, guard).map_err(|e| e.to_string())
        })
    }

    /// [`answer`](Assistant::answer) with the render's engine call
    /// abstracted out (see [`present_with`](Assistant::present_with)).
    pub fn answer_with(
        &self,
        db: &Database,
        example: &Example,
        salt: u64,
        exec: impl FnMut(&Database, &Query) -> Result<ResultSet, String>,
    ) -> AssistantTurn {
        let retrieved = self.store.retrieve(&example.question, self.demos_k);
        let prompt_text = if retrieved.is_empty() {
            prompt::zero_shot_prompt(db, &example.question)
        } else {
            prompt::few_shot_prompt(db, &retrieved, &example.question)
        };
        let generation = self.llm.generate_sql(&GenRequest {
            example,
            demos: retrieved.len(),
            hint_text: "",
            salt,
            mode: GenMode::Initial,
        });
        let query = normalize_query(&generation.query);
        self.present_with(db, query, prompt_text, generation.fired, exec)
    }

    /// Packages a query into the four-output Assistant turn.
    pub fn present(
        &self,
        db: &Database,
        query: Query,
        prompt: String,
        fired: Vec<&'static str>,
    ) -> AssistantTurn {
        // Row-budget guard only (no wall-clock deadline): the rendered
        // grid participates in deterministic replay, so the outcome must
        // not depend on machine load.
        let guard = fisql_engine::ExecLimits {
            max_rows: fisql_engine::ExecLimits::interactive().max_rows,
            deadline_ms: None,
        };
        self.present_with(db, query, prompt, fired, |db, q| {
            fisql_engine::execute_with_limits(db, q, guard).map_err(|e| e.to_string())
        })
    }

    /// [`present`](Assistant::present) with the engine call abstracted
    /// out, so a serve session can route the render through its result
    /// cache. The executor must reproduce `execute_with_limits` under
    /// the interactive row budget byte-for-byte for presented turns to
    /// stay bit-identical.
    pub fn present_with(
        &self,
        db: &Database,
        query: Query,
        prompt: String,
        fired: Vec<&'static str>,
        mut exec: impl FnMut(&Database, &Query) -> Result<ResultSet, String>,
    ) -> AssistantTurn {
        let sql_text = print_query(&query);
        let spanned = print_query_spanned(&query);
        let reformulation = reformulate(&query);
        let explanation = explain_query(&query);
        let result = exec(db, &query);
        AssistantTurn {
            query,
            sql_text,
            spanned,
            reformulation,
            explanation,
            result,
            prompt,
            fired,
        }
    }

    /// Renders the turn the way the chat surface would (Figure 4's
    /// Assistant bubble).
    pub fn render_turn(turn: &AssistantTurn) -> String {
        let mut out = String::new();
        match &turn.result {
            Ok(rs) if rs.is_empty() => out.push_str("We found nothing for your query.\n\n"),
            Ok(rs) => {
                out.push_str(&rs.render_grid(10));
                out.push('\n');
            }
            Err(e) => out.push_str(&format!("We could not run your query: {e}\n\n")),
        }
        out.push_str("Based on your question, here is the crafted query:\n");
        out.push_str(&format!("{}\n\n", turn.reformulation));
        out.push_str("Here is how we got the results:\n");
        out.push_str(&turn.explanation);
        out.push_str("\n\n[Show source]\n");
        out.push_str(&turn.sql_text);
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisql_llm::LlmConfig;
    use fisql_spider::{build_aep, AepConfig};

    fn setup() -> (Corpus, Assistant) {
        let corpus = build_aep(&AepConfig {
            n_examples: 30,
            seed: 4,
        });
        let assistant = Assistant::for_corpus(&corpus, SimLlm::new(LlmConfig::default()), 3);
        (corpus, assistant)
    }

    #[test]
    fn answer_produces_all_four_outputs() {
        let (corpus, assistant) = setup();
        let e = &corpus.examples[0];
        let turn = assistant.answer(corpus.database(e), e, 0);
        assert!(!turn.sql_text.is_empty());
        assert!(!turn.reformulation.is_empty());
        assert!(turn.explanation.contains("First"));
        assert!(turn.prompt.contains(&e.question));
    }

    #[test]
    fn answers_are_deterministic() {
        let (corpus, assistant) = setup();
        let e = &corpus.examples[1];
        let a = assistant.answer(corpus.database(e), e, 0);
        let b = assistant.answer(corpus.database(e), e, 0);
        assert_eq!(a.sql_text, b.sql_text);
    }

    #[test]
    fn zero_shot_prompt_when_no_demos() {
        let (corpus, _) = setup();
        let assistant = Assistant {
            llm: SimLlm::new(LlmConfig::default()),
            store: DemoStore::new(vec![]),
            demos_k: 0,
        };
        let e = &corpus.examples[0];
        let turn = assistant.answer(corpus.database(e), e, 0);
        assert!(!turn.prompt.contains("Here are some examples"));
    }

    #[test]
    fn render_turn_includes_chat_elements() {
        let (corpus, assistant) = setup();
        let e = &corpus.examples[0];
        let turn = assistant.answer(corpus.database(e), e, 0);
        let rendered = Assistant::render_turn(&turn);
        assert!(rendered.contains("Based on your question"));
        assert!(rendered.contains("[Show source]"));
    }
}
