//! Incremental query building — the paper's §5 future work:
//! "this tool could be adapted to allow users to build up complex SQL
//! queries by asking simple questions first".
//!
//! A [`QueryBuilder`] starts from a simple query and layers refinements
//! expressed in plain language, reusing FISQL's feedback-interpretation
//! machinery in a *cooperative* mode: every utterance is a construction
//! step, not an error correction, so interpretation is deterministic and
//! each successful step must change the query.
//!
//! ```
//! use fisql_core::refine::QueryBuilder;
//! use fisql_engine::{Column, DataType, Database, Table};
//!
//! let mut db = Database::new("d");
//! db.add_table(Table::new("segment", vec![
//!     Column::new("segment_id", DataType::Int),
//!     Column::new("segment_name", DataType::Text),
//!     Column::new("status", DataType::Text),
//!     Column::new("profile_count", DataType::Int),
//! ]));
//!
//! let mut b = QueryBuilder::from_sql(&db, "SELECT segment_name FROM segment").unwrap();
//! b.refine("only include rows where status is 'active'").unwrap();
//! b.refine("order the profile count in descending order").unwrap();
//! b.refine("only show the top 5").unwrap();
//! assert_eq!(
//!     b.sql(),
//!     "SELECT segment_name FROM segment WHERE status = 'active' \
//!      ORDER BY profile_count DESC LIMIT 5"
//! );
//! ```

use crate::interpret::interpret;
use fisql_engine::Database;
use fisql_llm::keyword_route;
use fisql_sqlkit::check::{check_query, render_report, repair_query, Diagnostic, SchemaInfo};
use fisql_sqlkit::{
    apply_edits, diff_queries, enumerate_repairs, locate_faults, normalize_query, parse_query,
    print_query, prune_candidates, realized_classes, EditOp, FeedbackCues, LocateOptions, OpClass,
    Query,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Why a refinement step failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RefineError {
    /// The utterance could not be grounded to any edit.
    NotUnderstood {
        /// The utterance.
        text: String,
    },
    /// The interpreted edit left the query unchanged.
    NoEffect {
        /// The utterance.
        text: String,
    },
    /// The interpreted edit could not be applied.
    Apply {
        /// The edit engine's message.
        message: String,
    },
    /// The seed SQL failed to parse.
    Parse {
        /// The parser's message.
        message: String,
    },
    /// The refined query failed static semantic analysis and could not be
    /// auto-repaired.
    Invalid {
        /// The rendered diagnostic report
        /// ([`fisql_sqlkit::check::render_report`]).
        report: String,
    },
}

impl fmt::Display for RefineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefineError::NotUnderstood { text } => {
                write!(f, "could not interpret refinement `{text}`")
            }
            RefineError::NoEffect { text } => {
                write!(f, "refinement `{text}` had no effect on the query")
            }
            RefineError::Apply { message } => write!(f, "could not apply refinement: {message}"),
            RefineError::Parse { message } => write!(f, "invalid seed SQL: {message}"),
            RefineError::Invalid { report } => {
                write!(f, "refined query fails semantic analysis:\n{report}")
            }
        }
    }
}

impl std::error::Error for RefineError {}

/// One applied refinement step (for history/undo).
#[derive(Debug, Clone)]
pub struct RefineStep {
    /// What the user said.
    pub text: String,
    /// The edits it was interpreted as.
    pub edits: Vec<EditOp>,
    /// The edit classes the step *actually realized*, per
    /// [`diff_queries`] of before vs after (normalization or the typo
    /// repair can make these differ from the interpreted edits' classes).
    pub realized: Vec<OpClass>,
    /// The query before this step.
    pub before: Query,
}

impl RefineStep {
    /// Whether every interpreted edit class was realized in the final
    /// diff — the refinement analogue of the pipeline's
    /// feedback-conformance check.
    pub fn conformant(&self) -> bool {
        let realized = &self.realized;
        self.edits.iter().all(|e| realized.contains(&e.class()))
    }
}

/// An incremental query builder.
pub struct QueryBuilder<'a> {
    db: &'a Database,
    schema: SchemaInfo,
    current: Query,
    history: Vec<RefineStep>,
    diagnostics: Vec<Diagnostic>,
}

impl<'a> QueryBuilder<'a> {
    /// Starts from an existing query.
    pub fn new(db: &'a Database, seed: Query) -> Self {
        let schema = db.schema_info();
        let current = normalize_query(&seed);
        let diagnostics = check_query(&current, &schema);
        QueryBuilder {
            db,
            schema,
            current,
            history: Vec::new(),
            diagnostics,
        }
    }

    /// Starts from SQL text.
    pub fn from_sql(db: &'a Database, sql: &str) -> Result<Self, RefineError> {
        let q = parse_query(sql).map_err(|e| RefineError::Parse {
            message: e.to_string(),
        })?;
        Ok(QueryBuilder::new(db, q))
    }

    /// The current query.
    pub fn query(&self) -> &Query {
        &self.current
    }

    /// The current SQL text.
    pub fn sql(&self) -> String {
        print_query(&self.current)
    }

    /// Steps applied so far.
    pub fn history(&self) -> &[RefineStep] {
        &self.history
    }

    /// Static-analysis findings for the current query (warnings only —
    /// an error-bearing refinement is rejected, so the current query
    /// never carries error-severity diagnostics past [`Self::refine`]).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Applies one plain-language refinement. Interpretation is
    /// deterministic (seeded by the step index) and a step that leaves
    /// the query unchanged is an error — a construction step must build.
    pub fn refine(&mut self, text: &str) -> Result<&Query, RefineError> {
        let mut rng = StdRng::seed_from_u64(self.history.len() as u64);
        // Cooperative mode: no routing filter (the builder trusts the
        // interpreter's own candidate ranking), no highlight.
        let interp = interpret(text, &self.current, self.db, None, None, &mut rng);
        if interp.edits.is_empty() {
            return Err(RefineError::NotUnderstood {
                text: text.to_string(),
            });
        }
        let next = apply_edits(&self.current, &interp.edits).map_err(|e| RefineError::Apply {
            message: e.to_string(),
        })?;
        let next = normalize_query(&next);
        if next == self.current {
            return Err(RefineError::NoEffect {
                text: text.to_string(),
            });
        }
        // Static gate: a refinement that makes the query semantically
        // invalid is repaired when it is a unique typo, rejected otherwise.
        let mut next = next;
        let mut diags = check_query(&next, &self.schema);
        if diags.iter().any(Diagnostic::is_error) {
            match repair_query(&next, &self.schema) {
                Some(fixed) => {
                    next = normalize_query(&fixed);
                    diags = check_query(&next, &self.schema);
                }
                None => {
                    return Err(RefineError::Invalid {
                        report: render_report(&print_query(&next), &diags),
                    });
                }
            }
        }
        self.diagnostics = diags;
        let realized = realized_classes(&diff_queries(&self.current, &next));
        self.history.push(RefineStep {
            text: text.to_string(),
            edits: interp.edits,
            realized,
            before: std::mem::replace(&mut self.current, next),
        });
        Ok(&self.current)
    }

    /// Ranked repair suggestions for an utterance, best first: the
    /// static repair search's surviving candidates (fault localization →
    /// structure-preserving enumeration → static pruning) scored by the
    /// same closeness measure the `SearchRefine` strategy beam-searches.
    /// Useful when [`Self::refine`] returns `NotUnderstood` — the
    /// builder can show what the analyzer *would* change. Never touches
    /// the engine.
    pub fn suggest(&self, text: &str) -> Vec<(String, i64)> {
        let routed = keyword_route(text);
        let sites = locate_faults(
            &self.current,
            &self.schema,
            LocateOptions {
                feedback: Some(text),
                highlight: None,
            },
        );
        let cues = FeedbackCues::extract(text, &self.schema);
        let pool = enumerate_repairs(&self.current, &self.schema, &sites, &cues);
        let mut scored: Vec<(String, i64)> = prune_candidates(&self.current, pool, &self.schema)
            .kept
            .iter()
            .map(|cand| {
                let score =
                    crate::pipeline::closeness(&self.current, cand, &cues, routed, &self.schema);
                (print_query(&cand.query), score)
            })
            .collect();
        scored.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scored
    }

    /// Undoes the last refinement; returns false when there is nothing to
    /// undo.
    pub fn undo(&mut self) -> bool {
        match self.history.pop() {
            Some(step) => {
                self.current = step.before;
                self.diagnostics = check_query(&self.current, &self.schema);
                true
            }
            None => false,
        }
    }

    /// Executes the current query against the builder's database, under
    /// the interactive resource guard — a runaway cross join built up
    /// step by step must not hang the refinement session.
    pub fn run(&self) -> Result<fisql_engine::ResultSet, String> {
        fisql_engine::execute_with_limits(
            self.db,
            &self.current,
            fisql_engine::ExecLimits::interactive(),
        )
        .map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisql_engine::{Column, DataType, Table, Value};

    fn db() -> Database {
        let mut db = Database::new("d");
        let mut seg = Table::new(
            "segment",
            vec![
                Column::new("segment_id", DataType::Int),
                Column::new("segment_name", DataType::Text),
                Column::new("status", DataType::Text),
                Column::new("profile_count", DataType::Int),
            ],
        );
        seg.primary_key = Some(0);
        for (id, name, status, count) in [
            (1, "ABC", "active", 100),
            (2, "Loyalty", "active", 400),
            (3, "Churned", "inactive", 50),
            (4, "VIP", "active", 900),
        ] {
            seg.push_row(vec![
                Value::Int(id),
                name.into(),
                status.into(),
                Value::Int(count),
            ]);
        }
        db.add_table(seg);
        db
    }

    #[test]
    fn suggest_ranks_repair_candidates_statically() {
        let db = db();
        let b = QueryBuilder::from_sql(
            &db,
            "SELECT segment_name FROM segment WHERE status = 'activ'",
        )
        .unwrap();
        let suggestions = b.suggest("the status should be 'active'");
        assert!(
            !suggestions.is_empty(),
            "the literal-swap repair should propose 'active'"
        );
        assert!(
            suggestions[0].0.contains("'active'"),
            "top suggestion {:?} does not use the quoted value",
            suggestions[0]
        );
        // Deterministic: same input, same ranking.
        assert_eq!(suggestions, b.suggest("the status should be 'active'"));
    }

    #[test]
    fn builds_up_a_query_step_by_step() {
        let db = db();
        let mut b = QueryBuilder::from_sql(&db, "SELECT segment_name FROM segment").unwrap();
        b.refine("only include rows where status is 'active'")
            .unwrap();
        b.refine("order the profile count in descending order")
            .unwrap();
        b.refine("only show the top 2").unwrap();
        assert_eq!(
            b.sql(),
            "SELECT segment_name FROM segment WHERE status = 'active' \
             ORDER BY profile_count DESC LIMIT 2"
        );
        let rs = b.run().unwrap();
        assert_eq!(rs.rows[0][0], Value::Text("VIP".into()));
        assert_eq!(rs.rows[1][0], Value::Text("Loyalty".into()));
        assert_eq!(b.history().len(), 3);
    }

    #[test]
    fn steps_record_realized_classes() {
        let db = db();
        let mut b = QueryBuilder::from_sql(&db, "SELECT segment_name FROM segment").unwrap();
        b.refine("only include rows where status is 'active'")
            .unwrap();
        let step = &b.history()[0];
        assert_eq!(step.realized, vec![OpClass::Add]);
        assert!(step.conformant());
    }

    #[test]
    fn also_show_adds_columns() {
        let db = db();
        let mut b = QueryBuilder::from_sql(&db, "SELECT segment_name FROM segment").unwrap();
        b.refine("also show the profile count").unwrap();
        assert_eq!(b.sql(), "SELECT segment_name, profile_count FROM segment");
    }

    #[test]
    fn ungroundable_refinement_errors() {
        let db = db();
        let mut b = QueryBuilder::from_sql(&db, "SELECT segment_name FROM segment").unwrap();
        let err = b.refine("make it nicer somehow").unwrap_err();
        assert!(matches!(err, RefineError::NotUnderstood { .. }));
        assert!(b.history().is_empty());
    }

    #[test]
    fn no_effect_refinement_errors() {
        let db = db();
        let mut b = QueryBuilder::from_sql(
            &db,
            "SELECT segment_name FROM segment ORDER BY segment_name ASC",
        )
        .unwrap();
        let err = b
            .refine("order the segment name in ascending order")
            .unwrap_err();
        assert!(matches!(err, RefineError::NoEffect { .. }));
    }

    #[test]
    fn undo_restores_previous_query() {
        let db = db();
        let mut b = QueryBuilder::from_sql(&db, "SELECT segment_name FROM segment").unwrap();
        let before = b.sql();
        b.refine("only show the top 3").unwrap();
        assert_ne!(b.sql(), before);
        assert!(b.undo());
        assert_eq!(b.sql(), before);
        assert!(!b.undo());
    }

    #[test]
    fn invalid_seed_sql_errors() {
        let db = db();
        assert!(matches!(
            QueryBuilder::from_sql(&db, "SELECT FROM"),
            Err(RefineError::Parse { .. })
        ));
    }

    #[test]
    fn refine_repairs_typo_in_seed_query() {
        let db = db();
        // `segment_nme` exists nowhere; its unique nearest schema name is
        // `segment_name`, so the first refinement both applies and heals.
        let mut b = QueryBuilder::from_sql(&db, "SELECT segment_nme FROM segment").unwrap();
        assert!(b.diagnostics().iter().any(|d| d.is_error()));
        b.refine("only show the top 3").unwrap();
        assert_eq!(b.sql(), "SELECT segment_name FROM segment LIMIT 3");
        assert!(b.diagnostics().is_empty());
    }

    #[test]
    fn unrepairable_refinement_is_rejected() {
        let db = db();
        let mut b = QueryBuilder::from_sql(&db, "SELECT completely_made_up FROM segment").unwrap();
        let err = b.refine("only show the top 3").unwrap_err();
        match err {
            RefineError::Invalid { report } => {
                assert!(report.contains("unknown-column"), "{report}");
                assert!(report.contains("completely_made_up"), "{report}");
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
        // The failed step is not recorded.
        assert!(b.history().is_empty());
    }

    #[test]
    fn diagnostics_surface_warnings() {
        let db = db();
        let b = QueryBuilder::from_sql(
            &db,
            "SELECT segment_name FROM segment WHERE segment_name > 5",
        )
        .unwrap();
        let diags = b.diagnostics();
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| !d.is_error()));
    }

    #[test]
    fn removal_refinements_work_too() {
        let db = db();
        let mut b = QueryBuilder::from_sql(
            &db,
            "SELECT segment_name, status FROM segment WHERE status = 'active'",
        )
        .unwrap();
        b.refine("do not show the status").unwrap();
        b.refine("do not filter by status").unwrap();
        assert_eq!(b.sql(), "SELECT segment_name FROM segment");
    }
}
