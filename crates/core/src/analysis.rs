//! Error analysis — the paper's §4.2 discussion, made measurable.
//!
//! The paper attributes FISQL's residual failures to three causes:
//!
//! - **(a)** "SQL queries with multiple errors and hence needing multiple
//!   feedback rounds";
//! - **(b)** "inability of the approaches to interpret user feedback and
//!   make edits to the SQL query";
//! - **(c)** "user feedback being misaligned with the correction required
//!   for the SQL query".
//!
//! [`analyze_round`] classifies every round-1 failure into this taxonomy
//! (plus the channel composition of the initial errors), producing the
//! report behind the `exp_error_analysis` binary.

use crate::experiment::AnnotatedCase;
use crate::pipeline::{incorporate, IncorporateContext, Strategy};
use fisql_feedback::year_shift_target;
use fisql_llm::SimLlm;
use fisql_spider::{check_prediction, Corpus};
use fisql_sqlkit::{diff_queries, normalize_query};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Why one case failed its first feedback round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FailureCause {
    /// Paper cause (a): the initial prediction had multiple independent
    /// errors; one round fixed at most one of them.
    MultipleErrors,
    /// Paper cause (b): the feedback could not be grounded to any edit.
    InterpretationFailure,
    /// Paper cause (b): an edit was found but not applied (the model
    /// "did not understand" the revision demonstrations).
    ApplicationFailure,
    /// Paper cause (b): grounding was ambiguous and the sampled choice
    /// was wrong.
    WrongGrounding,
    /// Paper cause (c): the feedback itself did not describe the needed
    /// correction.
    MisalignedFeedback,
    /// The edit applied, the query changed, but the result still differs
    /// (e.g. the interpreted edit was semantically off).
    Other,
}

impl FailureCause {
    /// Short label for report rows.
    pub fn label(&self) -> &'static str {
        match self {
            FailureCause::MultipleErrors => "multiple errors (a)",
            FailureCause::InterpretationFailure => "interpretation failure (b)",
            FailureCause::ApplicationFailure => "application failure (b)",
            FailureCause::WrongGrounding => "wrong grounding (b)",
            FailureCause::MisalignedFeedback => "misaligned feedback (c)",
            FailureCause::Other => "other",
        }
    }
}

/// The §4.2-style analysis of one corpus's annotated error set under one
/// strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorAnalysis {
    /// Corpus name.
    pub corpus: String,
    /// Strategy name.
    pub strategy: String,
    /// Cases analyzed.
    pub total: usize,
    /// Cases corrected in round 1.
    pub corrected: usize,
    /// Failure counts per cause.
    pub failures: BTreeMap<String, usize>,
    /// Channel-kind composition of the *initial* errors (how the
    /// Assistant failed in the first place), by diff-derived edit class.
    pub initial_edit_classes: BTreeMap<String, usize>,
}

impl ErrorAnalysis {
    /// Renders the analysis as an aligned text block.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} / {}: {}/{} corrected in round 1\n",
            self.corpus, self.strategy, self.corrected, self.total
        );
        out.push_str("failure causes (paper §4.2):\n");
        for (cause, n) in &self.failures {
            out.push_str(&format!("  {cause:<28} {n:>4}\n"));
        }
        out.push_str("initial error composition (edit classes needed):\n");
        for (class, n) in &self.initial_edit_classes {
            out.push_str(&format!("  {class:<28} {n:>4}\n"));
        }
        out
    }
}

/// Runs one feedback round per case and classifies every failure.
pub fn analyze_round(
    corpus: &Corpus,
    cases: &[AnnotatedCase],
    strategy: Strategy,
    llm: &SimLlm,
) -> ErrorAnalysis {
    let mut failures: BTreeMap<String, usize> = BTreeMap::new();
    let mut initial_edit_classes: BTreeMap<String, usize> = BTreeMap::new();
    let mut corrected = 0;

    for case in cases {
        let example = &corpus.examples[case.error.example_idx];
        let db = corpus.database(example);
        let previous = normalize_query(&case.error.initial);

        let initial_diff = diff_queries(&previous, &example.gold);
        for e in &initial_diff {
            *initial_edit_classes
                .entry(e.class().to_string())
                .or_insert(0) += 1;
        }
        // A year-shift group counts as one logical error even though it is
        // several predicate edits.
        let logical_errors = if year_shift_target(&initial_diff).is_some() {
            1
        } else {
            initial_diff.len()
        };

        let out = incorporate(
            strategy,
            llm,
            &IncorporateContext {
                db,
                example,
                question: &example.question,
                previous: &previous,
                feedback: &case.feedback,
                round: 0,
                conformance_gate: false,
            },
        );
        if check_prediction(db, example, &out.query).is_correct() {
            corrected += 1;
            continue;
        }
        let cause = if case.feedback.misaligned {
            FailureCause::MisalignedFeedback
        } else if let Some(interp) = &out.interpretation {
            if interp.candidates == 0 {
                FailureCause::InterpretationFailure
            } else if out.query == previous {
                FailureCause::ApplicationFailure
            } else if logical_errors > 1 {
                FailureCause::MultipleErrors
            } else if interp.candidates > 1 {
                FailureCause::WrongGrounding
            } else {
                FailureCause::Other
            }
        } else if logical_errors > 1 {
            // Query Rewrite has no interpretation stage.
            FailureCause::MultipleErrors
        } else {
            FailureCause::Other
        };
        *failures.entry(cause.label().to_string()).or_insert(0) += 1;
    }

    ErrorAnalysis {
        corpus: corpus.name.clone(),
        strategy: strategy.name().to_string(),
        total: cases.len(),
        corrected,
        failures,
        initial_edit_classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::CorrectionRun;
    use fisql_feedback::{SimUser, UserConfig};
    use fisql_llm::LlmConfig;
    use fisql_spider::{build_spider, SpiderConfig};

    fn setup() -> (Corpus, SimLlm, Vec<AnnotatedCase>) {
        let corpus = build_spider(&SpiderConfig {
            n_databases: 16,
            n_examples: 140,
            seed: 0xA417,
        });
        let llm = SimLlm::new(LlmConfig::default());
        let user = SimUser::new(UserConfig::default());
        let run = CorrectionRun::new(&corpus, &llm, &user).demos_k(3);
        let errors = run.collect_errors();
        let cases = run.annotate(&errors);
        (corpus, llm, cases)
    }

    #[test]
    fn analysis_accounts_for_every_case() {
        let (corpus, llm, cases) = setup();
        assert!(!cases.is_empty());
        let a = analyze_round(
            &corpus,
            &cases,
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
            &llm,
        );
        let failed: usize = a.failures.values().sum();
        assert_eq!(a.corrected + failed, a.total);
    }

    #[test]
    fn taxonomy_covers_multiple_causes() {
        let (corpus, llm, cases) = setup();
        let a = analyze_round(
            &corpus,
            &cases,
            Strategy::Fisql {
                routing: true,
                highlighting: false,
            },
            &llm,
        );
        // At least the paper's dominant cause (a) shows up on any
        // reasonably sized error set.
        assert!(
            a.failures.contains_key("multiple errors (a)") || a.total < 10,
            "causes: {:?}",
            a.failures
        );
    }

    #[test]
    fn render_is_complete() {
        let (corpus, llm, cases) = setup();
        let a = analyze_round(&corpus, &cases, Strategy::QueryRewrite, &llm);
        let text = a.render();
        assert!(text.contains("corrected in round 1"));
        assert!(text.contains("failure causes"));
    }

    #[test]
    fn analysis_is_deterministic() {
        let (corpus, llm, cases) = setup();
        let s = Strategy::Fisql {
            routing: true,
            highlighting: false,
        };
        let a = analyze_round(&corpus, &cases, s, &llm);
        let b = analyze_round(&corpus, &cases, s, &llm);
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.corrected, b.corrected);
    }
}
